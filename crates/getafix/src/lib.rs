//! **Getafix** — "get a fix using fixed points": a reproduction of
//! *Analyzing Recursive Programs using a Fixed-point Calculus*
//! (La Torre, Madhusudan, Parlato — PLDI 2009) as a Rust workspace.
//!
//! The paper's thesis: symbolic model-checking algorithms for (sequential
//! and concurrent) recursive Boolean programs are best *written as
//! formulae* in a first-order fixed-point calculus and executed by a
//! generic BDD-backed solver. This umbrella crate re-exports the whole
//! pipeline:
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | substrate | [`bdd`] | hash-consed ROBDDs |
//! | solver | [`mucalc`] | the fixed-point calculus + `Evaluate` semantics (§3) |
//! | language | [`boolprog`] | Boolean programs, CFGs, explicit oracle (§2) |
//! | algorithms | [`core`] | templates + the three algorithms as formulae (§4) |
//! | concurrency | [`conc`] | bounded context-switch `Reach` fixpoint (§5) |
//! | baselines | [`pds`], [`bebop`] | hand-coded MOPED / BEBOP stand-ins |
//! | witnesses | [`witness`] | error-trace extraction + replay validation |
//! | workloads | [`workloads`] | Figure 2 / Figure 3 benchmark generators |
//!
//! # Quick start
//!
//! ```
//! use getafix::prelude::*;
//!
//! let program = parse_program(r#"
//!     decl g;
//!     main() begin
//!       decl x;
//!       x := *;
//!       g := f(x);
//!       if (g) then HIT: skip; fi;
//!     end
//!     f(a) returns 1 begin
//!       return !a;
//!     end
//! "#)?;
//! let cfg = Cfg::build(&program)?;
//! let result = check_label(&cfg, "HIT", Algorithm::EntryForwardOpt)?;
//! assert!(result.reachable);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod lint;

pub use getafix_bdd as bdd;
pub use getafix_bebop as bebop;
pub use getafix_boolprog as boolprog;
pub use getafix_conc as conc;
pub use getafix_core as core;
pub use getafix_mucalc as mucalc;
pub use getafix_pds as pds;
pub use getafix_telemetry as telemetry;
pub use getafix_witness as witness;
pub use getafix_workloads as workloads;

/// The most common imports, for examples and quick scripts.
pub mod prelude {
    pub use getafix_bebop::bebop_reachable;
    pub use getafix_boolprog::{
        explicit_reachable, explicit_reachable_label, parse_concurrent, parse_program, Cfg,
        ConcProgram, Program,
    };
    pub use getafix_conc::{
        build_conc_solver_with, check_conc_reachability, check_conc_reachability_with,
        check_conc_solver, check_merged_with, merge, ConcParams,
    };
    pub use getafix_core::{
        build_solver_with, build_trace_solver_with, check_label, check_reachability,
        check_reachability_with, emit_system, emit_trace_system, Algorithm,
    };
    pub use getafix_mucalc::{SolveOptions, Strategy};
    pub use getafix_pds::{poststar, prestar};
    pub use getafix_witness::{
        concurrent_trace, concurrent_trace_from_schedule, concurrent_witness,
        concurrent_witness_from, sequential_witness, sequential_witness_from, WitnessLimits,
    };
}
