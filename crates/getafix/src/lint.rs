//! Rendering for the `getafix lint` verb: the human findings table and
//! the `getafix-lint/1` JSON document.
//!
//! Kept out of `main.rs` so golden-output tests can pin both renderings
//! byte for byte. Findings arrive already deterministically ordered (see
//! [`getafix_boolprog::analysis::lint`]); the renderers add nothing but
//! formatting.

use getafix_boolprog::analysis::{Finding, Severity};
use getafix_telemetry::json::JsonWriter;

/// True when any finding is a [`Severity::Warning`] — the `--deny` exit
/// criterion (`info` findings never fail a run).
pub fn has_warnings(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Warning)
}

/// The human findings table. Ends with a one-line census; prints
/// "no findings" for a clean program.
pub fn render_table(file: &str, findings: &[Finding]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if findings.is_empty() {
        let _ = writeln!(out, "{file}: no findings");
        return out;
    }
    let _ = writeln!(out, "{file}:");
    let _ = writeln!(out, "{:<8} {:<20} {:>5}  finding", "severity", "kind", "line");
    for f in findings {
        let line = f.line.map_or_else(|| "-".to_string(), |l| l.to_string());
        let _ = writeln!(
            out,
            "{:<8} {:<20} {:>5}  {}",
            f.severity.to_string(),
            f.kind.slug(),
            line,
            f.message
        );
    }
    let warnings = findings.iter().filter(|f| f.severity == Severity::Warning).count();
    let infos = findings.len() - warnings;
    let _ = writeln!(
        out,
        "{} finding{}: {warnings} warning{}, {infos} info",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    );
    out
}

/// The `getafix-lint/1` JSON document (one object, trailing newline).
pub fn render_json(file: &str, findings: &[Finding]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "getafix-lint/1");
    w.field_str("file", file);
    w.key("findings");
    w.begin_array();
    for f in findings {
        w.begin_object();
        w.field_str("kind", f.kind.slug());
        w.field_str("severity", &f.severity.to_string());
        if !f.proc_name.is_empty() {
            w.field_str("proc", &f.proc_name);
        }
        if let Some(pc) = f.pc {
            w.field_u64("pc", u64::from(pc));
        }
        if let Some(line) = f.line {
            w.field_u64("line", u64::from(line));
        }
        w.field_str("message", &f.message);
        w.end_object();
    }
    w.end_array();
    let warnings = findings.iter().filter(|f| f.severity == Severity::Warning).count();
    w.field_u64("warnings", warnings as u64);
    w.field_u64("infos", (findings.len() - warnings) as u64);
    w.end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}
