//! The `getafix` command-line tool: reachability checking for sequential
//! and concurrent Boolean programs, plus formula emission.
//!
//! ```text
//! getafix check <file.bp> --label L [--algo ef-opt|ef|ef-naive|simple|bebop|moped-fwd|moped-bwd|oracle]
//!                         [--strategy worklist|round-robin] [--max-iter N] [--jobs N] [--slice]
//!                         [--stats] [--trace] [--trace-out FILE] [--profile] [--progress] [--diag-out DIR]
//! getafix check-conc <file.cbp> --label L --switches K
//!                         [--strategy worklist|round-robin] [--max-iter N] [--jobs N] [--slice]
//!                         [--stats] [--trace] [--trace-out FILE] [--profile] [--progress] [--diag-out DIR]
//! getafix lint <file.bp|file.cbp> [--json] [--deny]
//! getafix inspect <file.bp> [--label L] [--algo ef-opt|ef|ef-naive|simple] [--dot] [--json]
//! getafix emit-mu <file.bp> [--algo ef-opt|ef|ef-naive|simple]
//! ```
//!
//! Exit codes distinguish verdicts so scripts can branch: `0` unreachable
//! (or no verdict asked for, as with `emit-mu`), `1` reachable, `2` error,
//! `3` resource limit exceeded (`--timeout` / `--memory-budget` / Ctrl-C)
//! with the partial solver statistics still printed.

use getafix::boolprog::analysis::{lint as lint_cfg, slice as slice_cfg, AnalysisOptions};
use getafix::boolprog::SliceStats;
use getafix::conc::{slice_merged, ConcError, ConcLimits};
use getafix::lint::{has_warnings, render_json, render_table};
use getafix::prelude::*;
use getafix::witness::{concurrent_trace_from_schedule, WitnessError};
use getafix_core::AnalysisError;
use getafix_mucalc::{
    depgraph_dot, depgraph_json, install_sigint_cancel, LimitReport, ResourceLimits, SolveError,
    SolveOptions, SolveStats, Strategy,
};
use getafix_telemetry::{self as telemetry, Phase};
use std::process::ExitCode;

/// What a run concluded — mapped onto the process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// A target is reachable (exit 1 — the interesting verdict).
    Reachable,
    /// No target is reachable (exit 0).
    Unreachable,
    /// The command produces no verdict (`emit-mu`, `help`; exit 0).
    NoVerdict,
    /// A resource bound tripped — deadline, memory budget, or Ctrl-C —
    /// and the run stopped cooperatively with partial statistics (exit 3).
    ResourceExhausted,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome::Unreachable) | Ok(Outcome::NoVerdict) => ExitCode::SUCCESS,
        Ok(Outcome::Reachable) => ExitCode::from(1),
        Ok(Outcome::ResourceExhausted) => ExitCode::from(3),
        Err(msg) => {
            eprintln!("getafix: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  getafix check <file.bp> --label L [--algo ALGO] [--strategy STRAT] [--max-iter N]
                          [--jobs N] [--slice] [--timeout SECS] [--memory-budget MB]
                          [--stats] [--stats-json] [--trace]
                          [--trace-out FILE] [--profile] [--progress] [--diag-out DIR]
  getafix check-conc <file.cbp> --label L --switches K [--strategy STRAT] [--max-iter N]
                          [--jobs N] [--slice] [--timeout SECS] [--memory-budget MB]
                          [--stats] [--stats-json] [--trace]
                          [--trace-out FILE] [--profile] [--progress] [--diag-out DIR]
  getafix lint <file.bp|file.cbp> [--json] [--deny]
  getafix inspect <file.bp> [--label L] [--algo ALGO] [--dot] [--json]
  getafix emit-mu <file.bp> [--algo ALGO]
  getafix help

ALGO:  ef-opt (default) | ef | ef-naive | simple | bebop | moped-fwd | moped-bwd | oracle
STRAT: worklist (default) | round-robin   -- fixed-point solver scheduling strategy
--jobs N: worker threads for parallel stratified solving (worklist strategy).
         1 (default) is the exact single-threaded path; 0 means all available
         parallelism; N > 1 solves waves of independent SCC strata concurrently,
         each worker on a private BDD manager. Verdicts, summary truth tables
         and re-evaluation counts are bit-identical at any job count. The
         GETAFIX_JOBS environment variable supplies a default when the flag is
         absent. Ignored by --trace (provenance pins the coordinator's arena)
--slice: run the pre-solve static analysis (call graph, constant propagation,
         faint-variable liveness) and solve the verdict-preserving slice instead
         of the full program — dead procedures, statically-infeasible edges and
         never-read variables are deleted before encoding, so the BDD allocates
         strictly fewer variables. Verdicts are identical with and without the
         flag; a target pruned by the slice is provably unreachable and reported
         without solving. Combine with --stats for the before/after sizes.
         For `check-conc` the analysis runs in concurrent mode (shared globals
         are treated as unknown at every step), so a pruned target is
         unreachable under ANY context-switch bound
--timeout SECS: wall-clock deadline for the whole solve (fractional values
         allowed). On expiry every cooperating loop — fixpoint re-evaluations,
         explicit search, witness extraction, all pool workers — stops at its
         next poll point and the run exits 3 with the partial statistics
         collected so far. The GETAFIX_TIMEOUT environment variable supplies a
         default when the flag is absent. Ctrl-C (SIGINT) rides the same
         cancellation token: the first interrupt stops the solve cooperatively
         (exit 3, partial stats); a second one kills the process
--memory-budget MB: bound the BDD arena. On pressure the solver degrades
         gracefully first — forces a garbage collection, dropping computed
         caches and dead intermediates — and only if the live set itself still
         exceeds the budget does the run exit 3, with peak-arena diagnostics
         in the partial statistics
--trace: on a REACHABLE verdict, print a concrete witness. For `check`: a
         replay-validated error trace. For `check-conc`: a statement-granular
         interleaved trace — per round, every `(thread, pc, statement)` step with
         procedure names, labels, source lines and valuations, in the sequential
         trace's format — accepted by the deterministic guided replayer (one
         successor per step, no search) before printing; programs whose witnesses
         need unbounded recursion degrade to the round-level schedule. Verdict and
         witness come from ONE solve: the trace is onion-peeled from the verdict
         solver's rank provenance (for ef/ef-naive this drops the early-termination
         clause, same verdict; `simple` falls back to a dedicated witness solve)
--stats-json: print the full solver statistics as machine-readable JSON
         (re-evaluations, ordered-schedule work, provenance memory, GC reclaim);
         when a telemetry collector is active (--trace-out/--profile/--progress/
         --diag-out) a `metrics` object with the live counters/gauges is embedded
--trace-out FILE: record spans, events and kernel metrics across the whole run
         (parse, encode, strata, SCC rounds, re-evaluations, GC pauses, witness
         extraction) and write them as Chrome trace-event JSON — load the file in
         https://ui.perfetto.dev or about:tracing to see the span tree over time
--profile: print a human summary of the same recording: top spans by self time,
         a per-relation re-evaluation latency histogram, event counts and the
         \"top offenders\" table — the disjuncts doing the most recompilation work
--progress: print a throttled heartbeat to stderr while the solve runs
         (stratum k/N, re-evaluations, arena bytes, GC pauses) — cheap enough to
         leave on for long runs; the observed solve does bit-identical work
--diag-out DIR: write the whole diagnostics bundle in one shot — trace.json
         (Chrome trace), flamegraph.folded (inferno/speedscope folded stacks),
         depgraph.dot + depgraph.json (solve topology), stats.json (solver
         statistics with the metrics registry embedded) and manifest.json
         (tool version, platform, argv)
lint:    parse the program and report the pre-solve analysis as findings — dead
         procedures, never-read globals/locals/parameters, unreachable
         statements, statically infeasible branches, and asserts that never or
         always fail. `.cbp` inputs are merged and analyzed in concurrent mode.
         --json prints the machine-readable `getafix-lint/1` document instead of
         the human table; --deny exits 1 when any warning-severity finding is
         present (info findings — e.g. an assert that can never fail — never
         fail the run)
inspect: parse the program, run the solver once and report the solve topology —
         SCCs, dependency edges and schedule classification (once / chaotic /
         ordered / nested). --dot / --json print the GraphViz / JSON document
         instead of the human table

exit codes: 0 = unreachable (or no verdict requested), 1 = reachable, 2 = error,
            3 = resource limit exceeded (--timeout / --memory-budget / GETAFIX_TIMEOUT /
                Ctrl-C) -- the partial solver statistics are still printed";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The `--trace-out` / `--profile` / `--progress` / `--diag-out`
/// observability outputs of a run.
#[derive(Debug, Default)]
struct TelemetryFlags {
    /// `--trace-out FILE`: write the recording as Chrome trace-event JSON.
    trace_out: Option<String>,
    /// `--profile`: print the top-spans/latency-histogram summary and the
    /// per-disjunct "top offenders" table.
    profile: bool,
    /// `--progress`: throttled stderr heartbeat while the solve runs.
    progress: bool,
    /// `--diag-out DIR`: write the whole diagnostics bundle into `DIR`.
    diag_out: Option<String>,
}

impl TelemetryFlags {
    fn parse(args: &[String]) -> TelemetryFlags {
        TelemetryFlags {
            trace_out: flag_value(args, "--trace-out").map(str::to_string),
            profile: has_flag(args, "--profile"),
            progress: has_flag(args, "--progress"),
            diag_out: flag_value(args, "--diag-out").map(str::to_string),
        }
    }

    fn wanted(&self) -> bool {
        self.trace_out.is_some() || self.profile || self.progress || self.diag_out.is_some()
    }

    /// Installs the thread-local collector if any output was asked for.
    /// Must run before parsing so the Parse span lands in the recording.
    /// `--progress` additionally attaches the heartbeat sink, throttled to
    /// one line per half second.
    fn install(&self) {
        if self.wanted() {
            telemetry::install();
            if self.progress {
                telemetry::attach_progress(std::time::Duration::from_millis(500), |line| {
                    eprintln!("{line}");
                });
            }
        }
    }

    /// Takes the recording and emits the requested outputs. The trace file
    /// is written even on a reachable verdict (exit 1) — the span tree is
    /// most interesting exactly when the solver did real work. `stats` is
    /// the final solver statistics when the run produced them (formula
    /// algorithms; `None` for the hand-coded baselines).
    fn finish(&self, stats: Option<&SolveStats>) -> Result<(), String> {
        if !self.wanted() {
            return Ok(());
        }
        let data = telemetry::take().ok_or("telemetry collector was not installed")?;
        if let Some(path) = &self.trace_out {
            std::fs::write(path, data.chrome_trace_json())
                .map_err(|e| format!("--trace-out {path}: {e}"))?;
            eprintln!("trace written to {path} (load in https://ui.perfetto.dev)");
        }
        if self.profile {
            println!();
            print!("{}", data.profile_summary(12));
            if let Some(offenders) = stats.map(|s| s.top_offenders(10)) {
                if !offenders.is_empty() {
                    println!();
                    print!("{offenders}");
                }
            }
        }
        if let Some(dir) = &self.diag_out {
            let stats = stats.ok_or(
                "--diag-out includes the solve topology and solver statistics; the selected \
                 algorithm did not run the fixed-point solver (use ef-opt, ef, ef-naive, simple)",
            )?;
            write_diag_bundle(dir, &data, stats)?;
        }
        Ok(())
    }
}

/// Writes the `--diag-out` bundle: everything a performance bug report
/// needs, in one directory.
fn write_diag_bundle(
    dir: &str,
    data: &telemetry::TraceData,
    stats: &SolveStats,
) -> Result<(), String> {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("--diag-out {}: {e}", dir.display()))?;
    let write = |name: &str, contents: String| {
        std::fs::write(dir.join(name), contents).map_err(|e| format!("--diag-out {name}: {e}"))
    };
    write("trace.json", data.chrome_trace_json())?;
    write("flamegraph.folded", data.folded_stacks())?;
    write("depgraph.dot", depgraph_dot(stats))?;
    write("depgraph.json", depgraph_json(stats))?;
    write("stats.json", stats.to_json_with_metrics(Some(&data.metrics)))?;
    write("manifest.json", manifest_json())?;
    eprintln!("diagnostics bundle written to {}", dir.display());
    Ok(())
}

/// The bundle's `manifest.json`: enough provenance to interpret the other
/// files later — tool version, platform and the exact invocation.
fn manifest_json() -> String {
    let mut w = telemetry::json::JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "getafix-diag-manifest/1");
    w.field_str("tool", "getafix");
    w.field_str("version", env!("CARGO_PKG_VERSION"));
    w.field_str("os", std::env::consts::OS);
    w.field_str("arch", std::env::consts::ARCH);
    w.field_str("build", if cfg!(debug_assertions) { "debug" } else { "release" });
    w.key("argv");
    w.begin_array();
    for arg in std::env::args() {
        w.value_str(&arg);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Parses `--strategy` / `--max-iter` into validated solver options.
fn parse_solve_options(args: &[String]) -> Result<SolveOptions, String> {
    let mut options = SolveOptions::default();
    if let Some(s) = flag_value(args, "--strategy") {
        options.strategy = s.parse::<Strategy>()?;
    }
    if let Some(n) = flag_value(args, "--max-iter") {
        let n: usize = n.parse().map_err(|e| format!("--max-iter: {e}"))?;
        if n == 0 {
            return Err("--max-iter: the iteration bound must be at least 1 \
                        (0 would reject every fixpoint)"
                .into());
        }
        options.max_iterations = n;
    }
    // `--jobs 0` is meaningful (all available parallelism), so only the
    // unparsable is rejected; the flag wins over the GETAFIX_JOBS default.
    match flag_value(args, "--jobs") {
        Some(n) => {
            options.jobs = n.parse().map_err(|e| format!("--jobs: {e} (use 0 for all cores)"))?;
        }
        None => {
            if let Ok(v) = std::env::var("GETAFIX_JOBS") {
                options.jobs = v
                    .trim()
                    .parse()
                    .map_err(|e| format!("GETAFIX_JOBS: {e} (use 0 for all cores)"))?;
            }
        }
    }
    // Resource governance: the deadline and node budget land on the shared
    // limits, whose cancel token doubles as the SIGINT route. The flag wins
    // over the GETAFIX_TIMEOUT default.
    let timeout = match flag_value(args, "--timeout") {
        Some(s) => Some(s.to_string()),
        None => std::env::var("GETAFIX_TIMEOUT").ok(),
    };
    if let Some(s) = timeout {
        let secs: f64 = s.trim().parse().map_err(|e| format!("--timeout: {e}"))?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err("--timeout: the deadline must be a positive number of seconds".into());
        }
        options.limits = options.limits.with_timeout(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(s) = flag_value(args, "--memory-budget") {
        let mb: usize = s.parse().map_err(|e| format!("--memory-budget: {e}"))?;
        if mb == 0 {
            return Err("--memory-budget: the budget must be at least 1 MB".into());
        }
        // A live node costs ~32 bytes across the arena, unique table and
        // computed caches, so the megabyte budget becomes a node budget.
        options.limits = options.limits.with_node_budget(mb * (1024 * 1024 / 32));
    }
    Ok(options)
}

/// Which statistics outputs a run asked for.
#[derive(Debug, Clone, Copy, Default)]
struct StatsOutput {
    /// `--stats`: the human-readable tables.
    human: bool,
    /// `--stats-json`: the machine-readable JSON object
    /// ([`SolveStats::to_json`] — the same serialization the bench
    /// reporter and CI artifacts consume).
    json: bool,
}

impl StatsOutput {
    fn wanted(self) -> bool {
        self.human || self.json
    }

    fn emit(self, stats: &SolveStats, limits: &ResourceLimits) {
        if self.human {
            print_stats(stats);
            print_limits_line(limits);
        }
        if self.json {
            // With a live collector the metrics registry rides along; with
            // none the document is byte-identical to previous releases.
            match telemetry::metrics_snapshot() {
                Some(reg) => println!("{}", stats.to_json_with_metrics(Some(&reg))),
                None => println!("{}", stats.to_json()),
            }
        }
    }
}

/// Prints the per-relation and per-SCC solver statistics (`--stats`).
fn print_stats(stats: &SolveStats) {
    println!();
    println!(
        "{:<16} {:>6} {:>8} {:>10} {:>10} {:>5}",
        "relation", "iters", "re-evals", "nodes", "peak", "scc"
    );
    for (name, r) in &stats.relations {
        println!(
            "{:<16} {:>6} {:>8} {:>10} {:>10} {:>5}",
            name,
            r.iterations,
            r.reevaluations,
            r.final_nodes,
            r.peak_nodes,
            r.scc.map(|s| s.to_string()).unwrap_or_else(|| "-".into())
        );
    }
    println!();
    println!(
        "{:<5} {:<10} {:<9} {:<8} {:>8} {:>9} {:<10}  members",
        "scc", "kind", "monotone", "schedule", "evals", "wall ms", "deps"
    );
    for (i, scc) in stats.sccs.iter().enumerate() {
        println!(
            "{:<5} {:<10} {:<9} {:<8} {:>8} {:>9.2} {:<10}  {}",
            i,
            if scc.recursive { "recursive" } else { "straight" },
            if scc.monotone { "yes" } else { "no" },
            scc.schedule(),
            scc.evaluations,
            scc.wall_ms,
            deps_cell(&scc.dep_sccs),
            scc.members.join(", ")
        );
    }
    println!();
    println!("total re-evaluations: {}", stats.total_reevaluations());
    println!("ordered-schedule re-evaluations: {}", stats.ordered_reevaluations);
    if stats.provenance_nodes > 0 {
        println!("provenance memory: {} BDD nodes", stats.provenance_nodes);
    }
    if stats.gcs > 0 {
        println!(
            "gc: {} collections, {} nodes reclaimed, {:.2} ms total pause",
            stats.gcs, stats.gc_reclaimed_nodes, stats.gc_pause_ms
        );
    }
    if stats.jobs > 1 {
        let walls: Vec<String> = stats.worker_wall_ms.iter().map(|w| format!("{w:.2}")).collect();
        println!(
            "parallel: {} jobs, per-worker stratum wall {} ms",
            stats.jobs,
            if walls.is_empty() { "-".to_string() } else { walls.join(" / ") }
        );
    }
    let lookups = stats.cache_hits + stats.cache_misses;
    if lookups > 0 {
        println!(
            "bdd cache: {} hits / {} misses ({:.1}% hit rate)",
            stats.cache_hits,
            stats.cache_misses,
            100.0 * stats.cache_hits as f64 / lookups as f64
        );
    }
    println!(
        "bdd arena: {} nodes, {} bytes (peak {} bytes)",
        stats.arena_nodes, stats.arena_bytes, stats.peak_arena_bytes
    );
}

/// The `--stats` `limits:` line — what resource governance was configured
/// (none by default) and how much of it the run consumed. The per-relation
/// counters above are the work done *within* those bounds.
fn print_limits_line(limits: &ResourceLimits) {
    if !limits.any_configured() && limits.cancel.cancelled().is_none() {
        println!("limits: none");
        return;
    }
    let deadline = match limits.deadline {
        None => "-".to_string(),
        Some(d) => match d.checked_duration_since(std::time::Instant::now()) {
            Some(left) => format!("{:.1}s left", left.as_secs_f64()),
            None => "expired".to_string(),
        },
    };
    let nodes = limits.node_budget.map_or_else(|| "-".to_string(), |n| format!("{n} nodes"));
    let steps_budget = limits.step_budget.map_or_else(|| "-".to_string(), |n| n.to_string());
    let tripped = limits.cancel.cancelled().map_or_else(|| "none".to_string(), |k| k.to_string());
    println!(
        "limits: deadline {deadline}, node-budget {nodes}, step-budget {steps_budget}, \
         steps used {}, tripped: {tripped}",
        limits.cancel.steps()
    );
}

/// The exit-3 surface shared by `check` and `check-conc`: the
/// resource-limit verdict line, then the partial statistics (the solver
/// returns real counters up to the trip, not a placeholder).
fn report_limit(
    context: &str,
    report: &LimitReport,
    stats_out: StatsOutput,
    limits: &ResourceLimits,
) -> (Outcome, Option<SolveStats>) {
    println!("resource-limit: {context} — {report}");
    stats_out.emit(&report.partial, limits);
    (Outcome::ResourceExhausted, Some(report.partial.clone()))
}

/// The `deps` column of the SCC tables: the components this one reads,
/// `-` when it only reads inputs.
fn deps_cell(dep_sccs: &[usize]) -> String {
    if dep_sccs.is_empty() {
        "-".into()
    } else {
        dep_sccs.iter().map(|d| format!("{d}")).collect::<Vec<_>>().join(",")
    }
}

/// The human rendering of `getafix inspect`: the SCC table with its
/// dependency edges, plus a schedule-class census.
fn print_topology(stats: &SolveStats) {
    println!("solve topology: {} SCCs (dependencies-first order)", stats.sccs.len());
    println!();
    println!(
        "{:<5} {:<10} {:<8} {:>8} {:>9} {:>10} {:<10}  members",
        "scc", "kind", "schedule", "evals", "wall ms", "peak", "deps"
    );
    for (i, scc) in stats.sccs.iter().enumerate() {
        let peak = scc
            .members
            .iter()
            .filter_map(|m| stats.relations.get(m).map(|r| r.peak_nodes))
            .max()
            .unwrap_or(0);
        println!(
            "{:<5} {:<10} {:<8} {:>8} {:>9.2} {:>10} {:<10}  {}",
            i,
            if scc.recursive { "recursive" } else { "straight" },
            scc.schedule(),
            scc.evaluations,
            scc.wall_ms,
            peak,
            deps_cell(&scc.dep_sccs),
            scc.members.join(", ")
        );
    }
    println!();
    let census = |class: &str| stats.sccs.iter().filter(|s| s.schedule() == class).count();
    println!(
        "schedules: {} once, {} chaotic, {} ordered, {} nested — {} re-evaluations total",
        census("once"),
        census("chaotic"),
        census("ordered"),
        census("nested"),
        stats.total_reevaluations()
    );
}

/// Prints the `--slice --stats` before/after size accounting.
fn print_slice_stats(s: &SliceStats) {
    println!(
        "slice: pcs {} -> {}, edges {} -> {}, globals {} -> {}, max locals {} -> {}, \
         state bits/frame {} -> {} ({} relations pruned)",
        s.pcs_before,
        s.pcs_after,
        s.edges_before,
        s.edges_after,
        s.globals_before,
        s.globals_after,
        s.max_locals_before,
        s.max_locals_after,
        s.state_bits_before,
        s.state_bits_after,
        s.relations_pruned()
    );
}

fn run(args: &[String]) -> Result<Outcome, String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "check" => {
            let path = args.get(1).ok_or("missing input file")?;
            let label = flag_value(args, "--label").ok_or("missing --label")?;
            let algo = flag_value(args, "--algo").unwrap_or("ef-opt");
            let options = parse_solve_options(args)?;
            // Ctrl-C stops the solve at its next poll point: the verdict
            // line says `interrupted`, partial stats print, exit is 3.
            install_sigint_cancel(&options.limits.cancel);
            let solver_flags = has_flag(args, "--strategy")
                || has_flag(args, "--max-iter")
                || has_flag(args, "--jobs")
                || has_flag(args, "--timeout")
                || has_flag(args, "--memory-budget");
            let tele = TelemetryFlags::parse(args);
            if tele.diag_out.is_some()
                && matches!(algo, "bebop" | "moped-fwd" | "moped-bwd" | "oracle")
            {
                return Err(format!(
                    "--diag-out includes the solve topology and solver statistics; the `{algo}` \
                     baseline does not run the fixed-point solver (use ef-opt, ef, ef-naive, \
                     simple)"
                ));
            }
            tele.install();
            let cfg = {
                let mut span = telemetry::span(Phase::Parse, "parse");
                span.attr("file", path.as_str());
                let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let program = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
                Cfg::build(&program).map_err(|e| e.to_string())?
            };
            // `--slice`: solve the verdict-preserving slice instead. The
            // label is resolved on the original CFG first, so a pruned
            // target short-circuits to an `unreachable` verdict without
            // encoding anything.
            let cfg = if has_flag(args, "--slice") {
                let pc = cfg.label(label).ok_or_else(|| format!("no label `{label}`"))?;
                let sliced = {
                    let _span = telemetry::span(Phase::Encode, "slice");
                    slice_cfg(&cfg, &AnalysisOptions::sequential().with_targets(&[pc]))
                };
                if has_flag(args, "--stats") {
                    print_slice_stats(&sliced.stats);
                }
                if sliced.map_pc(pc).is_none() {
                    println!(
                        "unreachable: `{label}` — pruned by the pre-solve slice \
                         (provably unreachable)"
                    );
                    tele.finish(None)?;
                    return Ok(Outcome::Unreachable);
                }
                sliced.cfg
            } else {
                cfg
            };
            let (outcome, stats) = check_sequential(
                &cfg,
                label,
                algo,
                options,
                StatsOutput {
                    human: has_flag(args, "--stats"),
                    json: has_flag(args, "--stats-json"),
                },
                solver_flags,
                has_flag(args, "--trace"),
            )?;
            tele.finish(stats.as_ref())?;
            Ok(outcome)
        }
        "inspect" => {
            let path = args.get(1).ok_or("missing input file")?;
            let algo_name = flag_value(args, "--algo").unwrap_or("ef-opt");
            if matches!(algo_name, "bebop" | "moped-fwd" | "moped-bwd" | "oracle") {
                return Err(format!(
                    "inspect reports the fixed-point solver's dependency graph; the \
                     `{algo_name}` baseline does not run it (use ef-opt, ef, ef-naive, simple)"
                ));
            }
            let algo = parse_algo(algo_name)?;
            let options = parse_solve_options(args)?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let program = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
            let cfg = Cfg::build(&program).map_err(|e| e.to_string())?;
            // A target label sharpens the statistics but is not needed for
            // the topology — the dependency graph is a property of the
            // encoded equation system.
            let targets = match flag_value(args, "--label") {
                Some(l) => vec![cfg.label(l).ok_or_else(|| format!("no label `{l}`"))?],
                None => Vec::new(),
            };
            let mut solver =
                build_solver_with(&cfg, &targets, algo, options).map_err(|e| e.to_string())?;
            solver.eval_query("reach").map_err(|e| e.to_string())?;
            let stats = solver.stats();
            if has_flag(args, "--dot") {
                print!("{}", depgraph_dot(stats));
            } else if has_flag(args, "--json") {
                println!("{}", depgraph_json(stats));
            } else {
                print_topology(stats);
            }
            Ok(Outcome::NoVerdict)
        }
        "check-conc" => {
            let path = args.get(1).ok_or("missing input file")?;
            let label = flag_value(args, "--label").ok_or("missing --label")?;
            let switches: usize = flag_value(args, "--switches")
                .ok_or("missing --switches")?
                .parse()
                .map_err(|e| format!("--switches: {e}"))?;
            if switches == 0 {
                return Err("--switches: the context-switch bound must be at least 1; \
                            a bound of 0 is a sequential question — use `check` on the \
                            first thread instead"
                    .into());
            }
            let options = parse_solve_options(args)?;
            // Ctrl-C stops the solve at its next poll point: the verdict
            // line says `interrupted`, partial stats print, exit is 3.
            install_sigint_cancel(&options.limits.cancel);
            let limits = options.limits.clone();
            let tele = TelemetryFlags::parse(args);
            tele.install();
            let conc = {
                let mut span = telemetry::span(Phase::Parse, "parse");
                span.attr("file", path.as_str());
                let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                parse_concurrent(&src).map_err(|e| format!("{path}: {e}"))?
            };
            let merged = merge(&conc).map_err(|e| e.to_string())?;
            let mut pc = merged.cfg.label(label).ok_or_else(|| format!("no label `{label}`"))?;
            // `--slice`: concurrent-mode analysis (globals are unknown at
            // every step), so a pruned target is unreachable under ANY
            // context-switch bound — not just the requested one.
            let merged = if has_flag(args, "--slice") {
                let (sliced_merged, sliced) = {
                    let _span = telemetry::span(Phase::Encode, "slice");
                    slice_merged(&merged, &[pc])
                };
                if has_flag(args, "--stats") {
                    print_slice_stats(&sliced.stats);
                }
                match sliced.map_pc(pc) {
                    Some(new_pc) => {
                        pc = new_pc;
                        sliced_merged
                    }
                    None => {
                        println!(
                            "unreachable: `{label}` within {switches} switches — pruned by the \
                             pre-solve slice (provably unreachable at any context-switch bound)"
                        );
                        tele.finish(None)?;
                        return Ok(Outcome::Unreachable);
                    }
                }
            } else {
                merged
            };
            // One solver for verdict *and* (with --trace) witness: the
            // extraction reuses the memoized `Reach` interpretation.
            let stats_out = StatsOutput {
                human: has_flag(args, "--stats"),
                json: has_flag(args, "--stats-json"),
            };
            let mut solver = build_conc_solver_with(&merged, &[pc], switches, options)
                .map_err(|e| e.to_string())?;
            let r = match check_conc_solver(&mut solver, switches) {
                Ok(r) => r,
                Err(ConcError::ResourceLimit(report)) => {
                    let (outcome, _) = report_limit(
                        &format!("`{label}` within {switches} switches"),
                        &report,
                        stats_out,
                        &limits,
                    );
                    tele.finish(Some(&report.partial))?;
                    return Ok(outcome);
                }
                Err(e) => return Err(e.to_string()),
            };
            println!(
                "{}: `{label}` within {switches} switches — Reach: {:.0} tuples, {} BDD nodes, {} iterations, {:.3}s",
                if r.reachable { "REACHABLE" } else { "unreachable" },
                r.reach_tuples,
                r.reach_nodes,
                r.iterations,
                r.solve_time.as_secs_f64()
            );
            if has_flag(args, "--trace") && r.reachable {
                let schedule = match concurrent_witness_from(&mut solver, &merged, &[pc], switches)
                {
                    Ok(s) => s.ok_or("witness extraction disagreed with the verdict")?,
                    Err(WitnessError::ResourceLimit(kind)) => {
                        println!("resource-limit: witness extraction stopped ({kind})");
                        stats_out.emit(&r.stats, &limits);
                        tele.finish(Some(&r.stats))?;
                        return Ok(Outcome::ResourceExhausted);
                    }
                    Err(e) => return Err(e.to_string()),
                };
                println!();
                // Statement-granular refinement materializes call stacks,
                // so witnesses needing unbounded recursion exceed the
                // explicit engine's limits — degrade to the round-level
                // schedule (structural guarantee only) instead of failing
                // the command.
                // The explicit refinement polls the same limits: its BFS
                // expansions count against the shared step budget/deadline.
                let refine_limits =
                    ConcLimits { resources: limits.clone(), ..ConcLimits::default() };
                match concurrent_trace_from_schedule(&merged, &[pc], &schedule, refine_limits) {
                    Ok(trace) => {
                        println!(
                            "trace ({} statement steps over {} rounds, {} of ≤ {switches} \
                             context switches, guided-replay-validated):",
                            trace.steps.len(),
                            schedule.rounds.len(),
                            schedule.switches()
                        );
                        print!("{}", trace.render(&merged.cfg));
                    }
                    Err(WitnessError::Limit(_) | WitnessError::TooManyVariables(_)) => {
                        println!(
                            "schedule ({} of ≤ {switches} context switches, structurally \
                             validated; statement refinement exceeded the explicit engine's \
                             limits):",
                            schedule.switches()
                        );
                        print!("{}", schedule.render(&merged.cfg));
                    }
                    Err(WitnessError::ResourceLimit(kind)) => {
                        println!("resource-limit: statement refinement stopped ({kind})");
                        stats_out.emit(&r.stats, &limits);
                        tele.finish(Some(&r.stats))?;
                        return Ok(Outcome::ResourceExhausted);
                    }
                    Err(e) => return Err(e.to_string()),
                }
            }
            if stats_out.wanted() {
                stats_out.emit(&r.stats, &limits);
            }
            tele.finish(Some(&r.stats))?;
            Ok(if r.reachable { Outcome::Reachable } else { Outcome::Unreachable })
        }
        "lint" => {
            let path = args.get(1).ok_or("missing input file")?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            // `.cbp` files are concurrent programs: merge the threads and
            // analyze in concurrent mode (shared globals unknown at every
            // step). Everything else parses as a sequential program.
            let findings = if path.ends_with(".cbp") {
                let conc = parse_concurrent(&src).map_err(|e| format!("{path}: {e}"))?;
                let merged = merge(&conc).map_err(|e| e.to_string())?;
                let opts =
                    AnalysisOptions::concurrent_with_entries(&merged.cfg, &merged.thread_entries);
                lint_cfg(&merged.cfg, &opts)
            } else {
                let program = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
                let cfg = Cfg::build(&program).map_err(|e| e.to_string())?;
                lint_cfg(&cfg, &AnalysisOptions::sequential())
            };
            if has_flag(args, "--json") {
                print!("{}", render_json(path, &findings));
            } else {
                print!("{}", render_table(path, &findings));
            }
            // `--deny` maps warnings onto exit 1 so CI can gate on a clean
            // corpus; info findings never fail the run.
            Ok(if has_flag(args, "--deny") && has_warnings(&findings) {
                Outcome::Reachable
            } else {
                Outcome::NoVerdict
            })
        }
        "emit-mu" => {
            let path = args.get(1).ok_or("missing input file")?;
            if has_flag(args, "--strategy")
                || has_flag(args, "--max-iter")
                || has_flag(args, "--jobs")
                || has_flag(args, "--timeout")
                || has_flag(args, "--memory-budget")
                || has_flag(args, "--stats")
                || has_flag(args, "--stats-json")
                || has_flag(args, "--trace")
                || has_flag(args, "--trace-out")
                || has_flag(args, "--profile")
                || has_flag(args, "--progress")
                || has_flag(args, "--diag-out")
            {
                return Err("--strategy/--max-iter/--jobs/--timeout/--memory-budget/--stats/\
                            --stats-json/--trace/--trace-out/--profile/--progress/--diag-out \
                            configure or observe the fixed-point solver; emit-mu only prints \
                            the formulae and never runs it"
                    .into());
            }
            let algo = parse_algo(flag_value(args, "--algo").unwrap_or("ef-opt"))?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let program = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
            let cfg = Cfg::build(&program).map_err(|e| e.to_string())?;
            let system = emit_system(&cfg, algo).map_err(|e: AnalysisError| e.to_string())?;
            println!("{system}");
            Ok(Outcome::NoVerdict)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(Outcome::NoVerdict)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_algo(name: &str) -> Result<Algorithm, String> {
    Ok(match name {
        "simple" => Algorithm::SummarySimple,
        "ef-naive" => Algorithm::EntryForwardNaive,
        "ef" => Algorithm::EntryForward,
        "ef-opt" => Algorithm::EntryForwardOpt,
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

/// Runs one sequential check, returning the verdict and — for formula
/// algorithms — the final solver statistics (the telemetry finisher feeds
/// them to `--profile`'s offenders table and the `--diag-out` bundle).
fn check_sequential(
    cfg: &Cfg,
    label: &str,
    algo: &str,
    options: SolveOptions,
    stats_out: StatsOutput,
    solver_flags: bool,
    trace: bool,
) -> Result<(Outcome, Option<SolveStats>), String> {
    let pc = cfg.label(label).ok_or_else(|| format!("no label `{label}`"))?;
    // The options move into the solver, but the limits clone shares the
    // same deadline and cancel token — kept for the `limits:` stats line
    // and for threading governance into witness extraction.
    let limits = options.limits.clone();
    let baseline = matches!(algo, "bebop" | "moped-fwd" | "moped-bwd" | "oracle");
    if baseline && stats_out.wanted() {
        return Err(format!(
            "--stats/--stats-json report fixed-point solver statistics; the `{algo}` baseline \
             does not run the solver (use a formula algorithm: ef-opt, ef, ef-naive, simple)"
        ));
    }
    if baseline && solver_flags {
        return Err(format!(
            "--strategy/--max-iter/--jobs/--timeout/--memory-budget configure the fixed-point \
             solver; the `{algo}` baseline does not run it (use a formula algorithm: ef-opt, \
             ef, ef-naive, simple)"
        ));
    }

    // The single-solve trace path: for trace-capable formula algorithms
    // the verdict solver records provenance and the witness is peeled
    // straight out of it — exactly one solve answers "reachable?" and
    // "why?". (`simple` and the baselines fall through to the legacy
    // two-solve extraction below.)
    if trace && !baseline {
        let a = parse_algo(algo)?;
        if let Some(mut solver) =
            build_trace_solver_with(cfg, &[pc], a, options.clone()).map_err(|e| e.to_string())?
        {
            let strategy = options.strategy;
            let t0 = std::time::Instant::now();
            let reachable = match solver.eval_query("reach") {
                Ok(r) => r,
                Err(SolveError::LimitExceeded(report)) => {
                    return Ok(report_limit(&format!("`{label}`"), &report, stats_out, &limits));
                }
                Err(e) => return Err(e.to_string()),
            };
            let solve_time = t0.elapsed();
            let stats = solver.stats().clone();
            println!(
                "{}: `{label}` ({algo}) — {} re-evals ({strategy}), \
                 provenance {} nodes, solve {:.3}s [single-solve trace]",
                if reachable { "REACHABLE" } else { "unreachable" },
                stats.total_reevaluations(),
                stats.provenance_nodes,
                solve_time.as_secs_f64(),
            );
            if reachable {
                // Extraction runs under the same limits as the solve: the
                // onion-peel and path-BFS loops poll the shared token.
                let wl = WitnessLimits { resources: limits.clone(), ..WitnessLimits::default() };
                let t = match sequential_witness_from(&mut solver, cfg, &[pc], wl) {
                    Ok(t) => t.ok_or("witness extraction disagreed with the verdict")?,
                    Err(WitnessError::ResourceLimit(kind)) => {
                        println!("resource-limit: witness extraction stopped ({kind})");
                        stats_out.emit(&stats, &limits);
                        return Ok((Outcome::ResourceExhausted, Some(stats)));
                    }
                    Err(e) => return Err(e.to_string()),
                };
                println!();
                println!("trace ({} steps, replay-validated):", t.steps.len());
                print!("{}", t.render(cfg));
            }
            stats_out.emit(&stats, &limits);
            let outcome = if reachable { Outcome::Reachable } else { Outcome::Unreachable };
            return Ok((outcome, Some(stats)));
        }
    }

    let mut solver_stats = None;
    let witness_options = options.clone();
    let (reachable, detail) = match algo {
        "bebop" => {
            let r = bebop_reachable(cfg, &[pc]).map_err(|e| e.to_string())?;
            (
                r.reachable,
                format!(
                    "{} nodes, {} steps, {:.3}s",
                    r.set_nodes,
                    r.iterations,
                    r.time.as_secs_f64()
                ),
            )
        }
        "moped-fwd" => {
            let r = poststar(cfg, &[pc]).map_err(|e| e.to_string())?;
            (
                r.reachable,
                format!(
                    "{} nodes, {} rounds, {:.3}s",
                    r.set_nodes,
                    r.iterations,
                    r.time.as_secs_f64()
                ),
            )
        }
        "moped-bwd" => {
            let r = prestar(cfg, &[pc]).map_err(|e| e.to_string())?;
            (
                r.reachable,
                format!(
                    "{} nodes, {} rounds, {:.3}s",
                    r.set_nodes,
                    r.iterations,
                    r.time.as_secs_f64()
                ),
            )
        }
        "oracle" => {
            let r = explicit_reachable(cfg, &[pc], 50_000_000).map_err(|e| e.to_string())?;
            (r.reachable, format!("{} path edges", r.path_edges))
        }
        formula => {
            let a = parse_algo(formula)?;
            let strategy = options.strategy;
            let r = match check_reachability_with(cfg, &[pc], a, options) {
                Ok(r) => r,
                Err(AnalysisError::ResourceLimit(report)) => {
                    return Ok(report_limit(&format!("`{label}`"), &report, stats_out, &limits));
                }
                Err(e) => return Err(e.to_string()),
            };
            let line = format!(
                "{} summary nodes, {} iterations, {} re-evals ({strategy}), encode {:.3}s, solve {:.3}s",
                r.summary_nodes,
                r.iterations,
                r.reevaluations,
                r.encode_time.as_secs_f64(),
                r.solve_time.as_secs_f64()
            );
            solver_stats = Some(r.stats);
            (r.reachable, line)
        }
    };
    println!(
        "{}: `{label}` ({algo}) — {detail}",
        if reachable { "REACHABLE" } else { "unreachable" }
    );
    if trace && reachable {
        // Legacy fallback (baselines and `simple`): the witness engine
        // solves its own entry-forward system, so the trace is available
        // whichever algorithm produced the verdict; it is replay-validated
        // in the concrete interpreter before printing.
        let t = sequential_witness(cfg, &[pc], witness_options)
            .map_err(|e| e.to_string())?
            .ok_or("witness extraction disagreed with the verdict")?;
        println!();
        println!("trace ({} steps, replay-validated):", t.steps.len());
        print!("{}", t.render(cfg));
    }
    // Verdict line first, statistics after — same order as `check-conc`.
    if let Some(s) = &solver_stats {
        if stats_out.wanted() {
            stats_out.emit(s, &limits);
        }
    }
    let outcome = if reachable { Outcome::Reachable } else { Outcome::Unreachable };
    Ok((outcome, solver_stats))
}
