//! The `getafix` command-line tool: reachability checking for sequential
//! and concurrent Boolean programs, plus formula emission.
//!
//! ```text
//! getafix check <file.bp> --label L [--algo ef-opt|ef|ef-naive|simple|bebop|moped-fwd|moped-bwd|oracle]
//! getafix check-conc <file.cbp> --label L --switches K
//! getafix emit-mu <file.bp> [--algo ef-opt|ef|ef-naive|simple]
//! ```

use getafix::prelude::*;
use getafix_core::AnalysisError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("getafix: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  getafix check <file.bp> --label L [--algo ALGO]
  getafix check-conc <file.cbp> --label L --switches K
  getafix emit-mu <file.bp> [--algo ALGO]

ALGO: ef-opt (default) | ef | ef-naive | simple | bebop | moped-fwd | moped-bwd | oracle";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "check" => {
            let path = args.get(1).ok_or("missing input file")?;
            let label = flag_value(args, "--label").ok_or("missing --label")?;
            let algo = flag_value(args, "--algo").unwrap_or("ef-opt");
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let program = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
            let cfg = Cfg::build(&program).map_err(|e| e.to_string())?;
            check_sequential(&cfg, label, algo)
        }
        "check-conc" => {
            let path = args.get(1).ok_or("missing input file")?;
            let label = flag_value(args, "--label").ok_or("missing --label")?;
            let switches: usize = flag_value(args, "--switches")
                .ok_or("missing --switches")?
                .parse()
                .map_err(|e| format!("--switches: {e}"))?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let conc = parse_concurrent(&src).map_err(|e| format!("{path}: {e}"))?;
            let r = check_conc_reachability(&conc, label, switches).map_err(|e| e.to_string())?;
            println!(
                "{}: `{label}` within {switches} switches — Reach: {:.0} tuples, {} BDD nodes, {} iterations, {:.3}s",
                if r.reachable { "REACHABLE" } else { "unreachable" },
                r.reach_tuples,
                r.reach_nodes,
                r.iterations,
                r.solve_time.as_secs_f64()
            );
            Ok(())
        }
        "emit-mu" => {
            let path = args.get(1).ok_or("missing input file")?;
            let algo = parse_algo(flag_value(args, "--algo").unwrap_or("ef-opt"))?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let program = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
            let cfg = Cfg::build(&program).map_err(|e| e.to_string())?;
            let system = emit_system(&cfg, algo).map_err(|e: AnalysisError| e.to_string())?;
            println!("{system}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_algo(name: &str) -> Result<Algorithm, String> {
    Ok(match name {
        "simple" => Algorithm::SummarySimple,
        "ef-naive" => Algorithm::EntryForwardNaive,
        "ef" => Algorithm::EntryForward,
        "ef-opt" => Algorithm::EntryForwardOpt,
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

fn check_sequential(cfg: &Cfg, label: &str, algo: &str) -> Result<(), String> {
    let pc = cfg.label(label).ok_or_else(|| format!("no label `{label}`"))?;
    let (reachable, detail) = match algo {
        "bebop" => {
            let r = bebop_reachable(cfg, &[pc]).map_err(|e| e.to_string())?;
            (r.reachable, format!("{} nodes, {} steps, {:.3}s", r.set_nodes, r.iterations, r.time.as_secs_f64()))
        }
        "moped-fwd" => {
            let r = poststar(cfg, &[pc]).map_err(|e| e.to_string())?;
            (r.reachable, format!("{} nodes, {} rounds, {:.3}s", r.set_nodes, r.iterations, r.time.as_secs_f64()))
        }
        "moped-bwd" => {
            let r = prestar(cfg, &[pc]).map_err(|e| e.to_string())?;
            (r.reachable, format!("{} nodes, {} rounds, {:.3}s", r.set_nodes, r.iterations, r.time.as_secs_f64()))
        }
        "oracle" => {
            let r = explicit_reachable(cfg, &[pc], 50_000_000).map_err(|e| e.to_string())?;
            (r.reachable, format!("{} path edges", r.path_edges))
        }
        formula => {
            let a = parse_algo(formula)?;
            let r = check_reachability(cfg, &[pc], a).map_err(|e| e.to_string())?;
            (
                r.reachable,
                format!(
                    "{} summary nodes, {} iterations, encode {:.3}s, solve {:.3}s",
                    r.summary_nodes,
                    r.iterations,
                    r.encode_time.as_secs_f64(),
                    r.solve_time.as_secs_f64()
                ),
            )
        }
    };
    println!(
        "{}: `{label}` ({algo}) — {detail}",
        if reachable { "REACHABLE" } else { "unreachable" }
    );
    Ok(())
}
