//! Golden-output tests for `getafix lint`: the human table and the
//! `getafix-lint/1` JSON document are pinned byte for byte on the shipped
//! `examples/dead_code.bp`. Finding order is part of the lint contract
//! (dead procedures by id, dead globals by index, then per live procedure
//! dead locals, unreachable statements, infeasible branches), so any
//! reordering — however cosmetic — must show up here as a diff.

use getafix::boolprog::analysis::{lint, AnalysisOptions};
use getafix::boolprog::{parse_program, Cfg};
use getafix::lint::{has_warnings, render_json, render_table};

fn dead_code_findings() -> Vec<getafix::boolprog::analysis::Finding> {
    let src = include_str!("../../../examples/dead_code.bp");
    let program = parse_program(src).expect("dead_code.bp parses");
    let cfg = Cfg::build(&program).expect("dead_code.bp builds");
    lint(&cfg, &AnalysisOptions::sequential())
}

#[test]
fn dead_code_example_table_is_stable() {
    let findings = dead_code_findings();
    let table = render_table("examples/dead_code.bp", &findings);
    let expected = "\
examples/dead_code.bp:
severity kind                  line  finding
warning  dead-proc               40  procedure `legacy_path` is never called
warning  dead-global              -  global `scratch` is never read
warning  dead-local               -  local `junk` of `main` is never read
warning  unreachable-code        21  statement at `NEVER:` (line 21) in `main` is unreachable
warning  infeasible-branch       20  branch at line 20 in `main` is statically infeasible (guard is always false)
info     assert-never-fails      27  assert at line 27 in `init` can never fail
6 findings: 5 warnings, 1 info
";
    assert_eq!(table, expected);
    assert!(has_warnings(&findings));
}

#[test]
fn dead_code_example_json_is_stable() {
    let findings = dead_code_findings();
    let json = render_json("examples/dead_code.bp", &findings);
    let expected = r#"{
  "schema": "getafix-lint/1",
  "file": "examples/dead_code.bp",
  "findings": [
    {
      "kind": "dead-proc",
      "severity": "warning",
      "proc": "legacy_path",
      "pc": 18,
      "line": 40,
      "message": "procedure `legacy_path` is never called"
    },
    {
      "kind": "dead-global",
      "severity": "warning",
      "message": "global `scratch` is never read"
    },
    {
      "kind": "dead-local",
      "severity": "warning",
      "proc": "main",
      "message": "local `junk` of `main` is never read"
    },
    {
      "kind": "unreachable-code",
      "severity": "warning",
      "proc": "main",
      "pc": 8,
      "line": 21,
      "message": "statement at `NEVER:` (line 21) in `main` is unreachable"
    },
    {
      "kind": "infeasible-branch",
      "severity": "warning",
      "proc": "main",
      "pc": 6,
      "line": 20,
      "message": "branch at line 20 in `main` is statically infeasible (guard is always false)"
    },
    {
      "kind": "assert-never-fails",
      "severity": "info",
      "proc": "init",
      "pc": 12,
      "line": 27,
      "message": "assert at line 27 in `init` can never fail"
    }
  ],
  "warnings": 5,
  "infos": 1
}
"#;
    assert_eq!(json, expected);
}

#[test]
fn clean_program_renders_no_findings() {
    let src = "decl g;\nmain() begin\n  g := *;\n  if (g) then HIT: skip; fi;\nend\n";
    let program = parse_program(src).expect("parses");
    let cfg = Cfg::build(&program).expect("builds");
    let findings = lint(&cfg, &AnalysisOptions::sequential());
    assert!(findings.is_empty(), "expected a clean program, got {findings:?}");
    assert!(!has_warnings(&findings));
    assert_eq!(render_table("clean.bp", &findings), "clean.bp: no findings\n");
    let json = render_json("clean.bp", &findings);
    assert!(json.contains("\"warnings\": 0"), "{json}");
    assert!(json.contains("\"findings\": []"), "{json}");
}
