//! End-to-end observability tests: the traces the telemetry collector
//! records over real checks must be structurally sound (spans nest
//! properly, the Chrome export parses), must actually cover the solve —
//! the span tree accounts for ≥95% of `evaluate`'s wall time — and must
//! never perturb the run being observed: the solver does bit-identical
//! work with the collector on and off.
//!
//! The collector is thread-local and every `#[test]` runs on its own
//! thread, so tests install and drain collectors without interfering.

use getafix::prelude::*;
use getafix::telemetry;
use getafix::telemetry::json::Value;

/// The README quickstart program (a recursive double-lock bug).
const QUICKSTART: &str = include_str!("../../../examples/double_lock_bug.bp");

/// The README concurrent handshake (two threads, a shared flag).
const HANDSHAKE: &str = include_str!("../../../examples/handshake.cbp");

/// One sequential check of the quickstart program under `strategy`,
/// returning its statistics.
fn run_quickstart(strategy: Strategy) -> getafix::mucalc::SolveStats {
    let program = parse_program(QUICKSTART).expect("quickstart parses");
    let cfg = Cfg::build(&program).expect("quickstart builds");
    let pc = cfg.label("DOUBLE_LOCK").expect("label exists");
    let r = check_reachability_with(
        &cfg,
        &[pc],
        Algorithm::EntryForwardOpt,
        SolveOptions::with_strategy(strategy),
    )
    .expect("check succeeds");
    assert!(r.reachable, "the quickstart bug is reachable");
    r.stats
}

/// One concurrent check of the handshake under `strategy`.
fn run_handshake(strategy: Strategy) {
    let conc = parse_concurrent(HANDSHAKE).expect("handshake parses");
    let r =
        check_conc_reachability_with(&conc, "t0__HIT", 2, SolveOptions::with_strategy(strategy))
            .expect("conc check succeeds");
    assert!(r.reachable, "the handshake hit is reachable within 2 switches");
}

#[test]
fn sequential_trace_is_well_formed_under_both_strategies() {
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        telemetry::install();
        run_quickstart(strategy);
        let data = telemetry::take().expect("collector was installed");
        data.check_well_formed()
            .unwrap_or_else(|e| panic!("malformed trace under {strategy}: {e}"));
        assert!(
            data.spans.iter().any(|s| s.name == "parse" || s.name == "build_solver"),
            "{strategy}: encode/parse spans missing"
        );
        assert!(
            data.spans.iter().any(|s| s.name == "reeval" || s.name == "round"),
            "{strategy}: no per-evaluation spans recorded"
        );
        let json = data.chrome_trace_json();
        let v = telemetry::json::parse(&json)
            .unwrap_or_else(|e| panic!("{strategy}: chrome trace does not parse: {e}"));
        let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        assert!(!events.is_empty(), "{strategy}: empty trace");
    }
}

#[test]
fn concurrent_trace_is_well_formed_under_both_strategies() {
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        telemetry::install();
        run_handshake(strategy);
        let data = telemetry::take().expect("collector was installed");
        data.check_well_formed()
            .unwrap_or_else(|e| panic!("malformed conc trace under {strategy}: {e}"));
        for required in ["merge", "build_conc_solver", "evaluate"] {
            assert!(
                data.spans.iter().any(|s| s.name == required),
                "{strategy}: span `{required}` missing from the concurrent trace"
            );
        }
        assert!(
            telemetry::json::parse(&data.chrome_trace_json()).is_ok(),
            "{strategy}: conc chrome trace does not parse"
        );
    }
}

/// The acceptance measure: the span tree under the longest `evaluate`
/// span accounts for at least 95% of its wall time, so a Perfetto view
/// of the solve has no unexplained gaps.
#[test]
fn solve_span_tree_covers_the_solve() {
    telemetry::install();
    run_quickstart(Strategy::Worklist);
    let data = telemetry::take().expect("collector was installed");
    let coverage = data.coverage_of("evaluate").expect("an evaluate span exists");
    assert!(coverage >= 0.95, "solve span tree covers only {:.1}% of evaluate", coverage * 100.0);
}

/// The zero-overhead contract, behavioral half: observing a solve must
/// not change it. Re-evaluation counts, iteration counts and final node
/// counts are bit-identical with the collector on and off.
#[test]
fn collector_does_not_perturb_the_solve() {
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        let off = run_quickstart(strategy);
        telemetry::install();
        let on = run_quickstart(strategy);
        let data = telemetry::take().expect("collector was installed");
        assert!(!data.spans.is_empty(), "{strategy}: the observed run recorded nothing");

        assert_eq!(
            off.total_reevaluations(),
            on.total_reevaluations(),
            "{strategy}: collector changed the re-evaluation count"
        );
        assert_eq!(
            off.ordered_reevaluations, on.ordered_reevaluations,
            "{strategy}: collector changed the ordered re-evaluation count"
        );
        assert_eq!(off.relations.len(), on.relations.len());
        for (name, r_off) in &off.relations {
            let r_on = &on.relations[name];
            assert_eq!(r_off.iterations, r_on.iterations, "{strategy}: {name} iterations");
            assert_eq!(r_off.reevaluations, r_on.reevaluations, "{strategy}: {name} re-evals");
            assert_eq!(r_off.final_nodes, r_on.final_nodes, "{strategy}: {name} final nodes");
        }
        for (s_off, s_on) in off.sccs.iter().zip(&on.sccs) {
            assert_eq!(s_off.evaluations, s_on.evaluations, "{strategy}: scc evaluations");
            assert_eq!(s_off.ordered, s_on.ordered, "{strategy}: scc schedule choice");
        }
    }
}

/// The profile renderer runs on a real trace and mentions the things the
/// `--profile` flag promises: span groups, the latency histogram, events.
#[test]
fn profile_summary_renders_a_real_trace() {
    telemetry::install();
    run_quickstart(Strategy::Worklist);
    let data = telemetry::take().expect("collector was installed");
    let summary = data.profile_summary(12);
    assert!(summary.contains("solve/"), "no span groups:\n{summary}");
    assert!(summary.contains("re-eval latency"), "no histogram:\n{summary}");
}

/// The flamegraph acceptance measure: the folded stacks rooted at the
/// longest `evaluate` span weigh at least 95% of its wall time — self-time
/// weighting partitions every span's duration across the stack lines, so
/// nothing the solver did is missing from the flamegraph.
#[test]
fn folded_stacks_cover_the_solve() {
    telemetry::install();
    run_quickstart(Strategy::Worklist);
    let data = telemetry::take().expect("collector was installed");
    let folded = data.folded_stacks();
    let stacks = telemetry::parse_folded(&folded).expect("folded output validates");
    assert!(!stacks.is_empty(), "no stacks recorded");

    // Evaluate spans never nest inside each other, so their summed
    // durations are the total solve wall time the stacks must account for.
    let evaluate_us: u64 =
        data.spans.iter().filter(|s| s.name == "evaluate").map(|s| s.dur_us()).sum();
    assert!(evaluate_us > 0, "an evaluate span exists");
    let rooted = telemetry::rooted_weight(&folded, "evaluate");
    assert!(
        rooted as f64 >= 0.95 * evaluate_us as f64,
        "folded stacks cover only {rooted} of {evaluate_us} µs under `evaluate`"
    );
}

/// `--progress` must observe without perturbing: with a zero-interval
/// heartbeat attached (every instrumentation point beats), the solver
/// does bit-identical work and the sink actually received beats.
#[test]
fn progress_sink_does_not_perturb_the_solve() {
    use std::cell::Cell;
    use std::rc::Rc;

    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        let off = run_quickstart(strategy);

        telemetry::install();
        let beats = Rc::new(Cell::new(0usize));
        let sink = Rc::clone(&beats);
        assert!(telemetry::attach_progress(std::time::Duration::ZERO, move |_| {
            sink.set(sink.get() + 1);
        }));
        let on = run_quickstart(strategy);
        telemetry::take().expect("collector was installed");

        assert!(beats.get() > 0, "{strategy}: the heartbeat never fired");
        assert_eq!(
            off.total_reevaluations(),
            on.total_reevaluations(),
            "{strategy}: the progress sink changed the re-evaluation count"
        );
        assert_eq!(off.ordered_reevaluations, on.ordered_reevaluations, "{strategy}");
        for (name, r_off) in &off.relations {
            let r_on = &on.relations[name];
            assert_eq!(r_off.iterations, r_on.iterations, "{strategy}: {name} iterations");
            assert_eq!(r_off.reevaluations, r_on.reevaluations, "{strategy}: {name} re-evals");
            assert_eq!(r_off.final_nodes, r_on.final_nodes, "{strategy}: {name} final nodes");
        }
    }
}

/// The `--stats-json` metrics embedding: with a collector installed the
/// document grows a `metrics` object carrying the live registry; without
/// one, `to_json` stays metrics-free — old consumers see the old schema.
#[test]
fn stats_json_embeds_the_metrics_registry() {
    telemetry::install();
    let stats = run_quickstart(Strategy::Worklist);
    let snapshot = telemetry::metrics_snapshot().expect("collector installed");
    telemetry::take();

    let plain = telemetry::json::parse(&stats.to_json()).expect("parses");
    assert!(plain.get("metrics").is_none(), "metrics must be opt-in");

    let embedded = telemetry::json::parse(&stats.to_json_with_metrics(Some(&snapshot)))
        .expect("embedded document parses");
    let metrics = embedded.get("metrics").expect("metrics object present");
    let reevals = metrics
        .get("counters")
        .and_then(|c| c.get("solve.reevals"))
        .and_then(Value::as_f64)
        .expect("solve.reevals counter");
    assert_eq!(reevals as usize, stats.total_reevaluations());
}
