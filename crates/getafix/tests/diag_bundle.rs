//! End-to-end tests of the `--diag-out` bundle and `inspect` through the
//! actual binary: one invocation must produce a complete, schema-valid
//! diagnostics directory, and every document in it must agree with the
//! others (the DOT graph with the JSON topology, the folded stacks with
//! the trace's `evaluate` spans, the stats with the embedded metrics).

use getafix::mucalc::check_depgraph_dot;
use getafix::telemetry::json::{parse, Value};
use getafix::telemetry::{parse_folded, rooted_weight};
use std::path::{Path, PathBuf};
use std::process::Command;

fn example(name: &str) -> String {
    format!("{}/../../examples/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn bundle_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("getafix-diag-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("bundle file {name} missing: {e}"))
}

/// The acceptance scenario: a concurrent check of the handshake program
/// writes the whole bundle in one shot, and every file validates.
#[test]
fn check_conc_writes_a_complete_valid_bundle() {
    let dir = bundle_dir("conc");
    let out = Command::new(env!("CARGO_BIN_EXE_getafix"))
        .args([
            "check-conc",
            &example("handshake.cbp"),
            "--label",
            "t0__HIT",
            "--switches",
            "2",
            "--diag-out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "handshake hit is reachable: {out:?}");

    // The trace: parses, and its evaluate spans give the coverage target.
    let trace = parse(&read(&dir, "trace.json")).expect("trace.json parses");
    let events = trace.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
    assert!(!events.is_empty(), "empty trace");
    let evaluate_us: f64 = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("name").and_then(Value::as_str) == Some("evaluate")
        })
        .filter_map(|e| e.get("dur").and_then(Value::as_f64))
        .sum();
    assert!(evaluate_us > 0.0, "no evaluate span in the trace");

    // The flamegraph: well-formed, and its stacks account for ≥95% of the
    // evaluate wall time (exactly 100%, by self-time partitioning).
    let folded = read(&dir, "flamegraph.folded");
    parse_folded(&folded).expect("flamegraph.folded validates");
    let rooted = rooted_weight(&folded, "evaluate") as f64;
    assert!(
        rooted >= 0.95 * evaluate_us,
        "folded stacks cover only {rooted} of {evaluate_us} µs under `evaluate`"
    );

    // The topology: the DOT document passes the schema check against the
    // JSON document's component count.
    let depgraph = parse(&read(&dir, "depgraph.json")).expect("depgraph.json parses");
    assert_eq!(
        depgraph.get("schema").and_then(Value::as_str),
        Some("getafix-depgraph/1"),
        "topology schema"
    );
    let scc_count = depgraph.get("scc_count").and_then(Value::as_f64).expect("scc_count") as usize;
    assert!(scc_count > 0);
    check_depgraph_dot(&read(&dir, "depgraph.dot"), scc_count)
        .unwrap_or_else(|e| panic!("depgraph.dot fails the schema check: {e}"));

    // The statistics: parse, did real work, and carry the metrics registry
    // (the re-evals counter agrees with the stats' own total).
    let stats = parse(&read(&dir, "stats.json")).expect("stats.json parses");
    let total = stats.get("total_reevaluations").and_then(Value::as_f64).expect("total_reevals");
    assert!(total > 0.0, "the solve did no work");
    let reevals = stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("solve.reevals"))
        .and_then(Value::as_f64)
        .expect("embedded metrics registry with solve.reevals");
    assert_eq!(reevals, total, "metrics counter disagrees with the stats total");

    // The manifest: provenance for everything above.
    let manifest = parse(&read(&dir, "manifest.json")).expect("manifest.json parses");
    assert_eq!(manifest.get("schema").and_then(Value::as_str), Some("getafix-diag-manifest/1"));
    assert_eq!(manifest.get("version").and_then(Value::as_str), Some(env!("CARGO_PKG_VERSION")));
    let argv = manifest.get("argv").and_then(Value::as_array).expect("argv");
    assert!(argv.iter().any(|a| a.as_str() == Some("--diag-out")), "argv records the invocation");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The sequential path writes the same bundle.
#[test]
fn check_writes_the_bundle_too() {
    let dir = bundle_dir("seq");
    let out = Command::new(env!("CARGO_BIN_EXE_getafix"))
        .args([
            "check",
            &example("double_lock_bug.bp"),
            "--label",
            "DOUBLE_LOCK",
            "--diag-out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    for name in [
        "trace.json",
        "flamegraph.folded",
        "depgraph.dot",
        "depgraph.json",
        "stats.json",
        "manifest.json",
    ] {
        assert!(dir.join(name).is_file(), "bundle file {name} missing");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Baselines never run the solver, so `--diag-out` must refuse them
/// up front instead of writing a half-empty bundle.
#[test]
fn diag_out_rejects_baselines() {
    let dir = bundle_dir("baseline");
    let out = Command::new(env!("CARGO_BIN_EXE_getafix"))
        .args([
            "check",
            &example("double_lock_bug.bp"),
            "--label",
            "DOUBLE_LOCK",
            "--algo",
            "bebop",
            "--diag-out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(!dir.exists(), "no bundle directory for a refused run");
}

/// `inspect --json` emits the topology document for a program without
/// needing a target label, and it agrees with its own DOT rendering.
#[test]
fn inspect_reports_the_topology() {
    let out = Command::new(env!("CARGO_BIN_EXE_getafix"))
        .args(["inspect", &example("double_lock_bug.bp"), "--json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let v = parse(&String::from_utf8_lossy(&out.stdout)).expect("inspect --json parses");
    let scc_count = v.get("scc_count").and_then(Value::as_f64).expect("scc_count") as usize;

    let dot = Command::new(env!("CARGO_BIN_EXE_getafix"))
        .args(["inspect", &example("double_lock_bug.bp"), "--dot"])
        .output()
        .expect("binary runs");
    assert_eq!(dot.status.code(), Some(0));
    check_depgraph_dot(&String::from_utf8_lossy(&dot.stdout), scc_count)
        .expect("inspect --dot validates against --json");

    let human = Command::new(env!("CARGO_BIN_EXE_getafix"))
        .args(["inspect", &example("double_lock_bug.bp"), "--label", "DOUBLE_LOCK"])
        .output()
        .expect("binary runs");
    assert_eq!(human.status.code(), Some(0));
    let text = String::from_utf8_lossy(&human.stdout);
    assert!(text.contains("solve topology"), "{text}");
    assert!(text.contains("schedules:"), "{text}");
}
