//! The slicer's differential contract on the shipped corpus: `--slice`
//! must never change a verdict. Every program is checked sliced and
//! unsliced across all formula algorithms, both solver strategies and
//! jobs ∈ {1, 4}, against the explicit oracle; enumerated summary sets on
//! the sliced program must be bit-identical across strategies and job
//! counts (the fixpoint is unique — scheduling must not show through);
//! and sliced witnesses must replay in the sliced program's concrete
//! semantics.

use getafix::boolprog::analysis::{slice, AnalysisOptions};
use getafix::boolprog::{explicit_reachable, parse_concurrent, parse_program, replay, Cfg, Pc};
use getafix::conc::{conc_explicit_reachable, merge, slice_merged, ConcLimits};
use getafix::core::{build_solver_with, check_reachability_with, Algorithm};
use getafix::mucalc::{SolveOptions, Strategy};
use getafix::witness::sequential_witness;

/// Enumerates the main relation's summary set (sorted model list).
fn summary_set(cfg: &Cfg, target: Pc, strategy: Strategy, jobs: usize) -> (bool, Vec<Vec<bool>>) {
    let options = SolveOptions { jobs, ..SolveOptions::with_strategy(strategy) };
    let algo = Algorithm::EntryForwardOpt;
    let mut solver = build_solver_with(cfg, &[target], algo, options)
        .unwrap_or_else(|e| panic!("{strategy} jobs={jobs}: {e}"));
    let verdict =
        solver.eval_query("reach").unwrap_or_else(|e| panic!("{strategy} jobs={jobs}: {e}"));
    let rel = algo.main_relation();
    let interp = solver.evaluate(rel).unwrap_or_else(|e| panic!("{strategy} jobs={jobs}: {e}"));
    let nparams = solver.system().relation(rel).expect("main relation").params.len();
    let mut vars = Vec::new();
    for i in 0..nparams {
        vars.extend(solver.alloc().formal(rel, i).all_vars());
    }
    (verdict, solver.manager().all_models(interp, &vars))
}

/// The full sequential contract for one program/label pair.
fn slice_agrees(src: &str, label: &str) {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    let cfg = Cfg::build(&program).unwrap_or_else(|e| panic!("build: {e}\n{src}"));
    let target = cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
    let oracle = explicit_reachable(&cfg, &[target], 50_000_000).expect("oracle").reachable;

    let sliced = slice(&cfg, &AnalysisOptions::sequential().with_targets(&[target]));
    let Some(new_target) = sliced.map_pc(target) else {
        assert!(!oracle, "slicer pruned a reachable target\n{src}");
        return;
    };

    for algo in Algorithm::ALL {
        for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
            for jobs in [1usize, 4] {
                let options = SolveOptions { jobs, ..SolveOptions::with_strategy(strategy) };
                let full = check_reachability_with(&cfg, &[target], algo, options.clone())
                    .unwrap_or_else(|e| panic!("{algo} {strategy} jobs={jobs}: {e}\n{src}"));
                let cut = check_reachability_with(&sliced.cfg, &[new_target], algo, options)
                    .unwrap_or_else(|e| panic!("{algo} {strategy} jobs={jobs}: {e}\n{src}"));
                assert_eq!(
                    full.reachable, oracle,
                    "{algo} {strategy} jobs={jobs}: unsliced verdict vs oracle\n{src}"
                );
                assert_eq!(
                    cut.reachable, full.reachable,
                    "{algo} {strategy} jobs={jobs}: --slice changed the verdict\n{src}"
                );
            }
        }
    }

    // Summary-set determinism on the sliced program: strategy and job
    // count are scheduling choices; the fixpoint they reach is unique.
    let (v0, set0) = summary_set(&sliced.cfg, new_target, Strategy::Worklist, 1);
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        for jobs in [1usize, 4] {
            let (v, set) = summary_set(&sliced.cfg, new_target, strategy, jobs);
            assert_eq!(v, v0, "{strategy} jobs={jobs}: sliced verdict diverged\n{src}");
            assert_eq!(set, set0, "{strategy} jobs={jobs}: sliced summary set diverged\n{src}");
        }
    }

    // A reachable sliced verdict must come with a replay-valid witness.
    let witness = sequential_witness(&sliced.cfg, &[new_target], SolveOptions::default())
        .unwrap_or_else(|e| panic!("witness: {e}\n{src}"));
    match witness {
        Some(trace) => {
            assert!(oracle, "sliced witness for unreachable target\n{src}");
            let check = replay(&sliced.cfg, &trace.to_replay(), &[new_target]);
            assert!(check.is_ok(), "sliced replay rejected: {check:?}\n{src}");
        }
        None => assert!(!oracle, "reachable but no sliced witness\n{src}"),
    }
}

/// The concurrent contract: bounded-round verdicts survive `--slice`.
fn conc_slice_agrees(src: &str, label: &str, switches: usize) {
    let conc = parse_concurrent(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    let merged = merge(&conc).unwrap_or_else(|e| panic!("merge: {e}\n{src}"));
    let target = merged.cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
    let oracle = conc_explicit_reachable(&merged, &[target], switches, ConcLimits::default())
        .expect("oracle");

    let (sliced_merged, s) = slice_merged(&merged, &[target]);
    let Some(new_target) = s.map_pc(target) else {
        assert!(!oracle, "slicer pruned a reachable concurrent target\n{src}");
        return;
    };
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        for jobs in [1usize, 4] {
            let options = SolveOptions { jobs, ..SolveOptions::with_strategy(strategy) };
            let full =
                getafix::conc::check_merged_with(&merged, &[target], switches, options.clone())
                    .unwrap_or_else(|e| panic!("{strategy} jobs={jobs}: {e}\n{src}"));
            let cut =
                getafix::conc::check_merged_with(&sliced_merged, &[new_target], switches, options)
                    .unwrap_or_else(|e| panic!("{strategy} jobs={jobs}: {e}\n{src}"));
            assert_eq!(full.reachable, oracle, "{strategy} jobs={jobs}: verdict vs oracle\n{src}");
            assert_eq!(
                cut.reachable, full.reachable,
                "{strategy} jobs={jobs}: --slice changed the concurrent verdict\n{src}"
            );
        }
    }
}

#[test]
fn shipped_sequential_examples() {
    let double_lock = include_str!("../../../examples/double_lock.bp");
    slice_agrees(double_lock, "DOUBLE_LOCK");
    let double_lock_bug = include_str!("../../../examples/double_lock_bug.bp");
    slice_agrees(double_lock_bug, "DOUBLE_LOCK");
    let dead_code = include_str!("../../../examples/dead_code.bp");
    slice_agrees(dead_code, "HIT");
    slice_agrees(dead_code, "NEVER");
}

#[test]
fn shipped_concurrent_example() {
    conc_slice_agrees(include_str!("../../../examples/handshake.cbp"), "t0__HIT", 2);
}

#[test]
fn recursion_and_dead_baggage() {
    // Mutual recursion plus every kind of prunable baggage at once: the
    // slicer must delete the baggage without disturbing the recursive
    // reachability underneath.
    slice_agrees(
        r#"
        decl g, junk;
        main() begin
          decl a, b, scratch;
          scratch := *;
          junk := scratch;
          a := *;
          call even(a);
          if (!T) then call heavy(); fi;
          if (g) then HIT: skip; fi;
        end
        even(x) begin
          if (x) then call odd(!x); else g := !g; fi;
        end
        odd(x) begin
          if (*) then call even(x); fi;
        end
        heavy() begin
          decl t;
          t := *;
          call heavy();
        end
        unused() begin
          call heavy();
        end
        "#,
        "HIT",
    );
}

#[test]
fn constant_guard_verdict_flip_candidates() {
    // Targets sitting right at the feasibility boundary: reachable only
    // through edges the constant propagation must NOT prune.
    slice_agrees(
        r#"
        decl g;
        main() begin
          decl x;
          g := F;
          call set();
          if (g) then HIT: skip; fi;
        end
        set() begin
          if (*) then g := T; fi;
        end
        "#,
        "HIT",
    );
    slice_agrees(
        r#"
        decl g;
        main() begin
          g := T;
          g := !g;
          if (g) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn concurrent_cross_thread_flow_survives() {
    // Sequentially the guard is dead (flag starts false, thread 0 never
    // sets it) — reachable only through the interleaving. Concurrent-mode
    // analysis must keep it.
    conc_slice_agrees(
        r#"
        shared flag;
        thread
          decl p;
          main() begin
            p := flag;
            if (p) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            flag := T;
            call toggle();
          end
          toggle() begin
            flag := !flag;
          end
        endthread
        "#,
        "t0__HIT",
        2,
    );
}
