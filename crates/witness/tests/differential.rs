//! The witness acceptance suite: every `Reachable` verdict of the core and
//! conc differential programs must yield a witness that *replays* —
//! sequential traces re-execute to the target in the concrete interpreter,
//! concurrent schedules re-execute in the explicit engine under the
//! extracted thread/valuation script — and every `unreachable` verdict
//! must yield `None`. Both solver strategies are exercised.
//!
//! The programs mirror `crates/core/tests/differential.rs` and
//! `crates/conc/tests/differential.rs` (including the seeded random
//! corpus), so "the differential suites" and "the witness suite" cover the
//! same ground from two sides: verdict equality there, constructive
//! evidence here.

use getafix_boolprog::{explicit_reachable, parse_concurrent, parse_program, replay, Cfg};
use getafix_conc::{conc_replay_guided, conc_replay_schedule, merge, ConcLimits};
use getafix_mucalc::{SolveOptions, Strategy};
use getafix_witness::{concurrent_trace_from_schedule, concurrent_witness, sequential_witness};

/// Extract under one strategy and cross-check against the explicit oracle.
fn check_seq(src: &str, label: &str) {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    let cfg = Cfg::build(&program).unwrap_or_else(|e| panic!("build: {e}\n{src}"));
    let target = cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
    let oracle = explicit_reachable(&cfg, &[target], 5_000_000).expect("oracle").reachable;
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        let options = SolveOptions::with_strategy(strategy);
        let witness = sequential_witness(&cfg, &[target], options)
            .unwrap_or_else(|e| panic!("{strategy}: {e}\n{src}"));
        match (oracle, witness) {
            (true, Some(trace)) => {
                assert_eq!(trace.target, target, "{strategy}\n{src}");
                // sequential_witness validates internally; re-run the
                // replay oracle here so the *test* holds the evidence too.
                replay(&cfg, &trace.to_replay(), &[target])
                    .unwrap_or_else(|e| panic!("{strategy}: replay rejected: {e}\n{src}"));
                // Render must not panic and should mention the target pc.
                let shown = trace.render(&cfg);
                assert!(shown.contains("target reached"), "{shown}");
            }
            (false, None) => {}
            (true, None) => panic!("{strategy}: reachable but no witness\n{src}"),
            (false, Some(t)) => panic!("{strategy}: witness for unreachable: {t:?}\n{src}"),
        }
    }
}

/// Concurrent: schedule extraction + forced-schedule replay, both
/// strategies, for every bound `1..=max_k`. `replayable` is false for
/// programs whose unbounded recursion the explicit replayer cannot
/// materialize.
fn check_conc(src: &str, label: &str, max_k: usize, replayable: bool) {
    let conc = parse_concurrent(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    let merged = merge(&conc).unwrap();
    let pc = merged.cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
    for k in 1..=max_k {
        for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
            let options = SolveOptions::with_strategy(strategy);
            let witness = concurrent_witness(&merged, &[pc], k, options)
                .unwrap_or_else(|e| panic!("k={k} {strategy}: {e}\n{src}"));
            let Some(schedule) = witness else {
                // No witness must mean unreachable (when the oracle can say).
                if replayable {
                    let oracle =
                        conc_replay_all(&merged, pc, k).unwrap_or_else(|e| panic!("oracle: {e}"));
                    assert!(!oracle, "k={k} {strategy}: reachable but no schedule\n{src}");
                }
                continue;
            };
            assert!(
                schedule.is_well_formed(merged.n_threads),
                "k={k} {strategy}: malformed {schedule:?}"
            );
            assert!(
                schedule.switches() <= k,
                "k={k} {strategy}: {} switches exceed the bound",
                schedule.switches()
            );
            assert_eq!(schedule.target, pc);
            if replayable {
                let ok = conc_replay_schedule(
                    &merged,
                    &[pc],
                    &schedule.to_replay(),
                    ConcLimits::default(),
                )
                .unwrap_or_else(|e| panic!("k={k} {strategy}: replay: {e}\n{src}"));
                assert!(ok, "k={k} {strategy}: schedule does not replay: {schedule:?}\n{src}");

                // Statement-granular refinement: the schedule must refine
                // into an explicit interleaved step sequence that the
                // *guided* replayer accepts — and its round skeleton must
                // be exactly the schedule the round-level replayer just
                // validated.
                let trace = concurrent_trace_from_schedule(
                    &merged,
                    &[pc],
                    &schedule,
                    ConcLimits::default(),
                )
                .unwrap_or_else(|e| panic!("k={k} {strategy}: refine: {e}\n{src}"));
                assert_eq!(trace.round_skeleton(), schedule.to_replay(), "{src}");
                // concurrent_trace_from_schedule validates internally;
                // re-run the guided replayer so the *test* holds the
                // evidence too.
                conc_replay_guided(
                    &merged,
                    &[pc],
                    &trace.round_skeleton(),
                    &trace.to_guided(),
                    ConcLimits::default(),
                )
                .unwrap_or_else(|e| panic!("k={k} {strategy}: guided replay rejected: {e}\n{src}"));
                // Every step names its round's scheduled thread, and the
                // steps are round-ordered.
                for w in trace.steps.windows(2) {
                    assert!(w[0].round <= w[1].round, "steps out of round order\n{src}");
                }
                for s in &trace.steps {
                    assert_eq!(s.thread, trace.schedule.rounds[s.round].thread, "{src}");
                }
                // Render must not panic and should mention the target.
                let shown = trace.render(&merged.cfg);
                assert!(shown.contains("target reached"), "{shown}");
            }
        }
    }
}

/// Free exploration (the plain oracle), for the "no witness" direction.
fn conc_replay_all(
    merged: &getafix_conc::Merged,
    pc: getafix_boolprog::Pc,
    k: usize,
) -> Result<bool, getafix_conc::ConcExplicitError> {
    getafix_conc::conc_explicit_reachable(merged, &[pc], k, ConcLimits::default())
}

// --- the sequential corpus (mirrors crates/core/tests/differential.rs) ----

const SEQ_CASES: &[(&str, &str)] = &[
    (
        r#"decl g;
        main() begin
          g := T;
          if (g) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          g := F;
          if (g) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"main() begin
          decl x;
          x := *;
          if (x) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          decl x;
          x := id(T);
          if (x) then HIT: skip; fi;
        end
        id(a) returns 1 begin
          return a;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          decl x;
          x := id(F);
          if (x) then HIT: skip; fi;
        end
        id(a) returns 1 begin
          return a;
        end"#,
        "HIT",
    ),
    (
        r#"main() begin
          decl x, y;
          x, y := swap(T, F);
          if (!x & y) then HIT: skip; fi;
        end
        swap(a, b) returns 2 begin
          return b, a;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          call set();
          if (g) then HIT: skip; fi;
        end
        set() begin
          g := T;
        end"#,
        "HIT",
    ),
    (
        r#"main() begin
          decl x;
          x := F;
          call clobber();
          if (x) then HIT: skip; fi;
        end
        clobber() begin
          decl x;
          x := T;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          call rec();
          if (g) then HIT: skip; fi;
        end
        rec() begin
          if (*) then
            g := !g;
            call rec();
          fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          call f(F);
          if (g) then HIT: skip; fi;
        end
        f(depth) begin
          if (!depth) then
            call f(T);
          else
            g := T;
          fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl g, h;
        main() begin
          g := F;
          h := F;
          call walk();
          if (g & h) then HIT: skip; fi;
        end
        walk() begin
          if (*) then
            g := T;
            h := !g;
            call walk();
          fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          decl x;
          x := T;
          while (x) do
            x := *;
            g := g | !x;
          od;
          if (g) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"main() begin
          decl x;
          x := *;
          assume (!x);
          if (x) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"main() begin
          decl x;
          x := schoose [F, T];
          if (x) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"main() begin
          decl x;
          x := schoose [F, F];
          if (x) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"main() begin
          decl x;
          x := F;
          dead x;
          if (x) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          g := F;
          goto SKIP;
          g := T;
          SKIP: skip;
          if (g) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl a, b;
        main() begin
          a := T;
          b := F;
          a, b := b, a;
          if (!a & b) then HIT: skip; fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          call even();
          if (g) then HIT: skip; fi;
        end
        even() begin
          if (*) then call odd(); fi;
        end
        odd() begin
          g := T;
          if (*) then call even(); fi;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          decl x;
          g := T;
          x := readg();
          g := F;
          if (x & !g) then HIT: skip; fi;
        end
        readg() returns 1 begin
          return g;
        end"#,
        "HIT",
    ),
    (
        r#"decl g;
        main() begin
          decl x;
          x := flip();
          if (x = g) then HIT: skip; fi;
        end
        flip() returns 1 begin
          g := !g;
          return !g;
        end"#,
        "HIT",
    ),
];

#[test]
fn sequential_corpus_yields_replayable_witnesses() {
    for (src, label) in SEQ_CASES {
        check_seq(src, label);
    }
}

#[test]
fn assert_sinks_get_witnesses_too() {
    // `assert` failures route to the per-procedure error sink; the witness
    // machinery must handle multiple targets.
    let src = r#"
        decl g;
        main() begin
          g := *;
          assert (g);
        end
    "#;
    let program = parse_program(src).unwrap();
    let cfg = Cfg::build(&program).unwrap();
    let sinks = cfg.assert_sinks();
    assert!(!sinks.is_empty());
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        let trace = sequential_witness(&cfg, &sinks, SolveOptions::with_strategy(strategy))
            .unwrap()
            .expect("the assert can fail");
        replay(&cfg, &trace.to_replay(), &sinks).unwrap();
    }
}

// --- the seeded random corpus (same generator as the core suite) ----------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn rand_expr(rng: &mut Rng, vars: &[&str], depth: usize) -> String {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(4) {
            0 => "T".to_string(),
            1 => "F".to_string(),
            2 => "*".to_string(),
            _ => vars[rng.below(vars.len() as u64) as usize].to_string(),
        };
    }
    match rng.below(4) {
        0 => format!("!({})", rand_expr(rng, vars, depth - 1)),
        1 => format!("({} & {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
        2 => format!("({} | {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
        _ => format!("({} = {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
    }
}

fn rand_stmts(rng: &mut Rng, vars: &[&str], budget: &mut usize, depth: usize) -> String {
    let mut out = String::new();
    let n = 1 + rng.below(3);
    for _ in 0..n {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let choice = if depth == 0 { rng.below(3) } else { rng.below(6) };
        match choice {
            0 | 1 => {
                let target = vars[rng.below(vars.len() as u64) as usize];
                out.push_str(&format!("{target} := {};\n", rand_expr(rng, vars, 2)));
            }
            2 => {
                let v = vars[rng.below(vars.len() as u64) as usize];
                out.push_str(&format!("{v} := helper({});\n", rand_expr(rng, vars, 1)));
            }
            3 => {
                out.push_str(&format!(
                    "if ({}) then\n{}else\n{}fi;\n",
                    rand_expr(rng, vars, 2),
                    rand_stmts(rng, vars, budget, depth - 1),
                    rand_stmts(rng, vars, budget, depth - 1)
                ));
            }
            4 => {
                out.push_str(&format!(
                    "while ({} & *) do\n{}od;\n",
                    rand_expr(rng, vars, 1),
                    rand_stmts(rng, vars, budget, depth - 1)
                ));
            }
            _ => {
                out.push_str("call toggle();\n");
            }
        }
    }
    if out.is_empty() {
        out.push_str("skip;\n");
    }
    out
}

#[test]
fn randomized_programs_yield_replayable_witnesses() {
    for seed in 1..=25u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let vars = ["g0", "g1", "x", "y"];
        let mut budget = 12usize;
        let body = rand_stmts(&mut rng, &vars, &mut budget, 2);
        let guard = rand_expr(&mut rng, &["g0", "g1"], 2);
        let src = format!(
            r#"
            decl g0, g1;
            main() begin
              decl x, y;
              {body}
              if ({guard}) then HIT: skip; fi;
            end
            helper(a) returns 1 begin
              if (*) then g0 := a; fi;
              return !a;
            end
            toggle() begin
              g1 := !g1;
              if (*) then call toggle(); fi;
            end
            "#
        );
        check_seq(&src, "HIT");
    }
}

// --- the concurrent corpus (mirrors crates/conc/tests/differential.rs) ----

const HANDSHAKE: &str = r#"
    shared flag;
    thread
      main() begin
        if (flag) then HIT: skip; fi;
      end
    endthread
    thread
      main() begin
        flag := T;
      end
    endthread
"#;

#[test]
fn conc_handshake() {
    check_conc(HANDSHAKE, "t0__HIT", 3, true);
}

#[test]
fn conc_ping_pong_threshold() {
    let src = r#"
        shared a, b, c;
        thread
          main() begin
            if (a) then
              b := T;
            fi;
            if (c) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            a := T;
            if (b) then
              c := T;
            fi;
          end
        endthread
    "#;
    check_conc(src, "t0__HIT", 4, true);
}

#[test]
fn conc_locals_preserved_across_switches() {
    let src = r#"
        shared s;
        thread
          main() begin
            decl x;
            x := T;
            if (s & x) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            s := T;
          end
        endthread
    "#;
    check_conc(src, "t0__HIT", 3, true);
}

#[test]
fn conc_procedure_calls_across_contexts() {
    let src = r#"
        shared s;
        thread
          main() begin
            decl r;
            r := get();
            if (r) then HIT: skip; fi;
          end
          get() returns 1 begin
            return s;
          end
        endthread
        thread
          main() begin
            call set();
          end
          set() begin
            s := T;
          end
        endthread
    "#;
    check_conc(src, "t0__HIT", 3, true);
}

#[test]
fn conc_switch_inside_a_procedure() {
    let src = r#"
        shared s, t;
        thread
          main() begin
            call work();
          end
          work() begin
            decl saw;
            saw := s;
            if (saw & t) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            s := T;
            t := T;
          end
        endthread
    "#;
    check_conc(src, "t0__HIT", 4, true);
}

#[test]
fn conc_three_threads() {
    let src = r#"
        shared a, b;
        thread
          main() begin
            if (a & b) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            a := T;
          end
        endthread
        thread
          main() begin
            if (a) then b := T; fi;
          end
        endthread
    "#;
    check_conc(src, "t0__HIT", 3, true);
}

#[test]
fn conc_unreachable_regardless_of_switches() {
    let src = r#"
        shared a, b;
        thread
          main() begin
            if (a & !a) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            b := !b;
          end
        endthread
    "#;
    check_conc(src, "t0__HIT", 3, true);
}

#[test]
fn conc_mutual_flags_need_two_visits() {
    let src = r#"
        shared x, y;
        thread
          main() begin
            x := T;
            if (y) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            if (x) then y := T; fi;
          end
        endthread
    "#;
    check_conc(src, "t0__HIT", 3, true);
}

/// The Figure 3 Bluetooth-driver corpus: every reachable bug threshold
/// must yield a statement-granular trace the guided replayer accepts, and
/// the guided round skeleton must agree with the round-level replayer —
/// under both strategies. Multi-target extraction (one `ERR` per adder) is
/// exercised too.
#[test]
fn conc_bluetooth_statement_traces() {
    use getafix_workloads::{adder_err_label, bluetooth, FIG3_WITNESS_CASES};
    // (adders, stoppers, k, reachable) — the Figure 3 bug thresholds,
    // shared with the bench reporter's fig3 group.
    for (adders, stoppers, k, expect) in FIG3_WITNESS_CASES {
        let conc = bluetooth(adders, stoppers);
        let merged = merge(&conc).unwrap();
        let targets: Vec<_> =
            (0..adders).map(|i| merged.cfg.label(&adder_err_label(i)).unwrap()).collect();
        for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
            let options = SolveOptions::with_strategy(strategy);
            let witness = concurrent_witness(&merged, &targets, k, options)
                .unwrap_or_else(|e| panic!("{adders}a{stoppers}s k={k} {strategy}: {e}"));
            let Some(schedule) = witness else {
                assert!(!expect, "{adders}a{stoppers}s k={k} {strategy}: no schedule");
                continue;
            };
            assert!(expect, "{adders}a{stoppers}s k={k} {strategy}: unexpected witness");
            let ok = conc_replay_schedule(
                &merged,
                &targets,
                &schedule.to_replay(),
                ConcLimits::default(),
            )
            .unwrap();
            assert!(ok, "{adders}a{stoppers}s k={k} {strategy}: schedule does not replay");
            let trace =
                concurrent_trace_from_schedule(&merged, &targets, &schedule, ConcLimits::default())
                    .unwrap_or_else(|e| panic!("{adders}a{stoppers}s k={k} {strategy}: {e}"));
            assert_eq!(trace.round_skeleton(), schedule.to_replay());
            conc_replay_guided(
                &merged,
                &targets,
                &trace.round_skeleton(),
                &trace.to_guided(),
                ConcLimits::default(),
            )
            .unwrap_or_else(|e| panic!("{adders}a{stoppers}s k={k} {strategy}: guided: {e}"));
        }
    }
}

// --- the seeded random concurrent corpus ----------------------------------

fn rand_conc_stmts(rng: &mut Rng, vars: &[&str], budget: &mut usize, depth: usize) -> String {
    let mut out = String::new();
    let n = 1 + rng.below(2);
    for _ in 0..n {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let choice = if depth == 0 { rng.below(3) } else { rng.below(5) };
        match choice {
            0 | 1 => {
                let target = vars[rng.below(vars.len() as u64) as usize];
                out.push_str(&format!("{target} := {};\n", rand_expr(rng, vars, 2)));
            }
            2 => {
                out.push_str("call poke();\n");
            }
            3 => {
                out.push_str(&format!(
                    "if ({}) then\n{}else\n{}fi;\n",
                    rand_expr(rng, vars, 2),
                    rand_conc_stmts(rng, vars, budget, depth - 1),
                    rand_conc_stmts(rng, vars, budget, depth - 1)
                ));
            }
            _ => {
                out.push_str(&format!(
                    "while ({} & *) do\n{}od;\n",
                    rand_expr(rng, vars, 1),
                    rand_conc_stmts(rng, vars, budget, depth - 1)
                ));
            }
        }
    }
    if out.is_empty() {
        out.push_str("skip;\n");
    }
    out
}

/// Random finite-stack two-thread programs: every reachable verdict must
/// refine into a guided-replayable statement trace whose round skeleton
/// the round-level replayer also accepts (via `check_conc`), at every
/// bound and under both strategies.
#[test]
fn randomized_concurrent_programs_yield_guided_traces() {
    for seed in 1..=12u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let vars = ["a", "b", "x"];
        let mut budget = 5usize;
        let body0 = rand_conc_stmts(&mut rng, &vars, &mut budget, 2);
        let guard = rand_expr(&mut rng, &["a", "b"], 2);
        let mut budget = 5usize;
        let body1 = rand_conc_stmts(&mut rng, &vars, &mut budget, 2);
        let src = format!(
            r#"
            shared a, b;
            thread
              main() begin
                decl x;
                {body0}
                if ({guard}) then HIT: skip; fi;
              end
              poke() begin
                a := !a;
              end
            endthread
            thread
              main() begin
                decl x;
                {body1}
              end
              poke() begin
                b := !b;
              end
            endthread
            "#
        );
        check_conc(&src, "t0__HIT", 2, true);
    }
}

#[test]
fn conc_recursive_thread_schedule_is_well_formed() {
    // Unbounded recursion: the explicit replayer would blow its stack
    // limit, so only structural validation applies (`replayable = false`).
    let src = r#"
        shared s;
        thread
          main() begin
            call rec();
            if (s) then HIT: skip; fi;
          end
          rec() begin
            if (*) then call rec(); fi;
          end
        endthread
        thread
          main() begin
            s := T;
          end
        endthread
    "#;
    check_conc(src, "t0__HIT", 2, false);
}
