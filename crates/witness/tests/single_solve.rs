//! The single-solve witness suite, run over the `crates/workloads`
//! corpora (SLAM-shaped drivers, Terminator counters, the regression
//! suite, and the Bluetooth concurrent workload): extraction must peel the
//! **verdict solver's own provenance** — no `system_ef_witness` re-solve —
//! and agree, under both scheduling strategies and all three trace-capable
//! algorithms (`ef-opt`'s ordered non-monotone schedule and the non-split
//! `ef-naive` return clause included), with
//!
//! * the verdict the same solver just produced,
//! * the demoted two-solve oracle path ([`sequential_witness`]), and
//! * the concrete replayer, which re-executes every trace.

use getafix_boolprog::{replay, Cfg, Program};
use getafix_conc::{build_conc_solver_with, check_conc_solver, merge};
use getafix_core::{build_trace_solver_with, Algorithm};
use getafix_mucalc::{SolveOptions, Strategy};
use getafix_witness::{
    concurrent_witness_from, sequential_witness, sequential_witness_from, WitnessLimits,
};
use getafix_workloads as workloads;

/// One solve for verdict *and* witness, cross-checked against the oracle
/// extractor.
fn check_single_solve(name: &str, program: &Program, label: &str, expect: bool) {
    let cfg = Cfg::build(program).unwrap_or_else(|e| panic!("{name}: {e}"));
    let pc = cfg.label(label).unwrap_or_else(|| panic!("{name}: no label {label}"));
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        for algo in
            [Algorithm::EntryForwardOpt, Algorithm::EntryForward, Algorithm::EntryForwardNaive]
        {
            let options = SolveOptions::with_strategy(strategy);
            let mut solver = build_trace_solver_with(&cfg, &[pc], algo, options)
                .unwrap_or_else(|e| panic!("{name} {algo} {strategy}: {e}"))
                .expect("ef algorithms are trace-capable");
            let verdict = solver
                .eval_query("reach")
                .unwrap_or_else(|e| panic!("{name} {algo} {strategy}: {e}"));
            assert_eq!(verdict, expect, "{name} {algo} {strategy}: wrong verdict");
            let witness =
                sequential_witness_from(&mut solver, &cfg, &[pc], WitnessLimits::default())
                    .unwrap_or_else(|e| panic!("{name} {algo} {strategy}: {e}"));
            match witness {
                Some(trace) => {
                    assert!(verdict, "{name} {algo} {strategy}: witness for unreachable");
                    replay(&cfg, &trace.to_replay(), &[pc]).unwrap_or_else(|e| {
                        panic!("{name} {algo} {strategy}: replay rejected: {e}")
                    });
                }
                None => {
                    assert!(!verdict, "{name} {algo} {strategy}: reachable but no witness");
                }
            }
        }
        // The demoted oracle path must agree on witness existence.
        let oracle = sequential_witness(&cfg, &[pc], SolveOptions::with_strategy(strategy))
            .unwrap_or_else(|e| panic!("{name} oracle {strategy}: {e}"));
        assert_eq!(oracle.is_some(), expect, "{name} {strategy}: oracle disagrees");
    }
}

#[test]
fn regression_corpus_single_solve() {
    let (pos, neg) = workloads::regression_suite();
    // A cross-section: every 6th case of each polarity keeps the runtime
    // reasonable while covering all statement shapes.
    for case in pos.iter().step_by(6).chain(neg.iter().step_by(6)) {
        check_single_solve(&case.name, &case.program, &case.label, case.expect_reachable);
    }
}

#[test]
fn slam_driver_corpus_single_solve() {
    for (suite, cases) in workloads::slam_suites(1) {
        for case in cases.iter().take(2) {
            check_single_solve(
                &format!("{suite}/{}", case.name),
                &case.program,
                &case.label,
                case.expect_reachable,
            );
        }
    }
}

#[test]
fn terminator_corpus_single_solve() {
    for case in workloads::terminator_suite(2).iter().take(4) {
        check_single_solve(&case.name, &case.program, &case.label, case.expect_reachable);
    }
}

#[test]
fn bluetooth_conc_corpus_single_solve() {
    // Concurrent single-solve: the schedule is decoded from the verdict
    // solver's memoized `Reach` relation under both strategies.
    let conc = workloads::bluetooth(1, 1);
    let merged = merge(&conc).expect("merge");
    let pc = merged.cfg.label(&workloads::adder_err_label(0)).expect("ERR label");
    for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
        for k in 1..=3usize {
            let options = SolveOptions::with_strategy(strategy);
            let mut solver = build_conc_solver_with(&merged, &[pc], k, options)
                .unwrap_or_else(|e| panic!("k={k} {strategy}: {e}"));
            let result = check_conc_solver(&mut solver, k).unwrap_or_else(|e| panic!("k={k}: {e}"));
            let schedule = concurrent_witness_from(&mut solver, &merged, &[pc], k)
                .unwrap_or_else(|e| panic!("k={k} {strategy}: {e}"));
            assert_eq!(
                result.reachable,
                schedule.is_some(),
                "k={k} {strategy}: schedule existence disagrees with the verdict"
            );
            if let Some(s) = schedule {
                assert!(s.is_well_formed(merged.n_threads), "k={k} {strategy}: {s:?}");
                assert!(s.switches() <= k);
                assert_eq!(s.target, pc);
            }
        }
    }
}
