//! Property-based witness testing: on randomly generated programs, a
//! reachable target always yields a trace that replays to the target in
//! the concrete interpreter, and an unreachable target always yields
//! `None` — under both solver strategies.

use getafix_boolprog::{explicit_reachable, replay, Cfg, Expr, Proc, Program, Stmt, StmtKind};
use getafix_mucalc::{SolveOptions, Strategy as SolverStrategy};
use getafix_witness::sequential_witness;
use proptest::prelude::*;

const VARS: [&str; 4] = ["g0", "g1", "x", "y"];

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        Just(Expr::Nondet),
        (0..VARS.len()).prop_map(|i| Expr::var(VARS[i])),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Eq(Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let base = prop_oneof![
        Just(StmtKind::Skip),
        (0..VARS.len(), expr_strategy())
            .prop_map(|(i, e)| StmtKind::Assign { targets: vec![VARS[i].into()], exprs: vec![e] }),
        expr_strategy().prop_map(StmtKind::Assume),
        expr_strategy().prop_map(|e| StmtKind::CallAssign {
            targets: vec!["x".into()],
            callee: "f".into(),
            args: vec![e],
        }),
    ];
    let kinds = base.prop_recursive(2, 8, 2, |inner| {
        let stmt = inner.prop_map(Stmt::new);
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(stmt.clone(), 1..3),
                prop::collection::vec(stmt.clone(), 0..2)
            )
                .prop_map(|(c, t, e)| StmtKind::If {
                    cond: c,
                    then_branch: t,
                    else_branch: e
                }),
            (expr_strategy(), prop::collection::vec(stmt, 1..2))
                .prop_map(|(c, b)| StmtKind::While { cond: Expr::and(c, Expr::Nondet), body: b }),
        ]
    });
    kinds.prop_map(Stmt::new)
}

/// A random program whose `main` ends with `if (guard) then HIT: skip; fi`.
fn program_strategy() -> impl Strategy<Value = Program> {
    (prop::collection::vec(stmt_strategy(), 1..5), expr_strategy()).prop_map(|(mut body, guard)| {
        body.push(Stmt::new(StmtKind::If {
            cond: guard,
            then_branch: vec![Stmt::labeled("HIT", StmtKind::Skip)],
            else_branch: vec![],
        }));
        Program {
            globals: vec!["g0".into(), "g1".into()],
            procs: vec![
                Proc {
                    name: "main".into(),
                    params: vec![],
                    returns: 0,
                    locals: vec!["x".into(), "y".into()],
                    body,
                },
                Proc {
                    name: "f".into(),
                    params: vec!["x".into()],
                    returns: 1,
                    locals: vec!["y".into()],
                    body: vec![
                        Stmt::new(StmtKind::If {
                            cond: Expr::Nondet,
                            then_branch: vec![Stmt::new(StmtKind::Assign {
                                targets: vec!["g0".into()],
                                exprs: vec![Expr::var("x")],
                            })],
                            else_branch: vec![Stmt::new(StmtKind::CallAssign {
                                targets: vec!["y".into()],
                                callee: "f".into(),
                                args: vec![Expr::not(Expr::var("x"))],
                            })],
                        }),
                        Stmt::new(StmtKind::Return(vec![Expr::var("y")])),
                    ],
                },
            ],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reachable ⇒ the extracted trace replays to the target;
    /// unreachable ⇒ `witness()` returns `None`. Both strategies.
    #[test]
    fn witnesses_match_the_oracle(p in program_strategy()) {
        let cfg = Cfg::build(&p).unwrap_or_else(|e| panic!("{e}\n{p}"));
        let target = cfg.label("HIT").expect("generated label");
        let oracle = explicit_reachable(&cfg, &[target], 5_000_000)
            .expect("oracle within budget")
            .reachable;
        for strategy in [SolverStrategy::Worklist, SolverStrategy::RoundRobin] {
            let witness = sequential_witness(&cfg, &[target], SolveOptions::with_strategy(strategy))
                .unwrap_or_else(|e| panic!("{strategy}: {e}\n{p}"));
            match witness {
                Some(trace) => {
                    prop_assert!(oracle, "witness for unreachable target\n{}", p);
                    let check = replay(&cfg, &trace.to_replay(), &[target]);
                    prop_assert!(check.is_ok(), "replay rejected: {:?}\n{}", check, p);
                }
                None => prop_assert!(!oracle, "reachable but no witness\n{}", p),
            }
        }
    }
}
