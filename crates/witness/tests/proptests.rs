//! Property-based witness testing: on randomly generated programs, a
//! reachable target always yields a trace that replays to the target in
//! the concrete interpreter, and an unreachable target always yields
//! `None` — under both solver strategies. The concurrent properties mirror
//! this for statement-granular traces: every reachable verdict refines
//! into a script the deterministic guided replayer accepts, mutated
//! scripts are rejected, and the guided round skeleton agrees with the
//! round-level schedule replayer.

use getafix_boolprog::{
    analysis::{slice, AnalysisOptions},
    explicit_reachable, replay, Cfg, ConcProgram, Expr, Proc, Program, Stmt, StmtKind,
};
use getafix_conc::{
    check_merged_with, conc_explicit_reachable, conc_replay_guided, conc_replay_schedule, merge,
    slice_merged, ConcExplicitError, ConcLimits,
};
use getafix_core::{check_reachability_with, Algorithm};
use getafix_mucalc::{SolveOptions, Strategy as SolverStrategy};
use getafix_witness::{concurrent_trace_from_schedule, concurrent_witness, sequential_witness};
use proptest::prelude::*;

const VARS: [&str; 4] = ["g0", "g1", "x", "y"];

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        Just(Expr::Nondet),
        (0..VARS.len()).prop_map(|i| Expr::var(VARS[i])),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Eq(Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let base = prop_oneof![
        Just(StmtKind::Skip),
        (0..VARS.len(), expr_strategy())
            .prop_map(|(i, e)| StmtKind::Assign { targets: vec![VARS[i].into()], exprs: vec![e] }),
        expr_strategy().prop_map(StmtKind::Assume),
        expr_strategy().prop_map(|e| StmtKind::CallAssign {
            targets: vec!["x".into()],
            callee: "f".into(),
            args: vec![e],
        }),
    ];
    let kinds = base.prop_recursive(2, 8, 2, |inner| {
        let stmt = inner.prop_map(Stmt::new);
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(stmt.clone(), 1..3),
                prop::collection::vec(stmt.clone(), 0..2)
            )
                .prop_map(|(c, t, e)| StmtKind::If {
                    cond: c,
                    then_branch: t,
                    else_branch: e
                }),
            (expr_strategy(), prop::collection::vec(stmt, 1..2))
                .prop_map(|(c, b)| StmtKind::While { cond: Expr::and(c, Expr::Nondet), body: b }),
        ]
    });
    kinds.prop_map(Stmt::new)
}

/// A random program whose `main` ends with `if (guard) then HIT: skip; fi`.
fn program_strategy() -> impl Strategy<Value = Program> {
    (prop::collection::vec(stmt_strategy(), 1..5), expr_strategy()).prop_map(|(mut body, guard)| {
        body.push(Stmt::new(StmtKind::If {
            cond: guard,
            then_branch: vec![Stmt::labeled("HIT", StmtKind::Skip)],
            else_branch: vec![],
        }));
        Program {
            globals: vec!["g0".into(), "g1".into()],
            procs: vec![
                Proc {
                    name: "main".into(),
                    params: vec![],
                    returns: 0,
                    locals: vec!["x".into(), "y".into()],
                    body,
                },
                Proc {
                    name: "f".into(),
                    params: vec!["x".into()],
                    returns: 1,
                    locals: vec!["y".into()],
                    body: vec![
                        Stmt::new(StmtKind::If {
                            cond: Expr::Nondet,
                            then_branch: vec![Stmt::new(StmtKind::Assign {
                                targets: vec!["g0".into()],
                                exprs: vec![Expr::var("x")],
                            })],
                            else_branch: vec![Stmt::new(StmtKind::CallAssign {
                                targets: vec!["y".into()],
                                callee: "f".into(),
                                args: vec![Expr::not(Expr::var("x"))],
                            })],
                        }),
                        Stmt::new(StmtKind::Return(vec![Expr::var("y")])),
                    ],
                },
            ],
        }
    })
}

/// Statements for concurrent threads: like [`stmt_strategy`] but with no
/// recursive calls (guided replay materializes stacks, so the generated
/// programs must have finite stacks) — `poke` is a per-thread straight-line
/// helper instead.
fn conc_stmt_strategy() -> impl Strategy<Value = Stmt> {
    let base = prop_oneof![
        Just(StmtKind::Skip),
        (0..VARS.len(), expr_strategy())
            .prop_map(|(i, e)| StmtKind::Assign { targets: vec![VARS[i].into()], exprs: vec![e] }),
        Just(StmtKind::Call { callee: "poke".into(), args: vec![] }),
    ];
    let kinds = base.prop_recursive(2, 8, 2, |inner| {
        let stmt = inner.prop_map(Stmt::new);
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(stmt.clone(), 1..3),
                prop::collection::vec(stmt.clone(), 0..2)
            )
                .prop_map(|(c, t, e)| StmtKind::If {
                    cond: c,
                    then_branch: t,
                    else_branch: e
                }),
            (expr_strategy(), prop::collection::vec(stmt, 1..2))
                .prop_map(|(c, b)| StmtKind::While { cond: Expr::and(c, Expr::Nondet), body: b }),
        ]
    });
    kinds.prop_map(Stmt::new)
}

/// A thread: a `main` over shared `g0`/`g1` and locals `x`/`y`, plus a
/// non-recursive `poke` helper toggling one shared variable.
fn thread_program(body: Vec<Stmt>, poke_target: &str) -> Program {
    Program {
        globals: vec![],
        procs: vec![
            Proc {
                name: "main".into(),
                params: vec![],
                returns: 0,
                locals: vec!["x".into(), "y".into()],
                body,
            },
            Proc {
                name: "poke".into(),
                params: vec![],
                returns: 0,
                locals: vec![],
                body: vec![Stmt::new(StmtKind::Assign {
                    targets: vec![poke_target.into()],
                    exprs: vec![Expr::not(Expr::var(poke_target))],
                })],
            },
        ],
    }
}

/// A random two-thread program whose first thread ends with
/// `if (guard) then HIT: skip; fi`.
fn conc_program_strategy() -> impl Strategy<Value = ConcProgram> {
    (
        prop::collection::vec(conc_stmt_strategy(), 1..4),
        prop::collection::vec(conc_stmt_strategy(), 1..4),
        expr_strategy(),
    )
        .prop_map(|(mut body0, body1, guard)| {
            body0.push(Stmt::new(StmtKind::If {
                cond: guard,
                then_branch: vec![Stmt::labeled("HIT", StmtKind::Skip)],
                else_branch: vec![],
            }));
            ConcProgram {
                shared: vec!["g0".into(), "g1".into()],
                threads: vec![thread_program(body0, "g0"), thread_program(body1, "g1")],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reachable ⇒ the extracted trace replays to the target;
    /// unreachable ⇒ `witness()` returns `None`. Both strategies.
    #[test]
    fn witnesses_match_the_oracle(p in program_strategy()) {
        let cfg = Cfg::build(&p).unwrap_or_else(|e| panic!("{e}\n{p}"));
        let target = cfg.label("HIT").expect("generated label");
        let oracle = explicit_reachable(&cfg, &[target], 5_000_000)
            .expect("oracle within budget")
            .reachable;
        for strategy in [SolverStrategy::Worklist, SolverStrategy::RoundRobin] {
            let witness = sequential_witness(&cfg, &[target], SolveOptions::with_strategy(strategy))
                .unwrap_or_else(|e| panic!("{strategy}: {e}\n{p}"));
            match witness {
                Some(trace) => {
                    prop_assert!(oracle, "witness for unreachable target\n{}", p);
                    let check = replay(&cfg, &trace.to_replay(), &[target]);
                    prop_assert!(check.is_ok(), "replay rejected: {:?}\n{}", check, p);
                }
                None => prop_assert!(!oracle, "reachable but no witness\n{}", p),
            }
        }
    }

    /// The guided-replayer contract on random concurrent programs:
    /// (a) every reachable verdict yields a statement-granular trace the
    ///     guided replayer accepts deterministically;
    /// (b) mutated scripts — wrong thread, wrong pc, perturbed globals,
    ///     reordered steps — are rejected;
    /// (c) the guided trace's round skeleton agrees with
    ///     `conc_replay_schedule`.
    /// Both solver strategies; unreachable verdicts must match the
    /// explicit oracle.
    #[test]
    fn guided_replay_matches_the_oracle(p in conc_program_strategy()) {
        let merged = merge(&p).unwrap();
        let target = merged.cfg.label("t0__HIT").expect("generated label");
        let limits = ConcLimits::default();
        let switches = 2usize;
        let oracle = conc_explicit_reachable(&merged, &[target], switches, limits.clone())
            .expect("oracle within budget");
        for strategy in [SolverStrategy::Worklist, SolverStrategy::RoundRobin] {
            let options = SolveOptions::with_strategy(strategy);
            let witness = concurrent_witness(&merged, &[target], switches, options)
                .unwrap_or_else(|e| panic!("{strategy}: {e}"));
            let Some(schedule) = witness else {
                prop_assert!(!oracle, "{strategy}: reachable but no schedule");
                continue;
            };
            prop_assert!(oracle, "{strategy}: schedule for unreachable target");

            // (a) refinement succeeds and the guided replayer accepts it.
            let trace = concurrent_trace_from_schedule(&merged, &[target], &schedule, limits.clone())
                .unwrap_or_else(|e| panic!("{strategy}: refine: {e}"));
            let rounds = trace.round_skeleton();
            let steps = trace.to_guided();
            let accepted = conc_replay_guided(&merged, &[target], &rounds, &steps, limits.clone());
            prop_assert!(accepted.is_ok(), "{strategy}: guided replay rejected: {accepted:?}");

            // (c) the round skeleton is exactly the schedule, and the
            // round-level replayer agrees it is executable.
            prop_assert_eq!(&rounds, &schedule.to_replay());
            let round_ok = conc_replay_schedule(&merged, &[target], &rounds, limits.clone())
                .unwrap_or_else(|e| panic!("{strategy}: round replay: {e}"));
            prop_assert!(round_ok, "{strategy}: round-level replay disagrees with guided");

            // (b) mutations are rejected. Each mutation below violates an
            // invariant the replayer *must* check, independently of what
            // the program's nondeterminism would otherwise admit.
            let rejected = |r: Result<(), ConcExplicitError>| {
                matches!(r, Err(ConcExplicitError::ScriptRejected { .. }))
            };
            if !steps.is_empty() {
                // Wrong thread: the round's scheduled thread is unique.
                let mut bad = steps.clone();
                bad[0].thread = (bad[0].thread + 1) % merged.n_threads;
                prop_assert!(
                    rejected(conc_replay_guided(&merged, &[target], &rounds, &bad, limits.clone())),
                    "{strategy}: wrong-thread mutation accepted"
                );

                // Wrong pc: no edge targets a pc outside the program.
                let mut bad = steps.clone();
                let off = merged.cfg.pc_count;
                bad[0].step = match bad[0].step {
                    getafix_boolprog::ReplayStep::Internal { to, globals, locals } =>
                        getafix_boolprog::ReplayStep::Internal { to: to + off, globals, locals },
                    getafix_boolprog::ReplayStep::Call { entry, globals, locals } =>
                        getafix_boolprog::ReplayStep::Call { entry: entry + off, globals, locals },
                    getafix_boolprog::ReplayStep::Return { ret_to, globals, locals } =>
                        getafix_boolprog::ReplayStep::Return { ret_to: ret_to + off, globals, locals },
                };
                prop_assert!(
                    rejected(conc_replay_guided(&merged, &[target], &rounds, &bad, limits.clone())),
                    "{strategy}: wrong-pc mutation accepted"
                );

                // Perturbed globals: an out-of-frame bit can never be set.
                let mut bad = steps.clone();
                bad[0].step = match bad[0].step {
                    getafix_boolprog::ReplayStep::Internal { to, globals, locals } =>
                        getafix_boolprog::ReplayStep::Internal { to, globals: globals | 1 << 63, locals },
                    getafix_boolprog::ReplayStep::Call { entry, globals, locals } =>
                        getafix_boolprog::ReplayStep::Call { entry, globals: globals | 1 << 63, locals },
                    getafix_boolprog::ReplayStep::Return { ret_to, globals, locals } =>
                        getafix_boolprog::ReplayStep::Return { ret_to, globals: globals | 1 << 63, locals },
                };
                prop_assert!(
                    rejected(conc_replay_guided(&merged, &[target], &rounds, &bad, limits.clone())),
                    "{strategy}: perturbed-globals mutation accepted"
                );
            }
            // Reordered steps: moving a later round's step before an
            // earlier round's regresses the round counter — always
            // rejected, whatever the intra-round semantics would admit.
            if let Some(j) = steps.iter().position(|s| s.round > steps[0].round) {
                let mut bad = steps.clone();
                bad.swap(0, j);
                prop_assert!(
                    rejected(conc_replay_guided(&merged, &[target], &rounds, &bad, limits.clone())),
                    "{strategy}: reordered-steps mutation accepted"
                );
            }
        }
    }

    /// Slice-then-solve ≡ solve: the pre-solve slicer preserves verdicts
    /// on random programs — under both solver strategies and jobs ∈ {1, 4}
    /// — a pruned target is confirmed unreachable by the explicit oracle,
    /// and witnesses extracted on the *sliced* program still replay in the
    /// sliced program's concrete semantics.
    #[test]
    fn slicing_preserves_verdicts_and_witnesses(p in program_strategy()) {
        let cfg = Cfg::build(&p).unwrap_or_else(|e| panic!("{e}\n{p}"));
        let target = cfg.label("HIT").expect("generated label");
        let oracle = explicit_reachable(&cfg, &[target], 5_000_000)
            .expect("oracle within budget")
            .reachable;
        let sliced = slice(&cfg, &AnalysisOptions::sequential().with_targets(&[target]));
        let Some(new_target) = sliced.map_pc(target) else {
            prop_assert!(!oracle, "slicer pruned a reachable target\n{}", p);
            return Ok(());
        };
        for strategy in [SolverStrategy::Worklist, SolverStrategy::RoundRobin] {
            for jobs in [1usize, 4] {
                let options = SolveOptions { jobs, ..SolveOptions::with_strategy(strategy) };
                let r = check_reachability_with(
                    &sliced.cfg,
                    &[new_target],
                    Algorithm::EntryForwardOpt,
                    options,
                )
                .unwrap_or_else(|e| panic!("{strategy} jobs={jobs}: {e}\n{p}"));
                prop_assert_eq!(
                    r.reachable, oracle,
                    "{} jobs={}: sliced verdict diverged from the oracle\n{}", strategy, jobs, p
                );
            }
            let witness =
                sequential_witness(&sliced.cfg, &[new_target], SolveOptions::with_strategy(strategy))
                    .unwrap_or_else(|e| panic!("{strategy}: {e}\n{p}"));
            match witness {
                Some(trace) => {
                    prop_assert!(oracle, "{}: sliced witness for unreachable target\n{}", strategy, p);
                    let check = replay(&sliced.cfg, &trace.to_replay(), &[new_target]);
                    prop_assert!(check.is_ok(), "{}: sliced replay rejected: {:?}\n{}", strategy, check, p);
                }
                None => prop_assert!(!oracle, "{}: reachable but no sliced witness\n{}", strategy, p),
            }
        }
    }

    /// The concurrent analogue: slicing a merged program (concurrent-mode
    /// analysis — shared globals unknown at every step) preserves
    /// bounded-round verdicts, and a pruned target is confirmed
    /// unreachable by the explicit interleaving oracle.
    #[test]
    fn conc_slicing_preserves_verdicts(p in conc_program_strategy()) {
        let merged = merge(&p).unwrap();
        let target = merged.cfg.label("t0__HIT").expect("generated label");
        let switches = 2usize;
        let oracle = conc_explicit_reachable(&merged, &[target], switches, ConcLimits::default())
            .expect("oracle within budget");
        let (sliced_merged, s) = slice_merged(&merged, &[target]);
        let Some(new_target) = s.map_pc(target) else {
            prop_assert!(!oracle, "slicer pruned a reachable concurrent target\n{:?}", p);
            return Ok(());
        };
        for strategy in [SolverStrategy::Worklist, SolverStrategy::RoundRobin] {
            let options = SolveOptions::with_strategy(strategy);
            let r = check_merged_with(&sliced_merged, &[new_target], switches, options)
                .unwrap_or_else(|e| panic!("{strategy}: {e}"));
            prop_assert_eq!(
                r.reachable, oracle,
                "{}: sliced concurrent verdict diverged from the oracle", strategy
            );
        }
    }
}
