//! Concrete trace and schedule types, plus the human-readable renderers
//! the CLI's `--trace` flag prints.

use getafix_boolprog::{Bits, Cfg, Pc, ReplayStep};
use getafix_conc::{GuidedStep, ScheduleRound};
use std::fmt::Write as _;

/// What kind of transition a [`Step`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// An intra-procedural edge.
    Internal,
    /// Descent into a callee (the step's `pc` is the callee's entry).
    Call,
    /// Return to the caller (the step's `pc` is the resume point).
    Return,
}

/// One step of a sequential witness trace, recording the *post*-state:
/// the pc control reaches, the shared globals, and the locals of the frame
/// that is current after the step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Transition kind.
    pub kind: StepKind,
    /// Post-state pc.
    pub pc: Pc,
    /// Post-state global valuation (bit `i` = global `i`).
    pub globals: Bits,
    /// Post-state locals of the then-current frame.
    pub locals: Bits,
}

/// A sequential witness: a concrete interprocedural path from the initial
/// configuration to a target pc. Validated by
/// [`getafix_boolprog::replay`] — see [`Trace::to_replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The steps, in execution order (the implicit start is main's entry
    /// with all variables `false`).
    pub steps: Vec<Step>,
    /// The target pc the trace ends at.
    pub target: Pc,
}

impl Trace {
    /// The trace as the replay oracle's step sequence.
    pub fn to_replay(&self) -> Vec<ReplayStep> {
        self.steps
            .iter()
            .map(|s| match s.kind {
                StepKind::Internal => {
                    ReplayStep::Internal { to: s.pc, globals: s.globals, locals: s.locals }
                }
                StepKind::Call => {
                    ReplayStep::Call { entry: s.pc, globals: s.globals, locals: s.locals }
                }
                StepKind::Return => {
                    ReplayStep::Return { ret_to: s.pc, globals: s.globals, locals: s.locals }
                }
            })
            .collect()
    }

    /// Pretty-prints the trace with procedure names, variable valuations
    /// and — when the program was parsed from text — source line
    /// references.
    pub fn render(&self, cfg: &Cfg) -> String {
        let mut out = String::new();
        let main = &cfg.procs[cfg.main];
        let _ = writeln!(out, "  start  in {:<12} {}", main.name, describe_pc(cfg, main.entry));
        let mut depth = 0usize;
        for (i, s) in self.steps.iter().enumerate() {
            let proc = cfg.proc_of(s.pc);
            let verb = match s.kind {
                StepKind::Internal => "step",
                StepKind::Call => {
                    depth += 1;
                    "call"
                }
                StepKind::Return => {
                    depth = depth.saturating_sub(1);
                    "return"
                }
            };
            let indent = "  ".repeat(depth);
            let state = render_state(cfg, proc, s.globals, s.locals);
            let _ = writeln!(
                out,
                "  #{i:<4} {indent}{verb:<6} in {:<12} {} {state}",
                proc.name,
                describe_pc(cfg, s.pc),
            );
        }
        let _ = writeln!(out, "  target reached: {}", describe_pc(cfg, self.target));
        out
    }
}

/// `pc 12 (line 7, `HIT`)` — as much source context as the CFG carries.
fn describe_pc(cfg: &Cfg, pc: Pc) -> String {
    let mut extras = Vec::new();
    if let Some(line) = cfg.line_of(pc) {
        extras.push(format!("line {line}"));
    }
    if let Some((label, _)) = cfg.labels.iter().find(|(_, &p)| p == pc) {
        extras.push(format!("`{label}`"));
    }
    if cfg.proc_of(pc).is_exit(pc) {
        extras.push("exit".into());
    }
    if extras.is_empty() {
        format!("pc {pc}")
    } else {
        format!("pc {pc} ({})", extras.join(", "))
    }
}

/// `g=1 x=1 y=0` — named valuations, globals first.
fn render_state(
    cfg: &Cfg,
    proc: &getafix_boolprog::ProcCfg,
    globals: Bits,
    locals: Bits,
) -> String {
    let mut parts = Vec::new();
    for (i, g) in cfg.globals.iter().enumerate() {
        parts.push(format!("{g}={}", (globals >> i) & 1));
    }
    for (i, l) in proc.locals.iter().enumerate() {
        parts.push(format!("{l}={}", (locals >> i) & 1));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("[{}]", parts.join(" "))
    }
}

/// One context of a concurrent witness schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Round {
    /// The thread active in this context.
    pub thread: usize,
    /// The shared-global valuation the context is entered with (round 0 is
    /// always entered with all globals `false`).
    pub globals_at_entry: Bits,
}

/// A concurrent witness: a bounded-round schedule under which the target
/// is reachable — who runs in each context, and the shared-global
/// valuation recorded at every context switch (the `ḡ` vector of §5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The contexts in order; `rounds.len() - 1` context switches happen.
    pub rounds: Vec<Round>,
    /// The context-switch bound the analysis ran with.
    pub bound: usize,
    /// The target pc, reached in the final round.
    pub target: Pc,
}

impl Schedule {
    /// Number of context switches the schedule uses (≤ [`Schedule::bound`]).
    pub fn switches(&self) -> usize {
        self.rounds.len().saturating_sub(1)
    }

    /// The schedule in the explicit replayer's format.
    pub fn to_replay(&self) -> Vec<(usize, Bits)> {
        self.rounds.iter().map(|r| (r.thread, r.globals_at_entry)).collect()
    }

    /// Structural sanity: within bound, round 0 starts all-`false`, and
    /// every thread id is below `n_threads`.
    pub fn is_well_formed(&self, n_threads: usize) -> bool {
        !self.rounds.is_empty()
            && self.switches() <= self.bound
            && self.rounds[0].globals_at_entry == 0
            && self.rounds.iter().all(|r| r.thread < n_threads)
    }

    /// Pretty-prints the schedule with the merged CFG's global names.
    pub fn render(&self, cfg: &Cfg) -> String {
        let mut out = String::new();
        for (j, r) in self.rounds.iter().enumerate() {
            out.push_str(&round_line(cfg, j, r));
        }
        let _ = writeln!(
            out,
            "  target reached in round {}: {}",
            self.rounds.len() - 1,
            describe_pc(cfg, self.target)
        );
        out
    }
}

/// `  round 2: thread 1 takes over with [flag=1]\n` — one schedule round.
fn round_line(cfg: &Cfg, j: usize, r: &Round) -> String {
    let vals: Vec<String> = cfg
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| format!("{g}={}", (r.globals_at_entry >> i) & 1))
        .collect();
    let how = if j == 0 { "starts" } else { "takes over" };
    format!("  round {j}: thread {} {how} with [{}]\n", r.thread, vals.join(" "))
}

/// One statement-granular step of a concurrent witness trace, recording —
/// like the sequential [`Step`] — the *post*-state: the pc the active
/// thread's control reaches, the shared globals, and the locals of that
/// thread's then-current frame. `round` places the step in its schedule
/// round (whose scheduled thread is `thread`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcStep {
    /// Index into the schedule's rounds.
    pub round: usize,
    /// The thread taking the step.
    pub thread: usize,
    /// Transition kind.
    pub kind: StepKind,
    /// Post-state pc.
    pub pc: Pc,
    /// Post-state shared-global valuation.
    pub globals: Bits,
    /// Post-state locals of the stepping thread's current frame.
    pub locals: Bits,
}

/// A statement-granular concurrent witness: the round-level [`Schedule`]
/// refined into an explicit interleaved sequence of statement steps —
/// every scheduler choice *and* every intra-round step and
/// nondeterministic value pinned. Validated by the deterministic guided
/// replayer ([`getafix_conc::conc_replay_guided`]) via
/// [`ConcTrace::to_guided`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcTrace {
    /// The round-level skeleton: who runs each round and the shared
    /// globals at every hand-over.
    pub schedule: Schedule,
    /// The steps, in execution order across all rounds.
    pub steps: Vec<ConcStep>,
}

impl ConcTrace {
    /// Builds a trace from the explicit engine's refined step script.
    pub fn from_guided(schedule: Schedule, steps: &[GuidedStep]) -> ConcTrace {
        let steps = steps
            .iter()
            .map(|g| {
                let (kind, pc, globals, locals) = match g.step {
                    ReplayStep::Internal { to, globals, locals } => {
                        (StepKind::Internal, to, globals, locals)
                    }
                    ReplayStep::Call { entry, globals, locals } => {
                        (StepKind::Call, entry, globals, locals)
                    }
                    ReplayStep::Return { ret_to, globals, locals } => {
                        (StepKind::Return, ret_to, globals, locals)
                    }
                };
                ConcStep { round: g.round, thread: g.thread, kind, pc, globals, locals }
            })
            .collect();
        ConcTrace { schedule, steps }
    }

    /// The trace as the guided replayer's step script.
    pub fn to_guided(&self) -> Vec<GuidedStep> {
        self.steps
            .iter()
            .map(|s| {
                let step = match s.kind {
                    StepKind::Internal => {
                        ReplayStep::Internal { to: s.pc, globals: s.globals, locals: s.locals }
                    }
                    StepKind::Call => {
                        ReplayStep::Call { entry: s.pc, globals: s.globals, locals: s.locals }
                    }
                    StepKind::Return => {
                        ReplayStep::Return { ret_to: s.pc, globals: s.globals, locals: s.locals }
                    }
                };
                GuidedStep { round: s.round, thread: s.thread, step }
            })
            .collect()
    }

    /// The round skeleton in the round-level replayer's format — must
    /// agree with what [`getafix_conc::conc_replay_schedule`] accepts.
    pub fn round_skeleton(&self) -> Vec<ScheduleRound> {
        self.schedule.to_replay()
    }

    /// Pretty-prints the interleaved trace: one header per round, then
    /// that round's statement steps in the sequential trace's format
    /// (procedure names, labels, source lines, valuations), indented by
    /// the stepping thread's call depth.
    pub fn render(&self, cfg: &Cfg) -> String {
        let mut out = String::new();
        // Call depth per thread, grown on demand.
        let mut depth: Vec<usize> = Vec::new();
        let mut i = 0usize;
        for (j, r) in self.schedule.rounds.iter().enumerate() {
            out.push_str(&round_line(cfg, j, r));
            if depth.len() <= r.thread {
                depth.resize(r.thread + 1, 0);
            }
            while i < self.steps.len() && self.steps[i].round == j {
                let s = &self.steps[i];
                let proc = cfg.proc_of(s.pc);
                let verb = match s.kind {
                    StepKind::Internal => "step",
                    StepKind::Call => {
                        depth[s.thread] += 1;
                        "call"
                    }
                    StepKind::Return => {
                        depth[s.thread] = depth[s.thread].saturating_sub(1);
                        "return"
                    }
                };
                let indent = "  ".repeat(depth[s.thread]);
                let state = render_state(cfg, proc, s.globals, s.locals);
                let _ = writeln!(
                    out,
                    "  #{i:<4} {indent}{verb:<6} in {:<12} {} {state}",
                    proc.name,
                    describe_pc(cfg, s.pc),
                );
                i += 1;
            }
        }
        let _ = writeln!(
            out,
            "  target reached in round {}: {}",
            self.schedule.rounds.len() - 1,
            describe_pc(cfg, self.schedule.target)
        );
        out
    }
}
