//! Witness extraction and trace replay: from fixed-point summaries to
//! concrete, replayable error traces.
//!
//! The checkers in this workspace answer *reachable / unreachable*; this
//! crate answers **why**. The paper's summary relations contain exactly
//! the entry→configuration provenance needed to reconstruct an
//! interprocedural error path, and the solver's rank provenance
//! ([`getafix_mucalc::SolveOptions::record_provenance`]) makes the
//! reconstruction well-founded (onion-peeling by first-appearance rank).
//!
//! * [`sequential_witness_from`] — a concrete [`Trace`] through a
//!   recursive Boolean program, peeled **directly from the verdict
//!   solver's provenance** (one solve answers *reachable?* and *why*);
//!   [`sequential_witness`] is the demoted two-solve oracle variant.
//!   Traces carry internal steps, calls and summary-justified returns,
//!   and every one is re-executed in the concrete interpreter
//!   ([`getafix_boolprog::replay`]) before being returned, making
//!   witnesses a second differential oracle against the symbolic engines.
//! * [`concurrent_witness`] — a bounded-round [`Schedule`] for the §5
//!   engine: who runs in each context and the shared-global valuation at
//!   every switch, replayable with
//!   [`getafix_conc::conc_replay_schedule`].
//! * [`concurrent_trace`] — the schedule refined into a
//!   **statement-granular** interleaved [`ConcTrace`]: an explicit
//!   `(round, thread, pc, valuation)` step sequence with every
//!   nondeterministic choice pinned, validated by the *deterministic*
//!   guided replayer ([`getafix_conc::conc_replay_guided`] — one
//!   successor per step, no frontier search) before being returned.
//!
//! # Example
//!
//! ```
//! use getafix_boolprog::{parse_program, Cfg};
//! use getafix_mucalc::SolveOptions;
//! use getafix_witness::sequential_witness;
//!
//! let program = parse_program(r#"
//!     decl g;
//!     main() begin
//!       decl x;
//!       x := f(T);
//!       if (x) then HIT: skip; fi;
//!     end
//!     f(a) returns 1 begin
//!       return a;
//!     end
//! "#)?;
//! let cfg = Cfg::build(&program)?;
//! let target = cfg.label("HIT").expect("label exists");
//! let trace = sequential_witness(&cfg, &[target], SolveOptions::default())?
//!     .expect("HIT is reachable");
//! assert_eq!(trace.target, target);
//! // The trace ends at HIT and replays in the concrete interpreter —
//! // sequential_witness already validated that before returning.
//! println!("{}", trace.render(&cfg));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod conc;
mod seq;
mod trace;

pub use conc::{
    concurrent_trace, concurrent_trace_from_schedule, concurrent_witness, concurrent_witness_from,
};
pub use seq::{
    sequential_witness, sequential_witness_from, sequential_witness_with, WitnessError,
    WitnessLimits,
};
pub use trace::{ConcStep, ConcTrace, Round, Schedule, Step, StepKind, Trace};
