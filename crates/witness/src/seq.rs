//! Sequential witness extraction: onion-peeling a solved entry-forward
//! summary relation into a concrete interprocedural error path.
//!
//! # One solve, not two
//!
//! [`sequential_witness_from`] peels the **verdict solver's own
//! provenance** ([`getafix_mucalc::Provenance`]): the solver that just
//! answered *reachable* already holds ⊆-increasing rank snapshots
//! `F₀ ⊆ F₁ ⊆ … ⊆ F_n` of its summary relation, and the **rank** of a
//! tuple — the first snapshot containing it — is well-founded provenance:
//! a tuple of rank `r` is derivable by one clause application from tuples
//! of rank `< r` (see [`Solver::provenance`]). Both trace-capable summary
//! shapes are understood:
//!
//! * `ef-opt`'s `SummaryEFopt(fr, s)` — the extractor restricts the
//!   frontier bit to `fr = 1`, leaving the precise entry-annotated
//!   reachable set (the §4.3 construction has no early-exit clause, and
//!   its call/return clauses draw from the previous round's frozen value,
//!   so the rank bound argument below goes through unchanged);
//! * the entry-forward `Reachable` *without* the early-termination
//!   disjunct ([`getafix_core::system_ef_trace`]).
//!
//! The legacy [`sequential_witness`] entry point still performs a
//! dedicated solve of [`getafix_core::system_ef_witness`] — demoted to a
//! differential oracle against the single-solve path (and a fallback for
//! the `simple` algorithm, whose all-entries summaries carry no
//! entry-reachability provenance).
//!
//! # How the peeling works
//!
//! Extraction works per *invocation* (a procedure entered with
//! concrete entry valuations `(ecl, ecg)`):
//!
//! 1. **Target.** Constrain the solved relation to the target pcs and
//!    pick a shortest cube of it ([`getafix_bdd::Manager::sat_one`]) — a
//!    concrete configuration `(pc, cl, cg, ecl, ecg)`.
//! 2. **Caller chain.** The invocation's canonical entry configuration
//!    `(entry pc, ecl, ecg, ecl, ecg)` first appears via the call clause
//!    (or `Init`), so a *caller* configuration admitting it exists one
//!    frontier earlier; picking one and recursing walks the chain back to
//!    `Init` with strictly decreasing ranks.
//! 3. **Intra-invocation path.** Forward BFS from the entry configuration
//!    over the *concrete* semantics: internal edges step directly;
//!    call-skip edges consult the summary relation for an exit tuple of
//!    rank `< R` (the goal's rank) — the rank bound both guarantees the
//!    nested sub-trace extraction terminates and is complete, because the
//!    goal's own derivation only uses summaries below its rank.
//! 4. **Sub-traces.** Every summary edge taken expands recursively into
//!    `Call · (callee path) · Return`, yielding a flat replayable trace.
//!
//! The result is validated in the concrete interpreter
//! ([`getafix_boolprog::replay`]) before being returned — an extracted
//! trace is *evidence*, not a claim.

use crate::trace::{Step, StepKind, Trace};
use getafix_bdd::{Bdd, Var};
use getafix_boolprog::{
    admits, enumerate_choices, frame_mask, next_states, read_var, replay, write_var, Bits, Cfg,
    Edge, LExpr, Pc, VarRef,
};
use getafix_core::{install_templates, system_ef_witness};
use getafix_mucalc::{eq_const, LimitKind, ResourceLimits, SolveOptions, Solver};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Errors from witness extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// System generation / template encoding / solving failed.
    Solve(String),
    /// The program exceeds the extractor's concrete-state limits
    /// (more than 64 globals or locals per frame).
    TooManyVariables(String),
    /// Exploration exceeded the configured state budget.
    Limit(usize),
    /// A shared resource bound tripped ([`WitnessLimits::resources`]):
    /// deadline, step budget, or an external cancellation.
    ResourceLimit(LimitKind),
    /// Extraction contradicted itself — a bug in the solver, the encoding
    /// or the extractor (the differential suites exist to keep this arm
    /// dead).
    Internal(String),
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::Solve(m) => write!(f, "solve: {m}"),
            WitnessError::TooManyVariables(m) => write!(f, "{m}"),
            WitnessError::Limit(n) => write!(f, "witness extraction exceeded {n} states"),
            WitnessError::ResourceLimit(kind) => {
                write!(f, "witness extraction hit a resource limit ({kind})")
            }
            WitnessError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for WitnessError {}

/// Extraction tuning knobs.
#[derive(Debug, Clone)]
pub struct WitnessLimits {
    /// Cap on BFS states per invocation and on enumerated candidate
    /// tuples; exceeding it is [`WitnessError::Limit`].
    pub max_states: usize,
    /// Shared resource governance (deadline, step budget, cancel token):
    /// every onion-peel step and path-BFS expansion accounts one step, so
    /// the budget that bounds the verdict solve also bounds extraction.
    /// Off by default.
    pub resources: ResourceLimits,
}

impl Default for WitnessLimits {
    fn default() -> Self {
        WitnessLimits { max_states: 1_000_000, resources: ResourceLimits::default() }
    }
}

/// A concrete summary tuple: one point of the `Reachable` relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Conf {
    pc: Pc,
    cl: Bits,
    cg: Bits,
    ecl: Bits,
    ecg: Bits,
}

/// Extracts a concrete error trace for `targets`, or `None` when no target
/// is reachable, by solving the **dedicated witness system**
/// ([`getafix_core::system_ef_witness`]). The trace is replay-validated
/// before being returned.
///
/// This is the demoted oracle path: it pays a full second solve, so
/// production callers that already hold a provenance-recording verdict
/// solver should use [`sequential_witness_from`] instead. The `options`'
/// strategy and iteration bound are honoured (provenance recording is
/// forced on).
///
/// # Errors
///
/// See [`WitnessError`].
pub fn sequential_witness(
    cfg: &Cfg,
    targets: &[Pc],
    options: SolveOptions,
) -> Result<Option<Trace>, WitnessError> {
    sequential_witness_with(cfg, targets, options, WitnessLimits::default())
}

/// As [`sequential_witness`], with explicit extraction limits.
///
/// # Errors
///
/// See [`WitnessError`].
pub fn sequential_witness_with(
    cfg: &Cfg,
    targets: &[Pc],
    options: SolveOptions,
    limits: WitnessLimits,
) -> Result<Option<Trace>, WitnessError> {
    let system = system_ef_witness(cfg).map_err(|e| WitnessError::Solve(e.to_string()))?;
    let options = SolveOptions { record_provenance: true, ..options };
    let mut solver =
        Solver::with_options(system, options).map_err(|e| WitnessError::Solve(e.to_string()))?;
    install_templates(&mut solver, cfg, targets).map_err(|e| WitnessError::Solve(e.to_string()))?;
    sequential_witness_from(&mut solver, cfg, targets, limits)
}

/// Extracts a concrete error trace for `targets` **directly from a solved
/// verdict solver** — no second system, no re-solve. The solver must have
/// been built with [`SolveOptions::record_provenance`] on (see
/// [`getafix_core::build_trace_solver_with`]) and its system must contain
/// a trace-capable summary relation: `ef-opt`'s `SummaryEFopt` (the
/// frontier bit is restricted to 1) or an early-exit-free entry-forward
/// `Reachable`. Returns `None` when no target is reachable; any returned
/// trace has been re-executed in the concrete interpreter.
///
/// # Errors
///
/// See [`WitnessError`]; in particular [`WitnessError::Solve`] when the
/// solver records no provenance or contains no trace-capable relation.
pub fn sequential_witness_from(
    solver: &mut Solver,
    cfg: &Cfg,
    targets: &[Pc],
    limits: WitnessLimits,
) -> Result<Option<Trace>, WitnessError> {
    let mut span = getafix_telemetry::span(getafix_telemetry::Phase::Witness, "sequential_witness");
    span.attr("targets", targets.len());
    if cfg.globals.len() > 64 {
        return Err(WitnessError::TooManyVariables(format!(
            "{} globals exceed the 64-bit extraction frame",
            cfg.globals.len()
        )));
    }
    if cfg.max_locals() > 64 {
        return Err(WitnessError::TooManyVariables("a procedure has more than 64 locals".into()));
    }
    if !solver.options().record_provenance {
        return Err(WitnessError::Solve(
            "witness extraction peels rank provenance, but the solver was built \
             without `SolveOptions::record_provenance`"
                .into(),
        ));
    }
    let (rel, conf_formal, has_fr) = if solver.system().relation("SummaryEFopt").is_some() {
        ("SummaryEFopt", 1, true)
    } else if solver.system().relation("Reachable").is_some() {
        ("Reachable", 0, false)
    } else {
        return Err(WitnessError::Solve(
            "no trace-capable summary relation (`SummaryEFopt` or `Reachable`) \
             in the solved system"
                .into(),
        ));
    };
    check_formal(solver, rel, conf_formal)?;

    let raw = solver.evaluate(rel).map_err(|e| WitnessError::Solve(e.to_string()))?;
    // For ef-opt, project onto the fr = 1 slice: the entry-annotated
    // reachable set. The snapshots restrict the same way; consecutive
    // restricted snapshots may coincide (a round that only aged fresh
    // tuples), which the plateau-tolerant rank search handles.
    let fr_vars: Vec<Var> =
        if has_fr { solver.alloc().formal(rel, 0).all_vars() } else { Vec::new() };
    let fr_cube = {
        let literals: Vec<(Var, bool)> = fr_vars.iter().map(|&v| (v, true)).collect();
        solver.manager().literal_cube(&literals)
    };
    let restrict_fresh = |solver: &mut Solver, f: Bdd| -> Bdd {
        // One fused traversal per snapshot instead of a restrict per bit.
        solver.manager().restrict_cube(f, fr_cube)
    };
    let reachable = restrict_fresh(solver, raw);
    let snaps: Vec<Bdd> =
        solver.provenance().snapshots(rel).map(<[Bdd]>::to_vec).unwrap_or_default();
    let frontiers: Vec<Bdd> = snaps.into_iter().map(|s| restrict_fresh(solver, s)).collect();

    let mut ex = Extractor::new(cfg, solver, rel, conf_formal, frontiers, limits)?;

    // Constrain to the target pcs and find the earliest frontier hitting one.
    let target_bdd = {
        let pc_vars = ex.vars.pc.clone();
        let m = ex.solver.manager();
        let mut b = Bdd::FALSE;
        for &pc in targets {
            let p = eq_const(m, &pc_vars, pc as u64);
            b = m.or(b, p);
        }
        b
    };
    let hit = {
        let m = ex.solver.manager();
        m.and(reachable, target_bdd)
    };
    if hit.is_false() {
        return Ok(None);
    }
    let target_conf = ex.pick_conf(hit)?;
    let trace = ex.extract(target_conf)?;

    // Validation by replay: the concrete interpreter must accept the trace
    // and hit the target. A rejection is an extractor bug, never a user
    // error.
    replay(cfg, &trace.to_replay(), targets)
        .map_err(|e| WitnessError::Internal(format!("extracted trace failed replay: {e}")))?;
    Ok(Some(trace))
}

/// Validates that `rel` has a formal parameter `i` before touching the
/// allocation — [`getafix_mucalc::Allocation::formal`] panics on a
/// mismatch, and a system/solver mismatch must surface as a structured
/// error on the witness path.
fn check_formal(solver: &Solver, rel: &str, i: usize) -> Result<(), WitnessError> {
    let n = solver.system().relation(rel).map(|d| d.params.len()).unwrap_or(0);
    if i >= n {
        return Err(WitnessError::Solve(format!(
            "relation `{rel}` has {n} formal parameters, the extractor expects at least {}; \
             the solver's system does not match this extractor",
            i + 1
        )));
    }
    Ok(())
}

/// Variable blocks of `Reachable`'s single `Conf`-typed formal.
struct ConfVars {
    pc: Vec<Var>,
    cl: Vec<Var>,
    cg: Vec<Var>,
    ecl: Vec<Var>,
    ecg: Vec<Var>,
}

struct Extractor<'a> {
    cfg: &'a Cfg,
    solver: &'a mut Solver,
    frontiers: Vec<Bdd>,
    vars: ConfVars,
    limits: WitnessLimits,
}

/// How the BFS reached a state.
#[derive(Debug, Clone, Copy)]
enum Move {
    /// Nothing — the entry state.
    Start,
    /// An internal edge from the predecessor state.
    Internal,
    /// A call/summary edge: descend into `callee_entry`, use summary exit
    /// `exit`, resume at the state this move produced.
    Summary { callee_entry: Conf, exit: Conf },
}

impl<'a> Extractor<'a> {
    fn new(
        cfg: &'a Cfg,
        solver: &'a mut Solver,
        rel: &str,
        conf_formal: usize,
        frontiers: Vec<Bdd>,
        limits: WitnessLimits,
    ) -> Result<Self, WitnessError> {
        let inst = solver.alloc().formal(rel, conf_formal).clone();
        // A missing field is a system/solver mismatch (a hand-built system
        // whose `Conf` does not match the templates) — a structured error,
        // never a panic: the witness path honours the CLI's exit-code-2
        // contract.
        let leaf = |name: &str| -> Result<Vec<Var>, WitnessError> {
            inst.leaves_under(&[name.to_string()]).first().map(|l| l.vars.clone()).ok_or_else(
                || {
                    WitnessError::Solve(format!(
                        "relation `{rel}`'s configuration type has no `{name}` field; \
                         the solver's system does not match this extractor"
                    ))
                },
            )
        };
        let vars = ConfVars {
            pc: leaf("pc")?,
            cl: leaf("cl")?,
            cg: leaf("cg")?,
            ecl: leaf("ecl")?,
            ecg: leaf("ecg")?,
        };
        Ok(Extractor { cfg, solver, frontiers, vars, limits })
    }

    /// Membership of a concrete tuple in a BDD over the formal blocks.
    fn member(&self, f: Bdd, c: Conf) -> bool {
        let n = self.solver_manager_var_count();
        let mut env = vec![false; n];
        set_bits(&mut env, &self.vars.pc, c.pc as u64);
        set_bits(&mut env, &self.vars.cl, c.cl);
        set_bits(&mut env, &self.vars.cg, c.cg);
        set_bits(&mut env, &self.vars.ecl, c.ecl);
        set_bits(&mut env, &self.vars.ecg, c.ecg);
        self.solver.manager_ref().eval(f, &env)
    }

    fn solver_manager_var_count(&self) -> usize {
        self.solver.manager_ref().var_count()
    }

    /// First frontier index containing `c` (frontiers are ⊆-increasing).
    fn rank(&self, c: Conf) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.frontiers.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.member(self.frontiers[mid], c) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        (lo < self.frontiers.len()).then_some(lo)
    }

    /// A concrete tuple out of a non-empty set over the formal blocks.
    fn pick_conf(&mut self, f: Bdd) -> Result<Conf, WitnessError> {
        let cube = self
            .solver
            .manager()
            .sat_one(f)
            .ok_or_else(|| WitnessError::Internal("pick_conf on empty set".into()))?;
        let get = |vars: &[Var]| -> u64 { read_bits(&cube, vars) };
        Ok(Conf {
            pc: get(&self.vars.pc) as Pc,
            cl: get(&self.vars.cl),
            cg: get(&self.vars.cg),
            ecl: get(&self.vars.ecl),
            ecg: get(&self.vars.ecg),
        })
    }

    /// The canonical entry configuration of the invocation `c` belongs to.
    fn entry_of(&self, c: Conf) -> Conf {
        let entry = self.cfg.proc_of(c.pc).entry;
        Conf { pc: entry, cl: c.ecl, cg: c.ecg, ecl: c.ecl, ecg: c.ecg }
    }

    fn init_conf(&self) -> Conf {
        Conf { pc: self.cfg.procs[self.cfg.main].entry, cl: 0, cg: 0, ecl: 0, ecg: 0 }
    }

    /// Top-level extraction: caller chain, then per-invocation paths.
    fn extract(&mut self, target: Conf) -> Result<Trace, WitnessError> {
        // Walk the caller chain outward: frames[0] is the target's
        // invocation, the last frame is main's.
        let mut frames: Vec<(Conf, Conf)> = Vec::new(); // (entry, goal)
        let mut goal = target;
        loop {
            self.limits.resources.note_steps(1).map_err(WitnessError::ResourceLimit)?;
            let entry = self.entry_of(goal);
            frames.push((entry, goal));
            if entry == self.init_conf() {
                break;
            }
            goal = self.find_caller(entry)?;
            if frames.len() > self.cfg.pc_count as usize * 64 + 64 {
                return Err(WitnessError::Internal("caller chain does not terminate".into()));
            }
        }

        // Assemble main-first: path to the call site, call into the next
        // frame, …, path to the target.
        let mut steps: Vec<Step> = Vec::new();
        for i in (0..frames.len()).rev() {
            let (entry, goal) = frames[i];
            steps.extend(self.find_path(entry, goal)?);
            if i > 0 {
                let callee_entry = frames[i - 1].0;
                steps.push(Step {
                    kind: StepKind::Call,
                    pc: callee_entry.pc,
                    globals: callee_entry.cg,
                    locals: callee_entry.cl,
                });
            }
        }
        Ok(Trace { steps, target: target.pc })
    }

    /// A caller configuration that admits `entry` via the call clause, one
    /// frontier before `entry`'s first appearance.
    fn find_caller(&mut self, entry: Conf) -> Result<Conf, WitnessError> {
        let r = self
            .rank(entry)
            .ok_or_else(|| WitnessError::Internal("entry conf not in any frontier".into()))?;
        if r == 0 {
            return Err(WitnessError::Internal("rank-0 entry is Init and has no caller".into()));
        }
        let prev = self.frontiers[r - 1];
        let cfg = self.cfg;
        let callee = cfg.proc_of(entry.pc).id;
        for proc in &cfg.procs {
            for (&pc_c, edges) in &proc.edges {
                for e in edges {
                    let Edge::Call { callee: target_callee, args, .. } = e else { continue };
                    if *target_callee != callee {
                        continue;
                    }
                    // Arguments beyond the parameter prefix must be zero in
                    // the callee's entry locals.
                    if entry.cl & !frame_mask(args.len()) != 0 {
                        continue;
                    }
                    // Candidates: prev-frontier tuples at this call site
                    // whose globals match the callee's entry globals.
                    let fixed = {
                        let pcb = self.restrict_bits(prev, BlockSel::Pc, pc_c as u64);
                        self.restrict_bits(pcb, BlockSel::Cg, entry.cg)
                    };
                    let over: Vec<Var> = self
                        .vars
                        .cl
                        .iter()
                        .chain(&self.vars.ecl)
                        .chain(&self.vars.ecg)
                        .copied()
                        .collect();
                    // Only the caller-local bits the arguments *read* can
                    // affect admissibility; every other free bit may take
                    // any value (the whole cube is in the frontier), so it
                    // is pinned to `false` instead of enumerated — this
                    // keeps candidate expansion linear in the cube count.
                    let mut expand = vec![false; over.len()];
                    for a in args {
                        for v in a.vars() {
                            if let VarRef::Local(i) = v {
                                expand[i] = true;
                            }
                        }
                    }
                    for model in self.models(fixed, &over, &expand)? {
                        let cl = read_model(&model, 0, self.vars.cl.len());
                        let ecl = read_model(&model, self.vars.cl.len(), self.vars.ecl.len());
                        let ecg = read_model(
                            &model,
                            self.vars.cl.len() + self.vars.ecl.len(),
                            self.vars.ecg.len(),
                        );
                        let admits_args = args
                            .iter()
                            .enumerate()
                            .all(|(i, a)| admits(a, entry.cg, cl, (entry.cl >> i) & 1 == 1));
                        if admits_args {
                            return Ok(Conf { pc: pc_c, cl, cg: entry.cg, ecl, ecg });
                        }
                    }
                }
            }
        }
        Err(WitnessError::Internal(format!(
            "no caller admits entry configuration at pc {}",
            entry.pc
        )))
    }

    /// Concrete forward BFS from `entry` to `goal` within one invocation;
    /// summary edges are bounded by `goal`'s rank (see the module docs).
    fn find_path(&mut self, entry: Conf, goal: Conf) -> Result<Vec<Step>, WitnessError> {
        if entry == goal {
            return Ok(Vec::new());
        }
        let goal_rank = self
            .rank(goal)
            .ok_or_else(|| WitnessError::Internal("goal conf not in any frontier".into()))?;
        // Summary exits must come from a strictly earlier frontier.
        let summary_pool = if goal_rank == 0 { None } else { Some(self.frontiers[goal_rank - 1]) };

        let key = |c: Conf| (c.pc, c.cl, c.cg);
        let mut prev: BTreeMap<(Pc, Bits, Bits), (Conf, Move)> = BTreeMap::new();
        prev.insert(key(entry), (entry, Move::Start));
        let mut queue: VecDeque<Conf> = VecDeque::from([entry]);

        let cfg = self.cfg;
        'bfs: while let Some(cur) = queue.pop_front() {
            if prev.len() > self.limits.max_states {
                return Err(WitnessError::Limit(self.limits.max_states));
            }
            self.limits.resources.note_steps(1).map_err(WitnessError::ResourceLimit)?;
            let proc = cfg.proc_of(cur.pc);
            let edges = match proc.edges.get(&cur.pc) {
                Some(es) => es,
                None => continue,
            };
            let push = |next: Conf,
                        mv: Move,
                        prev: &mut BTreeMap<(Pc, Bits, Bits), (Conf, Move)>,
                        queue: &mut VecDeque<Conf>| {
                if let std::collections::btree_map::Entry::Vacant(v) = prev.entry(key(next)) {
                    v.insert((cur, mv));
                    queue.push_back(next);
                    next == goal
                } else {
                    false
                }
            };
            for e in edges {
                match e {
                    Edge::Internal { to, guard, assigns } => {
                        if !admits(guard, cur.cg, cur.cl, true) {
                            continue;
                        }
                        for (cg2, cl2) in next_states(cur.cg, cur.cl, assigns) {
                            let next = Conf { pc: *to, cl: cl2, cg: cg2, ..cur };
                            if push(next, Move::Internal, &mut prev, &mut queue) {
                                break 'bfs;
                            }
                        }
                    }
                    Edge::Call { callee, args, rets, ret_to } => {
                        let Some(pool) = summary_pool else { continue };
                        let q = &cfg.procs[*callee];
                        let sets: Vec<(bool, bool)> = args
                            .iter()
                            .map(|a| a.value_set(&|v| read_var(cur.cg, cur.cl, v)))
                            .collect();
                        for arg_vals in enumerate_choices(&sets) {
                            let mut el2: Bits = 0;
                            for (i, &b) in arg_vals.iter().enumerate() {
                                if b {
                                    el2 |= 1 << i;
                                }
                            }
                            let callee_entry =
                                Conf { pc: q.entry, cl: el2, cg: cur.cg, ecl: el2, ecg: cur.cg };
                            for exit in self.summary_exits(pool, q.id, el2, cur.cg)? {
                                let xp = q
                                    .exits
                                    .iter()
                                    .find(|x| x.pc == exit.pc)
                                    .expect("summary exit at an exit pc");
                                let rsets: Vec<(bool, bool)> = xp
                                    .ret_exprs
                                    .iter()
                                    .map(|e| e.value_set(&|v| read_var(exit.cg, exit.cl, v)))
                                    .collect();
                                for rvals in enumerate_choices(&rsets) {
                                    let mut cg2 = exit.cg;
                                    let mut cl2 = cur.cl;
                                    for (t, val) in rets.iter().zip(&rvals) {
                                        write_var(&mut cg2, &mut cl2, *t, *val);
                                    }
                                    let next = Conf { pc: *ret_to, cl: cl2, cg: cg2, ..cur };
                                    let mv = Move::Summary { callee_entry, exit };
                                    if push(next, mv, &mut prev, &mut queue) {
                                        break 'bfs;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        let Some(_) = prev.get(&key(goal)) else {
            return Err(WitnessError::Internal(format!(
                "no path from entry pc {} to goal pc {} within the invocation",
                entry.pc, goal.pc
            )));
        };

        // Reconstruct, expanding summary moves recursively.
        let mut rev: Vec<(Conf, Move)> = Vec::new();
        let mut at = goal;
        while at != entry {
            let (from, mv) = prev[&key(at)];
            rev.push((at, mv));
            at = from;
        }
        let mut steps = Vec::new();
        for (post, mv) in rev.into_iter().rev() {
            match mv {
                Move::Start => unreachable!("Start only marks the entry"),
                Move::Internal => steps.push(Step {
                    kind: StepKind::Internal,
                    pc: post.pc,
                    globals: post.cg,
                    locals: post.cl,
                }),
                Move::Summary { callee_entry, exit } => {
                    steps.push(Step {
                        kind: StepKind::Call,
                        pc: callee_entry.pc,
                        globals: callee_entry.cg,
                        locals: callee_entry.cl,
                    });
                    steps.extend(self.find_path(callee_entry, exit)?);
                    steps.push(Step {
                        kind: StepKind::Return,
                        pc: post.pc,
                        globals: post.cg,
                        locals: post.cl,
                    });
                }
            }
        }
        Ok(steps)
    }

    /// Summary exit tuples of procedure `callee` for the given entry
    /// valuations within `pool` (a frontier, hence already rank-bounded).
    ///
    /// Exit-local bits not read by the exit's return expressions cannot
    /// influence the caller's resumed state, so free (don't-care) bits
    /// among them are pinned to `false` rather than enumerated — every
    /// completion of a cube is in the pool, and for each resumed state some
    /// pinned representative produces it. Free *global* bits are expanded:
    /// they flow into the resumed state directly.
    fn summary_exits(
        &mut self,
        pool: Bdd,
        callee: usize,
        ecl: Bits,
        ecg: Bits,
    ) -> Result<Vec<Conf>, WitnessError> {
        let proc = &self.cfg.procs[callee];
        let exits: Vec<(Pc, Vec<VarRef>)> = proc
            .exits
            .iter()
            .map(|x| (x.pc, x.ret_exprs.iter().flat_map(LExpr::vars).collect()))
            .collect();
        let n_cl = self.vars.cl.len();
        let mut out = Vec::new();
        for (pc, ret_reads) in exits {
            let fixed = {
                let a = self.restrict_bits(pool, BlockSel::Pc, pc as u64);
                let b = self.restrict_bits(a, BlockSel::Ecl, ecl);
                self.restrict_bits(b, BlockSel::Ecg, ecg)
            };
            let over: Vec<Var> = self.vars.cl.iter().chain(&self.vars.cg).copied().collect();
            let mut expand = vec![false; over.len()];
            for e in expand.iter_mut().skip(n_cl) {
                *e = true;
            }
            for v in &ret_reads {
                if let VarRef::Local(i) = v {
                    expand[*i] = true;
                }
            }
            for model in self.models(fixed, &over, &expand)? {
                let cl = read_model(&model, 0, n_cl);
                let cg = read_model(&model, n_cl, self.vars.cg.len());
                out.push(Conf { pc, cl, cg, ecl, ecg });
            }
        }
        Ok(out)
    }

    /// Restricts one formal block of `f` to a concrete value: a single
    /// fused cube-cofactor traversal (the extractor pins a block per
    /// onion-peeling step, so this is a hot path).
    fn restrict_bits(&mut self, f: Bdd, block: BlockSel, value: u64) -> Bdd {
        let vars: Vec<Var> = match block {
            BlockSel::Pc => self.vars.pc.clone(),
            BlockSel::Cg => self.vars.cg.clone(),
            BlockSel::Ecl => self.vars.ecl.clone(),
            BlockSel::Ecg => self.vars.ecg.clone(),
        };
        let literals: Vec<(Var, bool)> =
            vars.iter().enumerate().map(|(i, &v)| (v, (value >> i) & 1 == 1)).collect();
        let m = self.solver.manager();
        m.restrict_many(f, &literals)
    }

    /// Bounded model enumeration of `f` over `over` (all other support
    /// must already be restricted away). Free (don't-care) bits are only
    /// enumerated where `expand` is `true`; the rest are pinned to `false`
    /// — sound whenever the pinned bits cannot influence the caller's use
    /// of the model, since every completion of a cube satisfies `f`.
    fn models(
        &self,
        f: Bdd,
        over: &[Var],
        expand: &[bool],
    ) -> Result<Vec<Vec<bool>>, WitnessError> {
        let cap = self.limits.max_states;
        let m = self.solver.manager_ref();
        let mut out = Vec::new();
        for cube in m.cubes(f) {
            let fixed: BTreeMap<u32, bool> = cube.iter().map(|&(v, b)| (v.0, b)).collect();
            let free: Vec<usize> = over
                .iter()
                .enumerate()
                .filter(|(i, v)| expand[*i] && !fixed.contains_key(&v.0))
                .map(|(i, _)| i)
                .collect();
            if free.len() >= usize::BITS as usize {
                return Err(WitnessError::Limit(cap));
            }
            let mut base: Vec<bool> =
                over.iter().map(|v| fixed.get(&v.0).copied().unwrap_or(false)).collect();
            for bits in 0..(1usize << free.len()) {
                for (j, &idx) in free.iter().enumerate() {
                    base[idx] = (bits >> j) & 1 == 1;
                }
                out.push(base.clone());
                if out.len() > cap {
                    return Err(WitnessError::Limit(cap));
                }
            }
        }
        out.sort();
        out.dedup();
        Ok(out)
    }
}

#[derive(Debug, Clone, Copy)]
enum BlockSel {
    Pc,
    Cg,
    Ecl,
    Ecg,
}

fn set_bits(env: &mut [bool], vars: &[Var], value: u64) {
    for (i, v) in vars.iter().enumerate() {
        env[v.level() as usize] = (value >> i) & 1 == 1;
    }
}

/// Decodes a variable block from a satisfying cube: bits absent from the
/// cube are don't-cares and read as `false` (the convention every decoder
/// in this crate uses, so all of them pick the *same* completion).
pub(crate) fn read_bits(cube: &[(Var, bool)], vars: &[Var]) -> u64 {
    let mut out = 0u64;
    for (i, v) in vars.iter().enumerate() {
        if cube.iter().any(|&(cv, b)| cv == *v && b) {
            out |= 1 << i;
        }
    }
    out
}

fn read_model(model: &[bool], offset: usize, width: usize) -> Bits {
    let mut out = 0u64;
    for i in 0..width {
        if model[offset + i] {
            out |= 1 << i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::parse_program;
    use getafix_mucalc::parse_system;

    fn toy_cfg() -> Cfg {
        let program = parse_program(
            r#"
            decl g;
            main() begin
              g := T;
              if (g) then HIT: skip; fi;
            end
            "#,
        )
        .unwrap();
        Cfg::build(&program).unwrap()
    }

    /// A solver whose system mimics the summary relations in *name* but
    /// not in shape must produce a [`WitnessError`], never a panic —
    /// the regression for the old `Conf field `{name}` missing` abort.
    #[test]
    fn system_solver_mismatch_is_an_error_not_a_panic() {
        let cfg = toy_cfg();
        let target = cfg.label("HIT").unwrap();
        let limits = WitnessLimits::default();
        let options = SolveOptions { record_provenance: true, ..SolveOptions::default() };

        // `Reachable` exists but its configuration type has no Conf fields.
        let src = r#"
            type Conf = struct { b: bool };
            mu Reachable(s: Conf) := Reachable(s);
            query reach := exists s: Conf. Reachable(s);
        "#;
        let system = parse_system(src).unwrap();
        let mut solver = Solver::with_options(system, options.clone()).unwrap();
        let err =
            sequential_witness_from(&mut solver, &cfg, &[target], limits.clone()).unwrap_err();
        assert!(
            matches!(&err, WitnessError::Solve(m) if m.contains("no `pc` field")),
            "wrong error: {err}"
        );

        // `SummaryEFopt` exists but with too few formals for the
        // extractor's `(fr, s)` shape.
        let src = r#"
            type Conf = struct { b: bool };
            mu SummaryEFopt(s: Conf) := SummaryEFopt(s);
            query reach := exists s: Conf. SummaryEFopt(s);
        "#;
        let system = parse_system(src).unwrap();
        let mut solver = Solver::with_options(system, options).unwrap();
        let err = sequential_witness_from(&mut solver, &cfg, &[target], limits).unwrap_err();
        assert!(
            matches!(&err, WitnessError::Solve(m) if m.contains("formal parameters")),
            "wrong error: {err}"
        );
    }
}
