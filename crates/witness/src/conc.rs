//! Concurrent witness extraction: a bounded-round *schedule* out of the
//! solved §5.1 `Reach` relation — like the sequential path, evidence from
//! the **verdict solver itself**, never a second solve.
//!
//! A `Reach` tuple already carries the whole interleaving skeleton: the
//! per-context active threads `t̄ = t0 … tk` and the shared-global
//! valuations `ḡ = g1 … gk` recorded at each context switch — provenance
//! baked into the relation, so no rank snapshots are required here.
//! Extraction is a single constrained cube pick ([`Manager::sat_one`]) on
//! `Reach ∧ Target(s.pc)` against the solver's memoized interpretation
//! ([`concurrent_witness_from`]), followed by decoding. The result is the
//! concurrency analogue of a trace: it resolves every *scheduler* choice,
//! and the explicit engine replays the intra-round steps
//! ([`getafix_conc::conc_replay_schedule`]).

use crate::seq::{read_bits, WitnessError};
use crate::trace::{ConcTrace, Round, Schedule};
use getafix_bdd::{Bdd, Var};
use getafix_boolprog::Pc;
use getafix_conc::{
    build_conc_solver_with, conc_refine_schedule, conc_replay_guided, ConcExplicitError,
    ConcLimits, Merged,
};
use getafix_mucalc::{eq_const, SolveOptions, Solver};

/// Extracts a schedule reaching `targets` within `switches` context
/// switches, or `None` when unreachable.
///
/// The schedule is structurally validated ([`Schedule::is_well_formed`])
/// before being returned; full semantic validation — replaying it in the
/// explicit engine — is the caller's choice, because it materializes
/// stacks and so only terminates for finite-recursion programs (the
/// symbolic engine has no such limit).
///
/// # Errors
///
/// See [`WitnessError`].
pub fn concurrent_witness(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
    options: SolveOptions,
) -> Result<Option<Schedule>, WitnessError> {
    guard_width(merged)?;
    let mut solver = build_conc_solver_with(merged, targets, switches, options)
        .map_err(|e| WitnessError::Solve(e.to_string()))?;
    concurrent_witness_from(&mut solver, merged, targets, switches)
}

/// As [`concurrent_witness`], but extracting from an **already-built**
/// solver (see [`getafix_conc::build_conc_solver_with`]) — when the
/// verdict was just computed, `Reach` is memoized and extraction costs a
/// single cube pick instead of a second fixpoint solve.
///
/// # Errors
///
/// See [`WitnessError`].
pub fn concurrent_witness_from(
    solver: &mut Solver,
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
) -> Result<Option<Schedule>, WitnessError> {
    let mut span = getafix_telemetry::span(getafix_telemetry::Phase::Witness, "concurrent_witness");
    if span.is_recording() {
        span.attr("targets", targets.len());
        span.attr("switches", switches);
    }
    guard_width(merged)?;
    let reach = solver.evaluate("Reach").map_err(|e| WitnessError::Solve(e.to_string()))?;

    // Constrain s.pc to the target set.
    let pc_vars: Vec<Var> = {
        let s = solver.alloc().formal("Reach", 0).clone();
        s.leaves_under(&["pc".to_string()])
            .first()
            .ok_or_else(|| WitnessError::Internal("Conf field `pc` missing".into()))?
            .vars
            .clone()
    };
    let hit = {
        let m = solver.manager();
        let mut t = Bdd::FALSE;
        for &pc in targets {
            let p = eq_const(m, &pc_vars, pc as u64);
            t = m.or(t, p);
        }
        m.and(reach, t)
    };
    if hit.is_false() {
        return Ok(None);
    }
    let cube = solver
        .manager()
        .sat_one(hit)
        .ok_or_else(|| WitnessError::Internal("non-empty set yielded no cube".into()))?;

    let leaf_value = |solver: &Solver, formal: usize, path: &[&str]| -> Result<u64, WitnessError> {
        let inst = solver.alloc().formal("Reach", formal).clone();
        let path: Vec<String> = path.iter().map(ToString::to_string).collect();
        let leaf = inst
            .leaves_under(&path)
            .first()
            .map(|l| l.vars.clone())
            .ok_or_else(|| WitnessError::Internal(format!("leaf {path:?} missing")))?;
        Ok(read_bits(&cube, &leaf))
    };

    // Formals: s: Conf, ecs: CS, cs: CS, gs: GVec, ts: TVec.
    let target_pc = leaf_value(solver, 0, &["pc"])? as Pc;
    let ecs = leaf_value(solver, 1, &[])? as usize;
    let cs = leaf_value(solver, 2, &[])? as usize;
    if cs > switches || ecs > cs {
        return Err(WitnessError::Internal(format!(
            "decoded tuple violates the bound: ecs={ecs}, cs={cs}, k={switches}"
        )));
    }
    let mut rounds = Vec::with_capacity(cs + 1);
    for j in 0..=cs {
        let thread = leaf_value(solver, 4, &[&format!("t{j}")])? as usize;
        let globals_at_entry = if j == 0 { 0 } else { leaf_value(solver, 3, &[&format!("g{j}")])? };
        rounds.push(Round { thread, globals_at_entry });
    }
    let schedule = Schedule { rounds, bound: switches, target: target_pc };
    if !schedule.is_well_formed(merged.n_threads) {
        return Err(WitnessError::Internal(format!(
            "extracted schedule is malformed: {schedule:?}"
        )));
    }
    Ok(Some(schedule))
}

/// Extracts a **statement-granular** concurrent witness: the schedule of
/// [`concurrent_witness`] refined into an explicit interleaved step
/// sequence (every scheduler choice and every nondeterministic value
/// pinned), validated by the deterministic guided replayer before being
/// returned. Returns `None` when the target is unreachable.
///
/// The refinement materializes call stacks, so programs whose witnesses
/// need unbounded recursion exceed `limits` —
/// [`WitnessError::Limit`] — and callers should degrade to the
/// round-level [`Schedule`] (the CLI does).
///
/// # Errors
///
/// See [`WitnessError`].
pub fn concurrent_trace(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
    options: SolveOptions,
    limits: ConcLimits,
) -> Result<Option<ConcTrace>, WitnessError> {
    match concurrent_witness(merged, targets, switches, options)? {
        None => Ok(None),
        Some(schedule) => {
            concurrent_trace_from_schedule(merged, targets, &schedule, limits).map(Some)
        }
    }
}

/// Refines an already-extracted [`Schedule`] into a [`ConcTrace`]: the
/// explicit engine searches *within* the schedule's script
/// ([`getafix_conc::conc_refine_schedule`]) for the statement-granular
/// interleaving, and the result must survive deterministic guided replay
/// ([`getafix_conc::conc_replay_guided`]) — an extracted trace is
/// evidence, not a claim.
///
/// # Errors
///
/// [`WitnessError::Limit`] when the explicit refinement exceeds its state
/// or stack budget (unbounded recursion), [`WitnessError::Internal`] when
/// the schedule does not refine or the refined script fails guided replay
/// (both extractor bugs, kept dead by the differential suites).
pub fn concurrent_trace_from_schedule(
    merged: &Merged,
    targets: &[Pc],
    schedule: &Schedule,
    limits: ConcLimits,
) -> Result<ConcTrace, WitnessError> {
    let _span = getafix_telemetry::span(getafix_telemetry::Phase::Witness, "refine_schedule");
    let rounds = schedule.to_replay();
    let refined = conc_refine_schedule(merged, targets, &rounds, limits.clone())
        .map_err(map_explicit)?
        .ok_or_else(|| {
            WitnessError::Internal(format!(
                "extracted schedule does not refine into statement steps \
                 (infeasible under the explicit semantics): {schedule:?}"
            ))
        })?;
    conc_replay_guided(merged, targets, &rounds, &refined.steps, limits)
        .map_err(|e| WitnessError::Internal(format!("refined trace failed guided replay: {e}")))?;
    Ok(ConcTrace::from_guided(schedule.clone(), &refined.steps))
}

/// Explicit-engine failures as witness errors: resource exhaustion keeps
/// its budget (callers degrade on it), everything else is internal.
fn map_explicit(e: ConcExplicitError) -> WitnessError {
    match e {
        ConcExplicitError::StateLimit(n) | ConcExplicitError::StackLimit(n) => {
            WitnessError::Limit(n)
        }
        ConcExplicitError::ResourceLimit { kind, .. } => WitnessError::ResourceLimit(kind),
        ConcExplicitError::TooManyVariables(m) => WitnessError::TooManyVariables(m),
        other => WitnessError::Internal(other.to_string()),
    }
}

/// Schedule decoding packs the shared globals into a `u64`
/// ([`getafix_boolprog::Bits`]); wider programs solve symbolically but
/// cannot be decoded (or replayed explicitly).
fn guard_width(merged: &Merged) -> Result<(), WitnessError> {
    if merged.cfg.globals.len() > 64 {
        return Err(WitnessError::TooManyVariables(format!(
            "{} merged globals exceed the 64-bit schedule frame",
            merged.cfg.globals.len()
        )));
    }
    Ok(())
}
