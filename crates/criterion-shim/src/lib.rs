//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The workspace builds without network access, so the real crate cannot be
//! fetched. This shim keeps the same call shapes the benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! `bench_function`, `finish`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — and implements them as a plain wall-clock
//! harness: per benchmark it runs one warm-up iteration, then `sample_size`
//! timed iterations, and prints min / mean / max.
//!
//! Use `CRITERION_SAMPLE_SIZE=<n>` to globally cap sample counts (handy in
//! CI where the statistical quality of the original is not needed).

use std::time::{Duration, Instant};

/// Per-iteration timing callback target.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `budget` runs of `f` (after one warm-up run).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.budget {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn env_sample_cap() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE").ok().and_then(|v| v.parse().ok())
}

fn report(group: &str, name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    println!(
        "{group}/{name}: [{:>10.4?} {:>10.4?} {:>10.4?}]  ({} samples)",
        min,
        mean,
        max,
        samples.len()
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let budget = env_sample_cap().unwrap_or(self.sample_size).max(1);
        let mut b = Bencher { samples: Vec::new(), budget };
        f(&mut b);
        report(&self.name, &name, &b.samples);
        self
    }

    /// Ends the group (prints nothing; kept for API parity).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 { 20 } else { self.default_sample_size };
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Groups benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
