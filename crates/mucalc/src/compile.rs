//! Compilation of formulae to BDDs.
//!
//! Given the current interpretation of every relation, a formula compiles to
//! a BDD over the variables of the instances in scope. Compilation mirrors
//! the checker's traversal exactly, so binder sequence numbers line up with
//! the allocation plan.

use crate::alloc::{eq_const, eq_vars, lt_const, lt_vars, Allocation, BinderCounter, Instance};
use crate::ast::{CmpOp, Formula, Term};
use crate::solve::SolveError;
use crate::system::System;
use getafix_bdd::{Bdd, Manager, Var, VarMap};
use std::collections::BTreeMap;

/// One allocated leaf of a term: its BDD variables (LSB first) plus the
/// `range` bound, if any.
type TermLeaf = (Vec<Var>, Option<u64>);

/// Compilation context: one formula body, one scope.
pub(crate) struct CompileCtx<'a> {
    pub manager: &'a mut Manager,
    pub system: &'a System,
    pub alloc: &'a Allocation,
    /// Interpretation of every relation that may be applied.
    pub interp: &'a BTreeMap<String, Bdd>,
    /// Binder numbering for the body being compiled.
    pub counter: BinderCounter,
    /// In-scope variables: name -> instance id (shadowing via later wins).
    pub scope: Vec<(String, usize)>,
    /// Instances by id (borrowed views created on demand).
    pub instances: BTreeMap<usize, Instance>,
}

impl<'a> CompileCtx<'a> {
    pub(crate) fn new(
        manager: &'a mut Manager,
        system: &'a System,
        alloc: &'a Allocation,
        interp: &'a BTreeMap<String, Bdd>,
        owner: String,
    ) -> Self {
        Self::with_binder_offset(manager, system, alloc, interp, owner, 0)
    }

    /// As [`CompileCtx::new`], but resuming binder numbering at `offset` —
    /// for compiling a top-level disjunct in isolation (the worklist
    /// engine's semi-naive path).
    pub(crate) fn with_binder_offset(
        manager: &'a mut Manager,
        system: &'a System,
        alloc: &'a Allocation,
        interp: &'a BTreeMap<String, Bdd>,
        owner: String,
        offset: usize,
    ) -> Self {
        CompileCtx {
            manager,
            system,
            alloc,
            interp,
            counter: BinderCounter::new_at(owner, offset),
            scope: Vec::new(),
            instances: BTreeMap::new(),
        }
    }

    pub(crate) fn bind(&mut self, name: &str, inst: Instance) {
        self.instances.insert(inst.id, inst.clone());
        self.scope.push((name.to_string(), inst.id));
    }

    fn lookup(&self, name: &str) -> Result<&Instance, SolveError> {
        let id = self
            .scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .ok_or_else(|| SolveError::Internal(format!("unbound variable `{name}`")))?;
        Ok(&self.instances[&id])
    }

    /// The allocated leaves a term denotes, in flattening order.
    fn term_leaves(&self, term: &Term) -> Result<Vec<TermLeaf>, SolveError> {
        match term {
            Term::Int(_) => Err(SolveError::Internal("term_leaves on an integer".into())),
            Term::Var { name, path } => {
                let inst = self.lookup(name)?;
                let leaves = inst.leaves_under(path);
                if leaves.is_empty() {
                    return Err(SolveError::Internal(format!(
                        "term `{term}` resolves to no leaves"
                    )));
                }
                Ok(leaves.into_iter().map(|l| (l.vars.clone(), l.leaf.bound)).collect())
            }
        }
    }

    /// Compiles `f` to a BDD.
    pub(crate) fn compile(&mut self, f: &Formula) -> Result<Bdd, SolveError> {
        match f {
            Formula::Const(b) => Ok(self.manager.constant(*b)),
            Formula::Atom(t) => {
                let leaves = self.term_leaves(t)?;
                let (vars, _) = &leaves[0];
                Ok(self.manager.var(vars[0]))
            }
            Formula::Cmp(a, op, b) => self.compile_cmp(a, *op, b),
            Formula::App(name, args) => self.compile_app(name, args),
            Formula::Not(g) => {
                let x = self.compile(g)?;
                Ok(self.manager.not(x))
            }
            Formula::And(gs) => {
                let mut acc = Bdd::TRUE;
                for g in gs {
                    // Binder numbering must visit every conjunct, so no
                    // short-circuit skipping of subtrees with binders.
                    let x = self.compile(g)?;
                    acc = self.manager.and(acc, x);
                }
                Ok(acc)
            }
            Formula::Or(gs) => {
                let mut acc = Bdd::FALSE;
                for g in gs {
                    let x = self.compile(g)?;
                    acc = self.manager.or(acc, x);
                }
                Ok(acc)
            }
            Formula::Implies(a, b) => {
                let x = self.compile(a)?;
                let y = self.compile(b)?;
                Ok(self.manager.implies(x, y))
            }
            Formula::Iff(a, b) => {
                let x = self.compile(a)?;
                let y = self.compile(b)?;
                Ok(self.manager.iff(x, y))
            }
            Formula::Exists(binders, g) => {
                let (cube, domain) = self.enter_binders(binders)?;
                let body = self.compile_quant_body(g, binders.len())?;
                let r = self.manager.and_exists(domain, body, cube);
                Ok(r)
            }
            Formula::Forall(binders, g) => {
                // ∀x. φ  ≡  ¬∃x. domain(x) ∧ ¬φ
                let (cube, domain) = self.enter_binders(binders)?;
                let body = self.compile_quant_body(g, binders.len())?;
                let nbody = self.manager.not(body);
                let e = self.manager.and_exists(domain, nbody, cube);
                Ok(self.manager.not(e))
            }
        }
    }

    /// Binds the quantifier variables and returns (cube of their vars,
    /// conjunction of their domain constraints).
    fn enter_binders(
        &mut self,
        binders: &[(String, crate::types::Type)],
    ) -> Result<(Bdd, Bdd), SolveError> {
        let mut vars = Vec::new();
        let mut domain = Bdd::TRUE;
        for (name, _) in binders {
            let inst = self.counter.take(self.alloc).clone();
            vars.extend(inst.all_vars());
            let d = self.alloc.domain(&inst);
            domain = self.manager.and(domain, d);
            self.bind(name, inst);
        }
        let cube = self.manager.cube(&vars);
        Ok((cube, domain))
    }

    fn compile_quant_body(&mut self, g: &Formula, nbinders: usize) -> Result<Bdd, SolveError> {
        let r = self.compile(g);
        for _ in 0..nbinders {
            self.scope.pop();
        }
        r
    }

    fn compile_cmp(&mut self, a: &Term, op: CmpOp, b: &Term) -> Result<Bdd, SolveError> {
        let base = match (a, b) {
            (Term::Int(_), Term::Int(_)) => {
                return Err(SolveError::Internal("comparison of two literals".into()))
            }
            (Term::Int(v), t) | (t, Term::Int(v)) => {
                // Scalar vs constant. For Lt/Le the orientation matters.
                let leaves = self.term_leaves(t)?;
                let (vars, _) = &leaves[0];
                match op {
                    CmpOp::Eq | CmpOp::Ne => eq_const(self.manager, vars, *v),
                    CmpOp::Lt | CmpOp::Le => {
                        let int_on_left = matches!(a, Term::Int(_));
                        self.cmp_const(vars, *v, op, int_on_left)
                    }
                }
            }
            (ta, tb) => {
                let la = self.term_leaves(ta)?;
                let lb = self.term_leaves(tb)?;
                if la.len() != lb.len() {
                    return Err(SolveError::Internal(format!(
                        "shape mismatch comparing `{ta}` and `{tb}`"
                    )));
                }
                match op {
                    CmpOp::Eq | CmpOp::Ne => {
                        let mut acc = Bdd::TRUE;
                        for ((va, _), (vb, _)) in la.iter().zip(&lb) {
                            let eq = eq_vars(self.manager, va, vb);
                            acc = self.manager.and(acc, eq);
                        }
                        acc
                    }
                    CmpOp::Lt => lt_vars(self.manager, &la[0].0, &lb[0].0),
                    CmpOp::Le => {
                        let lt = lt_vars(self.manager, &la[0].0, &lb[0].0);
                        let eq = eq_vars(self.manager, &la[0].0, &lb[0].0);
                        self.manager.or(lt, eq)
                    }
                }
            }
        };
        Ok(match op {
            CmpOp::Ne => self.manager.not(base),
            _ => base,
        })
    }

    /// `vars OP const` (or `const OP vars` when `int_on_left`).
    fn cmp_const(&mut self, vars: &[Var], v: u64, op: CmpOp, int_on_left: bool) -> Bdd {
        match (op, int_on_left) {
            (CmpOp::Lt, false) => lt_const(self.manager, vars, v),
            (CmpOp::Le, false) => lt_const(self.manager, vars, v.saturating_add(1)),
            (CmpOp::Lt, true) => {
                // v < vars  ≡  ¬(vars <= v)  ≡  ¬(vars < v+1)
                let le = lt_const(self.manager, vars, v.saturating_add(1));
                self.manager.not(le)
            }
            (CmpOp::Le, true) => {
                // v <= vars  ≡  ¬(vars < v)
                let lt = lt_const(self.manager, vars, v);
                self.manager.not(lt)
            }
            _ => unreachable!("cmp_const called with equality"),
        }
    }

    /// Relation application: rename the stored interpretation from the
    /// formals onto the argument variables. Duplicate argument targets are
    /// routed through scratch columns.
    fn compile_app(&mut self, name: &str, args: &[Term]) -> Result<Bdd, SolveError> {
        let stored = *self
            .interp
            .get(name)
            .ok_or_else(|| SolveError::MissingInterpretation(name.to_string()))?;
        let nparams = self.system.relation(name).map(|r| r.params.len()).unwrap_or(0);
        debug_assert_eq!(nparams, args.len());

        let mut pairs: Vec<(Var, Var)> = Vec::new();
        let mut used_targets: std::collections::HashSet<u32> = std::collections::HashSet::new();
        // (scratch vars, target vars, target const) equalities to conjoin,
        // and scratch vars to quantify away afterwards.
        let mut scratch_eqs: Vec<(Vec<Var>, ScratchTarget)> = Vec::new();
        let mut scratch_used: BTreeMap<String, usize> = BTreeMap::new();

        for (i, arg) in args.iter().enumerate() {
            let formal = self.alloc.formal(name, i).clone();
            match arg {
                Term::Int(v) => {
                    // Constant argument: constrain the formal's (single)
                    // leaf to the constant, via scratch so the stored
                    // relation is restricted, then quantified.
                    let leaf = &formal.leaves[0];
                    let col = self.take_scratch(&leaf.leaf.channel, &mut scratch_used)?;
                    pairs.extend(leaf.vars.iter().copied().zip(col.iter().copied()));
                    scratch_eqs.push((col, ScratchTarget::Const(*v)));
                }
                Term::Var { .. } => {
                    let arg_leaves = self.term_leaves(arg)?;
                    if arg_leaves.len() != formal.leaves.len() {
                        return Err(SolveError::Internal(format!(
                            "arity shape mismatch applying `{name}`"
                        )));
                    }
                    // Collision check across the whole argument.
                    let collides = arg_leaves
                        .iter()
                        .flat_map(|(vs, _)| vs.iter())
                        .any(|v| used_targets.contains(&v.level()));
                    if collides {
                        for (leaf, (tvars, _)) in formal.leaves.iter().zip(&arg_leaves) {
                            let col = self.take_scratch(&leaf.leaf.channel, &mut scratch_used)?;
                            pairs.extend(leaf.vars.iter().copied().zip(col.iter().copied()));
                            scratch_eqs.push((col, ScratchTarget::Vars(tvars.clone())));
                        }
                    } else {
                        for (leaf, (tvars, _)) in formal.leaves.iter().zip(&arg_leaves) {
                            if leaf.vars.len() != tvars.len() {
                                return Err(SolveError::Internal(format!(
                                    "width mismatch applying `{name}`"
                                )));
                            }
                            for (&from, &to) in leaf.vars.iter().zip(tvars) {
                                used_targets.insert(to.level());
                                pairs.push((from, to));
                            }
                        }
                    }
                }
            }
        }

        let map = VarMap::new(pairs);
        if scratch_eqs.is_empty() {
            return Ok(self.manager.rename(stored, &map));
        }
        let mut cube_vars = Vec::new();
        let mut eqs = Bdd::TRUE;
        for (svars, target) in &scratch_eqs {
            cube_vars.extend(svars.iter().copied());
            let eq = match target {
                ScratchTarget::Vars(t) => eq_vars(self.manager, svars, t),
                ScratchTarget::Const(v) => eq_const(self.manager, svars, *v),
            };
            eqs = self.manager.and(eqs, eq);
        }
        let cube = self.manager.cube(&cube_vars);
        // One fused image step: the renamed relation is never materialized
        // before the scratch equalities shrink it.
        Ok(self.manager.rename_and_exists(stored, &map, eqs, cube))
    }

    fn take_scratch(
        &mut self,
        channel: &str,
        used: &mut BTreeMap<String, usize>,
    ) -> Result<Vec<Var>, SolveError> {
        let idx = *used.get(channel).unwrap_or(&0);
        let cols = self.alloc.scratch_columns(channel);
        if idx >= cols.len() {
            return Err(SolveError::Internal(format!(
                "out of scratch columns for channel `{channel}` \
                 (more than {} duplicate arguments in one application)",
                cols.len()
            )));
        }
        used.insert(channel.to_string(), idx + 1);
        Ok(cols[idx].clone())
    }
}

enum ScratchTarget {
    Vars(Vec<Var>),
    Const(u64),
}
