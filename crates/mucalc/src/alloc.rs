//! BDD variable allocation for an equation system.
//!
//! Every *instance* — a relation formal parameter or a quantifier binder —
//! gets its own block of BDD variables. The allocator interleaves instances
//! **per channel** (channel = the named type of a leaf): bit `b` of every
//! instance of a channel sits next to bit `b` of every other instance. This
//! keeps the three operations the solver performs constantly *small*:
//!
//! * equality between two values of the same channel (`u = v`, `zpc = z.pc`)
//!   is a chain of adjacent-iff nodes — linear, never exponential;
//! * renaming a relation from its formals onto application arguments is a
//!   monotone map, a single cheap pass;
//! * ordered comparisons (`cs' <= cs`) stay linear for the same reason.
//!
//! This is the moral equivalent of the "allocation constraints" GETAFIX
//! computes for MUCKE (§6.1 of the paper): variables that interact are
//! placed together.

use crate::system::{System, SystemError};
use crate::types::{Leaf, Type};
use getafix_bdd::{Bdd, Manager, Var};
use std::collections::BTreeMap;

use crate::ast::Formula;

/// How many spare columns each channel reserves for duplicate-argument
/// rewriting (`R(u, u)` routes the second `u` through a scratch column).
const SCRATCH_COLUMNS: usize = 2;

/// One allocated leaf of an instance: its flattened type leaf plus the BDD
/// variables (LSB first) that carry it.
#[derive(Debug, Clone)]
pub struct LeafAlloc {
    /// The flattened type leaf (path, channel, width, bound).
    pub leaf: Leaf,
    /// The BDD variables carrying this leaf, LSB first.
    pub vars: Vec<Var>,
}

/// An allocated variable instance (relation formal or quantifier binder).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Dense instance id.
    pub id: usize,
    /// Declared type of the instance.
    pub ty: Type,
    /// Allocated leaves in flattening order.
    pub leaves: Vec<LeafAlloc>,
}

impl Instance {
    /// All BDD variables of the instance, in leaf order (LSB first within a
    /// leaf).
    pub fn all_vars(&self) -> Vec<Var> {
        self.leaves.iter().flat_map(|l| l.vars.iter().copied()).collect()
    }

    /// The leaves whose path starts with `prefix` (the whole instance for an
    /// empty prefix), in flattening order.
    pub fn leaves_under<'a>(&'a self, prefix: &[String]) -> Vec<&'a LeafAlloc> {
        self.leaves
            .iter()
            .filter(|l| l.leaf.path.len() >= prefix.len() && l.leaf.path[..prefix.len()] == *prefix)
            .collect()
    }

    /// Total bit width.
    pub fn width(&self) -> u32 {
        self.leaves.iter().map(|l| l.leaf.width).sum()
    }
}

/// Identifies who owns a binder sequence: a relation body or a query body.
pub(crate) fn owner_rel(name: &str) -> String {
    format!("rel:{name}")
}

pub(crate) fn owner_query(name: &str) -> String {
    format!("query:{name}")
}

/// The complete variable allocation for a system.
#[derive(Debug)]
pub struct Allocation {
    instances: Vec<Instance>,
    /// (relation name, param index) -> instance id.
    formals: BTreeMap<(String, usize), usize>,
    /// (owner, binder sequence number) -> instance id.
    binders: BTreeMap<(String, usize), usize>,
    /// channel -> scratch columns (each a `Vec<Var>` of the channel's width).
    scratch: BTreeMap<String, Vec<Vec<Var>>>,
    /// Per-instance domain constraints, built eagerly in [`Allocation::build`]
    /// and rebuilt (via `&mut self`) after a manager GC. Plain owned data —
    /// no interior mutability — so the allocation is `Send` and a worker
    /// thread can own a solver outright.
    domains: Vec<Bdd>,
}

impl Allocation {
    /// Plans and performs the allocation for `system` on `manager`.
    ///
    /// # Errors
    ///
    /// Propagates type-flattening errors (which `System::build` should have
    /// already ruled out).
    pub fn build(manager: &mut Manager, system: &System) -> Result<Allocation, SystemError> {
        let mut planner = Planner {
            system,
            instances: Vec::new(),
            formals: BTreeMap::new(),
            binders: BTreeMap::new(),
        };

        // 1. Relation formals.
        for rel in system.relations() {
            for (i, (_, ty)) in rel.params.iter().enumerate() {
                let id = planner.add_instance(ty)?;
                planner.formals.insert((rel.name.clone(), i), id);
            }
        }
        // 2. Quantifier binders, in the same preorder the compiler uses.
        for rel in system.relations() {
            if let Some(body) = &rel.body {
                planner.scan_binders(&owner_rel(&rel.name), body)?;
            }
        }
        for q in system.queries() {
            planner.scan_binders(&owner_query(&q.name), &q.body)?;
        }

        // 3. Group leaves by channel and hand out interleaved levels.
        let Planner { instances: planned, formals, binders, .. } = planner;
        // channel -> list of (instance id, leaf index)
        let mut channels: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        let mut channel_order: Vec<String> = Vec::new();
        for (iid, leaves) in planned.iter().enumerate() {
            for (lidx, leaf) in leaves.1.iter().enumerate() {
                let entry = channels.entry(leaf.channel.clone()).or_insert_with(|| {
                    channel_order.push(leaf.channel.clone());
                    Vec::new()
                });
                entry.push((iid, lidx));
            }
        }

        let mut assigned: BTreeMap<(usize, usize), Vec<Var>> = BTreeMap::new();
        let mut scratch: BTreeMap<String, Vec<Vec<Var>>> = BTreeMap::new();
        for chan in &channel_order {
            let members = &channels[chan];
            let width = planned[members[0].0].1[members[0].1].width as usize;
            let ncols = members.len() + SCRATCH_COLUMNS;
            // Interleave: for each bit, one var per column.
            let block = manager.new_vars(width * ncols);
            for (col, &(iid, lidx)) in members.iter().enumerate() {
                let vars: Vec<Var> = (0..width).map(|b| block[b * ncols + col]).collect();
                assigned.insert((iid, lidx), vars);
            }
            let cols = (0..SCRATCH_COLUMNS)
                .map(|s| {
                    (0..width).map(|b| block[b * ncols + members.len() + s]).collect::<Vec<Var>>()
                })
                .collect();
            scratch.insert(chan.clone(), cols);
        }

        // 4. Materialize instances.
        let instances: Vec<Instance> = planned
            .into_iter()
            .enumerate()
            .map(|(iid, (ty, leaves))| Instance {
                id: iid,
                ty,
                leaves: leaves
                    .into_iter()
                    .enumerate()
                    .map(|(lidx, leaf)| LeafAlloc {
                        vars: assigned.remove(&(iid, lidx)).expect("planned leaf"),
                        leaf,
                    })
                    .collect(),
            })
            .collect();

        let mut alloc = Allocation { instances, formals, binders, scratch, domains: Vec::new() };
        alloc.rebuild_domains(manager);
        Ok(alloc)
    }

    /// The instance of formal parameter `i` of relation `rel`.
    ///
    /// # Panics
    ///
    /// Panics if the relation/parameter does not exist.
    pub fn formal(&self, rel: &str, i: usize) -> &Instance {
        let id = self.formals[&(rel.to_string(), i)];
        &self.instances[id]
    }

    /// The instance for binder number `seq` of `owner`.
    pub(crate) fn binder(&self, owner: &str, seq: usize) -> &Instance {
        let id = self.binders[&(owner.to_string(), seq)];
        &self.instances[id]
    }

    /// Scratch columns for a channel.
    pub(crate) fn scratch_columns(&self, channel: &str) -> &[Vec<Var>] {
        self.scratch.get(channel).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The domain constraint of an instance: every `range n` leaf holds a
    /// value `< n`. Precomputed in [`Allocation::build`], so this is a
    /// pure read.
    pub fn domain(&self, inst: &Instance) -> Bdd {
        self.domains[inst.id]
    }

    /// Recomputes every instance's domain constraint on `manager`. Called
    /// once at construction and again after a manager GC, when the stored
    /// handles may point at reclaimed nodes. The constraints are cheap
    /// `lt_const` chains that hash-cons straight back into the (compacted)
    /// arena.
    pub(crate) fn rebuild_domains(&mut self, manager: &mut Manager) {
        self.domains.clear();
        self.domains.reserve(self.instances.len());
        for inst in &self.instances {
            let mut acc = Bdd::TRUE;
            for leaf in &inst.leaves {
                if let Some(bound) = leaf.leaf.bound {
                    let lt = lt_const(manager, &leaf.vars, bound);
                    acc = manager.and(acc, lt);
                }
            }
            self.domains.push(acc);
        }
    }

    /// Number of allocated instances (diagnostics).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

/// Builds the BDD for `bits < bound` (unsigned, LSB-first `bits`).
pub fn lt_const(manager: &mut Manager, bits: &[Var], bound: u64) -> Bdd {
    if bound == 0 {
        return Bdd::FALSE;
    }
    if bits.len() < 64 && bound >= (1u64 << bits.len()) {
        return Bdd::TRUE;
    }
    // MSB-down comparison: value < bound iff at the highest differing bit,
    // value has 0 where bound has 1.
    let mut acc = Bdd::FALSE; // strictly-less so equality fails
    for (i, &v) in bits.iter().enumerate() {
        // Process LSB..MSB; rebuild acc so that after processing bit i, acc
        // compares the low i+1 bits.
        let b = (bound >> i) & 1 == 1;
        let lit = manager.var(v);
        acc = if b {
            // value_i < bound_i (0<1) makes low bits irrelevant; equal (1=1)
            // defers to lower bits.
            let nv = manager.not(lit);
            manager.or(nv, acc)
        } else {
            // bound_i = 0: value_i must be 0 and lower bits decide.
            let nv = manager.not(lit);
            manager.and(nv, acc)
        };
    }
    acc
}

/// Builds the BDD for the constant value `value` on `bits` (LSB-first).
pub fn eq_const(manager: &mut Manager, bits: &[Var], value: u64) -> Bdd {
    let mut acc = Bdd::TRUE;
    for (i, &v) in bits.iter().enumerate() {
        let bit = (value >> i) & 1 == 1;
        let lit = manager.literal(v, bit);
        acc = manager.and(acc, lit);
    }
    acc
}

/// Builds the BDD for bitwise equality of two equal-length variable blocks.
pub fn eq_vars(manager: &mut Manager, a: &[Var], b: &[Var]) -> Bdd {
    assert_eq!(a.len(), b.len(), "eq_vars: width mismatch");
    let mut acc = Bdd::TRUE;
    for (&x, &y) in a.iter().zip(b) {
        let fx = manager.var(x);
        let fy = manager.var(y);
        let eq = manager.iff(fx, fy);
        acc = manager.and(acc, eq);
    }
    acc
}

/// Builds the BDD for `a < b` over two equal-length unsigned blocks
/// (LSB-first).
pub fn lt_vars(manager: &mut Manager, a: &[Var], b: &[Var]) -> Bdd {
    assert_eq!(a.len(), b.len(), "lt_vars: width mismatch");
    let mut acc = Bdd::FALSE;
    for (&x, &y) in a.iter().zip(b) {
        // LSB..MSB: higher bits dominate, so fold as
        // acc' = (x<y) ∨ ((x=y) ∧ acc)
        let fx = manager.var(x);
        let fy = manager.var(y);
        let nx = manager.not(fx);
        let lt = manager.and(nx, fy);
        let eq = manager.iff(fx, fy);
        let keep = manager.and(eq, acc);
        acc = manager.or(lt, keep);
    }
    acc
}

struct Planner<'a> {
    system: &'a System,
    /// Planned instances: (type, flattened leaves).
    instances: Vec<(Type, Vec<Leaf>)>,
    formals: BTreeMap<(String, usize), usize>,
    binders: BTreeMap<(String, usize), usize>,
}

impl Planner<'_> {
    fn add_instance(&mut self, ty: &Type) -> Result<usize, SystemError> {
        let leaves = self.system.types().flatten(ty)?;
        let id = self.instances.len();
        self.instances.push((ty.clone(), leaves));
        Ok(id)
    }

    /// Assigns binder sequence numbers in the exact preorder the compiler
    /// will replay.
    fn scan_binders(&mut self, owner: &str, f: &Formula) -> Result<(), SystemError> {
        let mut seq = 0usize;
        self.scan_rec(owner, f, &mut seq)
    }

    fn scan_rec(&mut self, owner: &str, f: &Formula, seq: &mut usize) -> Result<(), SystemError> {
        match f {
            Formula::Const(_) | Formula::Atom(_) | Formula::Cmp(..) | Formula::App(..) => Ok(()),
            Formula::Not(g) => self.scan_rec(owner, g, seq),
            Formula::And(gs) | Formula::Or(gs) => {
                for g in gs {
                    self.scan_rec(owner, g, seq)?;
                }
                Ok(())
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                self.scan_rec(owner, a, seq)?;
                self.scan_rec(owner, b, seq)
            }
            Formula::Exists(binders, g) | Formula::Forall(binders, g) => {
                for (_, ty) in binders {
                    let id = self.add_instance(ty)?;
                    self.binders.insert((owner.to_string(), *seq), id);
                    *seq += 1;
                }
                self.scan_rec(owner, g, seq)
            }
        }
    }
}

/// Re-export used by the solver to keep binder numbering in one place.
#[derive(Debug)]
pub(crate) struct BinderCounter {
    owner: String,
    next: usize,
}

impl BinderCounter {
    /// A counter starting at binder sequence number `start` (0 for a whole
    /// body; the disjunct's preorder offset when the worklist engine
    /// compiles a top-level disjunct on its own).
    pub(crate) fn new_at(owner: String, start: usize) -> Self {
        BinderCounter { owner, next: start }
    }

    pub(crate) fn take<'a>(&mut self, alloc: &'a Allocation) -> &'a Instance {
        let inst = alloc.binder(&self.owner, self.next);
        self.next += 1;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use crate::system::System;

    fn small_system() -> System {
        let mut b = System::builder();
        b.declare_type("S", Type::Bits(3)).unwrap();
        b.input("Init", vec![("s".into(), Type::named("S"))]);
        b.input("Trans", vec![("s".into(), Type::named("S")), ("t".into(), Type::named("S"))]);
        b.define(
            "Reach",
            vec![("u".into(), Type::named("S"))],
            Formula::or(vec![
                Formula::app("Init", vec![Term::var("u")]),
                Formula::exists(
                    vec![("x".into(), Type::named("S"))],
                    Formula::and(vec![
                        Formula::app("Reach", vec![Term::var("x")]),
                        Formula::app("Trans", vec![Term::var("x"), Term::var("u")]),
                    ]),
                ),
            ]),
        );
        b.build().unwrap()
    }

    #[test]
    fn interleaved_channel_allocation() {
        let sys = small_system();
        let mut m = Manager::new();
        let alloc = Allocation::build(&mut m, &sys).unwrap();
        // Instances: Init.s, Trans.s, Trans.t, Reach.u, binder x = 5 of
        // channel S (width 3) + 2 scratch = 7 columns * 3 bits = 21 vars.
        assert_eq!(alloc.instance_count(), 5);
        assert_eq!(m.var_count(), 21);
        // Bit b of instance i is at level b*7 + column(i).
        let init_s = alloc.formal("Init", 0);
        let trans_t = alloc.formal("Trans", 1);
        let vs = &init_s.leaves[0].vars;
        let vt = &trans_t.leaves[0].vars;
        assert_eq!(vs.len(), 3);
        // Same bit of different instances must be closer than different bits
        // of the same instance (interleaving).
        let gap_same_bit = (vt[0].level() as i64 - vs[0].level() as i64).unsigned_abs();
        let gap_next_bit = (vs[1].level() as i64 - vs[0].level() as i64).unsigned_abs();
        assert!(gap_same_bit < gap_next_bit);
    }

    #[test]
    fn scratch_columns_exist() {
        let sys = small_system();
        let mut m = Manager::new();
        let alloc = Allocation::build(&mut m, &sys).unwrap();
        let cols = alloc.scratch_columns("S");
        assert_eq!(cols.len(), SCRATCH_COLUMNS);
        assert_eq!(cols[0].len(), 3);
    }

    #[test]
    fn domain_constraints_for_range() {
        let mut b = System::builder();
        b.declare_type("PC", Type::Range(5)).unwrap();
        b.input("I", vec![("p".into(), Type::named("PC"))]);
        let sys = b.build().unwrap();
        let mut m = Manager::new();
        let alloc = Allocation::build(&mut m, &sys).unwrap();
        let inst = alloc.formal("I", 0).clone();
        let d = alloc.domain(&inst);
        // 3 bits, constraint value < 5 → 5 models.
        assert_eq!(m.sat_count(d, m.var_count()), 5.0 * 2f64.powi(m.var_count() as i32 - 3));
    }

    #[test]
    fn lt_const_truth() {
        let mut m = Manager::new();
        let bits = m.new_vars(3);
        let f = lt_const(&mut m, &bits, 5);
        for v in 0..8u64 {
            let env: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(m.eval(f, &env), v < 5, "value {v}");
        }
        assert_eq!(lt_const(&mut m, &bits, 0), Bdd::FALSE);
    }

    #[test]
    fn eq_const_truth() {
        let mut m = Manager::new();
        let bits = m.new_vars(3);
        let f = eq_const(&mut m, &bits, 6);
        for v in 0..8u64 {
            let env: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(m.eval(f, &env), v == 6, "value {v}");
        }
    }

    #[test]
    fn lt_vars_truth() {
        let mut m = Manager::new();
        let a = m.new_vars(2);
        let b = m.new_vars(2);
        let f = lt_vars(&mut m, &a, &b);
        for x in 0..4u64 {
            for y in 0..4u64 {
                let mut env = vec![false; 4];
                for i in 0..2 {
                    env[a[i].level() as usize] = (x >> i) & 1 == 1;
                    env[b[i].level() as usize] = (y >> i) & 1 == 1;
                }
                assert_eq!(m.eval(f, &env), x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn eq_vars_truth() {
        let mut m = Manager::new();
        let a = m.new_vars(2);
        let b = m.new_vars(2);
        let f = eq_vars(&mut m, &a, &b);
        for x in 0..4u64 {
            for y in 0..4u64 {
                let mut env = vec![false; 4];
                for i in 0..2 {
                    env[a[i].level() as usize] = (x >> i) & 1 == 1;
                    env[b[i].level() as usize] = (y >> i) & 1 == 1;
                }
                assert_eq!(m.eval(f, &env), x == y, "{x} = {y}");
            }
        }
    }
}
