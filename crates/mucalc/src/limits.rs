//! Resource governance: deadlines, node budgets, step budgets and
//! cooperative cancellation.
//!
//! A solve can blow up in time (fixpoint rounds over exploding BDDs) or
//! space (arena growth) long before [`crate::SolveOptions::max_iterations`]
//! trips. [`ResourceLimits`] bounds both, and a shared [`CancelToken`]
//! lets *anything* — a deadline check in one worker, a SIGINT handler, a
//! panicking peer — stop every cooperating loop at its next poll point.
//!
//! Poll points are cheap by construction: one relaxed atomic load per
//! re-evaluation / search expansion / onion-peel step, a clock read only
//! when a deadline is actually configured. When a limit trips the solver
//! returns a structured [`crate::SolveError::LimitExceeded`] carrying the
//! partial [`crate::SolveStats`] collected so far — callers get
//! diagnostics (peak arena bytes, re-evaluation counts, GC history)
//! instead of a hang, an OOM kill, or a `^C` abort.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which resource bound tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// The wall-clock deadline passed ([`ResourceLimits::deadline`]).
    Deadline,
    /// The BDD arena exceeded the node budget even after a forced
    /// collection ([`ResourceLimits::node_budget`]).
    NodeBudget,
    /// The global step counter (re-evaluations + search expansions +
    /// witness peel steps, summed across workers) exceeded the step
    /// budget ([`ResourceLimits::step_budget`]).
    StepBudget,
    /// An external cancellation — SIGINT, or a caller-side
    /// [`CancelToken::cancel`].
    Interrupted,
}

impl LimitKind {
    const fn code(self) -> u8 {
        match self {
            LimitKind::Deadline => 1,
            LimitKind::NodeBudget => 2,
            LimitKind::StepBudget => 3,
            LimitKind::Interrupted => 4,
        }
    }

    const fn from_code(code: u8) -> Option<LimitKind> {
        match code {
            1 => Some(LimitKind::Deadline),
            2 => Some(LimitKind::NodeBudget),
            3 => Some(LimitKind::StepBudget),
            4 => Some(LimitKind::Interrupted),
            _ => None,
        }
    }
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitKind::Deadline => write!(f, "deadline"),
            LimitKind::NodeBudget => write!(f, "node-budget"),
            LimitKind::StepBudget => write!(f, "step-budget"),
            LimitKind::Interrupted => write!(f, "interrupted"),
        }
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    /// 0 = live; otherwise a [`LimitKind::code`]. First cancel wins.
    state: AtomicU8,
    /// Global step counter, shared by every clone of the token — the
    /// denominator [`ResourceLimits::step_budget`] is checked against.
    steps: AtomicU64,
}

/// A shared, lock-free cancellation flag plus global step counter.
///
/// Cloning shares the underlying state: `options.limits.clone()` in a
/// worker means one deadline, one budget, one flag across the whole pool.
/// The first [`CancelToken::cancel`] wins; later calls are no-ops, so the
/// *reason* a solve stopped is stable however many workers trip at once.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation with the given reason. Returns `true` if this
    /// call was the first to cancel (its reason sticks), `false` if the
    /// token was already cancelled.
    pub fn cancel(&self, kind: LimitKind) -> bool {
        self.inner
            .state
            .compare_exchange(0, kind.code(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The cancellation reason, if any. One relaxed-ish atomic load —
    /// cheap enough to poll per re-evaluation.
    pub fn cancelled(&self) -> Option<LimitKind> {
        LimitKind::from_code(self.inner.state.load(Ordering::Acquire))
    }

    /// Adds `n` to the shared step counter and returns the new total.
    pub fn add_steps(&self, n: u64) -> u64 {
        self.inner.steps.fetch_add(n, Ordering::Relaxed) + n
    }

    /// The steps accounted so far across every holder of this token.
    pub fn steps(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Do two tokens share the same underlying state?
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Resource bounds for a solve, all optional and off by default.
///
/// The deadline is an absolute [`Instant`], so cloning the limits (as the
/// parallel pool does per worker) keeps one shared wall-clock cutoff
/// rather than restarting the timer. The cancel token is likewise shared
/// by clone.
#[derive(Debug, Clone, Default)]
pub struct ResourceLimits {
    /// Absolute wall-clock cutoff. Checked at every poll point (only when
    /// set — no clock reads otherwise).
    pub deadline: Option<Instant>,
    /// Max BDD arena size in *nodes*. On pressure the solver first forces
    /// a collection (dropping computed caches and dead intermediates) and
    /// only surfaces [`LimitKind::NodeBudget`] if the live set itself
    /// exceeds the budget.
    pub node_budget: Option<usize>,
    /// Max total steps (re-evaluations, explicit-search expansions,
    /// witness peel steps) summed across all workers via the shared
    /// [`CancelToken`] counter.
    pub step_budget: Option<u64>,
    /// Shared cancellation flag + step counter.
    pub cancel: CancelToken,
}

impl ResourceLimits {
    /// No limits, fresh token.
    pub fn new() -> ResourceLimits {
        ResourceLimits::default()
    }

    /// Are any bounds configured (deadline, node budget or step budget)?
    /// An unlimited run with a live token still polls, so SIGINT works,
    /// but reports `limits: none` in stats.
    pub fn any_configured(&self) -> bool {
        self.deadline.is_some() || self.node_budget.is_some() || self.step_budget.is_some()
    }

    /// Sets a relative timeout: the deadline becomes `now + timeout`.
    pub fn with_timeout(mut self, timeout: Duration) -> ResourceLimits {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets the node budget.
    pub fn with_node_budget(mut self, nodes: usize) -> ResourceLimits {
        self.node_budget = Some(nodes);
        self
    }

    /// Sets the step budget.
    pub fn with_step_budget(mut self, steps: u64) -> ResourceLimits {
        self.step_budget = Some(steps);
        self
    }

    /// One poll: token first (cross-worker cancellation), then deadline.
    /// The step budget is checked by callers that *account* steps
    /// ([`ResourceLimits::note_steps`]); pure poll points skip it so a
    /// trip is attributed where the work happened.
    pub fn poll(&self) -> Result<(), LimitKind> {
        if let Some(kind) = self.cancel.cancelled() {
            return Err(kind);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancel.cancel(LimitKind::Deadline);
                // Re-read: a racing worker may have cancelled for a
                // different reason first; its reason sticks.
                return Err(self.cancel.cancelled().unwrap_or(LimitKind::Deadline));
            }
        }
        Ok(())
    }

    /// Accounts `n` steps against the shared counter, then polls. Trips
    /// [`LimitKind::StepBudget`] when the global total crosses the budget.
    pub fn note_steps(&self, n: u64) -> Result<(), LimitKind> {
        let total = self.cancel.add_steps(n);
        if let Some(budget) = self.step_budget {
            if total > budget {
                self.cancel.cancel(LimitKind::StepBudget);
                return Err(self.cancel.cancelled().unwrap_or(LimitKind::StepBudget));
            }
        }
        self.poll()
    }
}

/// The structured payload of [`crate::SolveError::LimitExceeded`]: which
/// bound tripped plus the partial statistics collected up to that point
/// (peak arena bytes, re-evaluation counts, GC history — the diagnostics
/// a caller needs to choose a bigger budget or a smaller problem).
///
/// Equality compares the *kind only*: two reports of the same trip are
/// "the same error" even if their partial counters differ, which keeps
/// `Result<_, SolveError>` comparisons in differential tests meaningful.
#[derive(Debug, Clone)]
pub struct LimitReport {
    /// Which bound tripped.
    pub kind: LimitKind,
    /// Statistics up to the trip — real work done, not a placeholder.
    pub partial: crate::SolveStats,
}

impl PartialEq for LimitReport {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl Eq for LimitReport {}

impl fmt::Display for LimitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource limit exceeded ({}) after {} re-evaluations, peak arena {} bytes",
            self.kind,
            self.partial.total_reevaluations(),
            self.partial.peak_arena_bytes
        )
    }
}

/// The process-wide token slot the SIGINT handler flips. A raw atomic
/// pointer to a leaked `Arc` clone: signal handlers may only touch
/// async-signal-safe state, which rules out locks and allocation.
static SIGINT_TOKEN: AtomicUsize = AtomicUsize::new(0);

/// Routes SIGINT (Ctrl-C) to `token`: the first interrupt cancels the
/// token with [`LimitKind::Interrupted`], so an in-flight solve unwinds
/// cooperatively and the CLI can print partial stats before exiting.
/// A second SIGINT falls back to the default disposition (process kill),
/// so a wedged solve can still be stopped.
///
/// Installing again replaces the routed token. Unix-only; a no-op
/// elsewhere.
pub fn install_sigint_cancel(token: &CancelToken) {
    #[cfg(unix)]
    {
        // Leak one Arc clone per install; the handler reads the pointer
        // without touching the refcount. Installs are once-per-process in
        // practice (CLI startup), so the leak is bounded and intentional.
        let leaked: *const TokenInner = Arc::into_raw(Arc::clone(&token.inner));
        let prev = SIGINT_TOKEN.swap(leaked as usize, Ordering::AcqRel);
        if prev != 0 {
            // SAFETY: `prev` is a pointer produced by `Arc::into_raw` in a
            // previous install on this same slot, swapped out exactly once
            // here, so reconstructing (and dropping) the Arc is sound.
            drop(unsafe { Arc::from_raw(prev as *const TokenInner) });
        }

        extern "C" fn on_sigint(_sig: i32) {
            let ptr = SIGINT_TOKEN.load(Ordering::Acquire) as *const TokenInner;
            if !ptr.is_null() {
                // SAFETY: the pointer was leaked via `Arc::into_raw` and is
                // never freed while installed (the swap above only drops
                // *replaced* pointers, after the new one is published), so
                // it stays valid for the life of the handler. Only atomics
                // are touched — async-signal-safe.
                let inner = unsafe { &*ptr };
                let _ = inner.state.compare_exchange(
                    0,
                    LimitKind::Interrupted.code(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                // Restore the default disposition so a second Ctrl-C kills
                // a solve that is not reaching its poll points.
                // SAFETY: signal(2) with SIG_DFL is async-signal-safe.
                unsafe { signal(SIGINT, SIG_DFL) };
            }
        }

        const SIGINT: i32 = 2;
        const SIG_DFL: usize = 0;
        extern "C" {
            /// signal(2) from the C runtime std already links against.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        // SAFETY: installing an extern "C" fn as a signal handler via
        // signal(2); the handler only performs async-signal-safe atomic
        // operations (see its body).
        unsafe { signal(SIGINT, on_sigint as *const () as usize) };
    }
    #[cfg(not(unix))]
    {
        let _ = token;
    }
}

/// Test-only fault injection: makes the parallel pool's worker path panic
/// when solving the named relation's stratum, to prove fault isolation
/// (the panic is caught, converted to
/// [`crate::SolveError::WorkerPanicked`], and peers are cancelled). Not
/// part of the public API contract.
#[doc(hidden)]
#[derive(Debug, Clone, Default)]
pub struct FaultInjection {
    /// Panic when a pool worker starts solving a stratum containing this
    /// relation.
    pub panic_on_relation: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_wins() {
        let t = CancelToken::new();
        assert_eq!(t.cancelled(), None);
        assert!(t.cancel(LimitKind::Deadline));
        assert!(!t.cancel(LimitKind::Interrupted));
        assert_eq!(t.cancelled(), Some(LimitKind::Deadline));
    }

    #[test]
    fn clone_shares_state() {
        let limits = ResourceLimits::new().with_step_budget(10);
        let clone = limits.clone();
        assert!(limits.cancel.same_token(&clone.cancel));
        assert!(clone.note_steps(6).is_ok());
        // The second holder sees the shared total cross the budget.
        assert_eq!(limits.note_steps(6), Err(LimitKind::StepBudget));
        assert_eq!(clone.cancel.cancelled(), Some(LimitKind::StepBudget));
    }

    #[test]
    fn deadline_in_past_trips() {
        let limits = ResourceLimits { deadline: Some(Instant::now()), ..ResourceLimits::default() };
        assert_eq!(limits.poll(), Err(LimitKind::Deadline));
    }

    #[test]
    fn unconfigured_limits_poll_ok() {
        let limits = ResourceLimits::new();
        assert!(!limits.any_configured());
        assert!(limits.poll().is_ok());
        assert!(limits.note_steps(1_000_000).is_ok());
    }

    #[test]
    fn report_equality_is_kind_only() {
        let mut a = LimitReport { kind: LimitKind::Deadline, partial: Default::default() };
        let b = LimitReport { kind: LimitKind::Deadline, partial: Default::default() };
        a.partial.gcs = 7;
        assert_eq!(a, b);
        let c = LimitReport { kind: LimitKind::StepBudget, partial: Default::default() };
        assert_ne!(a, c);
    }
}
