//! The type system of the fixed-point calculus.
//!
//! Types describe the *shape* of the finite domains relations range over.
//! Everything bottoms out in bits:
//!
//! * [`Type::Bool`] — one bit;
//! * [`Type::Range`] — an integer in `0..n`, bit-encoded (LSB first) with an
//!   implicit domain constraint `value < n`;
//! * [`Type::Bits`] — a raw vector of `n` independent bits (used for local /
//!   global variable valuations of Boolean programs);
//! * [`Type::Named`] — a reference to a previously declared type;
//! * [`Type::Struct`] — a record of named fields.
//!
//! Named types double as *channels* for the BDD variable allocator: two
//! values of the same named type are interleaved bit-by-bit in the variable
//! order so that equalities, summaries and renames between them stay small
//! (see `alloc.rs`).

use std::collections::BTreeMap;
use std::fmt;

/// A type expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// A single bit.
    Bool,
    /// An integer in `0..n` (`n ≥ 1`), bit-encoded LSB-first.
    Range(u64),
    /// A vector of `n` independent bits.
    Bits(u32),
    /// A reference to a declared type by name.
    Named(String),
    /// A record; field order is significant (it fixes the leaf layout).
    Struct(Vec<(String, Type)>),
}

impl Type {
    /// Convenience constructor for [`Type::Named`].
    pub fn named(name: impl Into<String>) -> Type {
        Type::Named(name.into())
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Range(n) => write!(f, "range {n}"),
            Type::Bits(n) => write!(f, "bits {n}"),
            Type::Named(name) => write!(f, "{name}"),
            Type::Struct(fields) => {
                write!(f, "struct {{ ")?;
                for (i, (name, ty)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {ty}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

/// Errors raised while declaring or resolving types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Reference to a type that has not been declared.
    Unknown(String),
    /// A type name was declared twice.
    Duplicate(String),
    /// `range 0` or another degenerate shape.
    Degenerate(String),
    /// A struct has two fields with the same name.
    DuplicateField { ty: String, field: String },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Unknown(n) => write!(f, "unknown type `{n}`"),
            TypeError::Duplicate(n) => write!(f, "type `{n}` declared twice"),
            TypeError::Degenerate(n) => write!(f, "degenerate type: {n}"),
            TypeError::DuplicateField { ty, field } => {
                write!(f, "duplicate field `{field}` in type `{ty}`")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// One primitive (bit-vector) leaf of a flattened type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leaf {
    /// Access path from the root value, e.g. `["ENTRY_CG"]` or `[]` for a
    /// primitive type. Nested structs yield multi-segment paths.
    pub path: Vec<String>,
    /// Allocation channel: the *named* type of this leaf if it has one, or a
    /// structural key (`"bool"`, `"bits5"`, `"range17"`).
    pub channel: String,
    /// Number of bits.
    pub width: u32,
    /// `Some(n)` when the leaf is a `range n` value (domain constraint).
    pub bound: Option<u64>,
}

/// The table of declared types.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    decls: BTreeMap<String, Type>,
    order: Vec<String>,
}

/// Number of bits needed to encode values `0..n`.
pub fn range_width(n: u64) -> u32 {
    if n <= 1 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `name` as an alias for `ty`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Duplicate`] if the name is taken,
    /// [`TypeError::Unknown`] if `ty` references an undeclared name, and
    /// [`TypeError::Degenerate`] for empty shapes (`range 0`, `bits 0`,
    /// empty structs).
    pub fn declare(&mut self, name: impl Into<String>, ty: Type) -> Result<(), TypeError> {
        let name = name.into();
        if self.decls.contains_key(&name) {
            return Err(TypeError::Duplicate(name));
        }
        self.validate(&name, &ty)?;
        self.order.push(name.clone());
        self.decls.insert(name, ty);
        Ok(())
    }

    fn validate(&self, name: &str, ty: &Type) -> Result<(), TypeError> {
        match ty {
            Type::Bool => Ok(()),
            Type::Range(n) => {
                if *n == 0 {
                    Err(TypeError::Degenerate(format!("range 0 in `{name}`")))
                } else {
                    Ok(())
                }
            }
            Type::Bits(n) => {
                if *n == 0 {
                    Err(TypeError::Degenerate(format!("bits 0 in `{name}`")))
                } else {
                    Ok(())
                }
            }
            Type::Named(other) => {
                if self.decls.contains_key(other) {
                    Ok(())
                } else {
                    Err(TypeError::Unknown(other.clone()))
                }
            }
            Type::Struct(fields) => {
                if fields.is_empty() {
                    return Err(TypeError::Degenerate(format!("empty struct `{name}`")));
                }
                let mut seen = std::collections::HashSet::new();
                for (fname, fty) in fields {
                    if !seen.insert(fname.clone()) {
                        return Err(TypeError::DuplicateField {
                            ty: name.to_string(),
                            field: fname.clone(),
                        });
                    }
                    self.validate(name, fty)?;
                }
                Ok(())
            }
        }
    }

    /// Looks up a declared type.
    pub fn get(&self, name: &str) -> Option<&Type> {
        self.decls.get(name)
    }

    /// Declared type names, in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }

    /// Resolves `Named` references down to a structural type.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Unknown`] for undeclared names.
    pub fn resolve<'a>(&'a self, ty: &'a Type) -> Result<&'a Type, TypeError> {
        let mut cur = ty;
        loop {
            match cur {
                Type::Named(n) => {
                    cur = self.get(n).ok_or_else(|| TypeError::Unknown(n.clone()))?;
                }
                other => return Ok(other),
            }
        }
    }

    /// Flattens `ty` into its primitive leaves, in field order.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Unknown`] for undeclared names.
    pub fn flatten(&self, ty: &Type) -> Result<Vec<Leaf>, TypeError> {
        let mut leaves = Vec::new();
        self.flatten_rec(ty, &mut Vec::new(), None, &mut leaves)?;
        Ok(leaves)
    }

    fn flatten_rec(
        &self,
        ty: &Type,
        path: &mut Vec<String>,
        channel_hint: Option<&str>,
        out: &mut Vec<Leaf>,
    ) -> Result<(), TypeError> {
        match ty {
            Type::Bool => {
                out.push(Leaf {
                    path: path.clone(),
                    channel: channel_hint.unwrap_or("bool").to_string(),
                    width: 1,
                    bound: None,
                });
                Ok(())
            }
            Type::Range(n) => {
                out.push(Leaf {
                    path: path.clone(),
                    channel: channel_hint.map(str::to_string).unwrap_or(format!("range{n}")),
                    width: range_width(*n),
                    bound: Some(*n),
                });
                Ok(())
            }
            Type::Bits(n) => {
                out.push(Leaf {
                    path: path.clone(),
                    channel: channel_hint.map(str::to_string).unwrap_or(format!("bits{n}")),
                    width: *n,
                    bound: None,
                });
                Ok(())
            }
            Type::Named(name) => {
                let inner = self.get(name).ok_or_else(|| TypeError::Unknown(name.clone()))?;
                // The named type becomes the allocation channel for its
                // leaves, unless it expands to a struct (whose fields then
                // pick their own channels).
                match inner {
                    Type::Struct(_) => self.flatten_rec(inner, path, None, out),
                    _ => self.flatten_rec(inner, path, Some(name), out),
                }
            }
            Type::Struct(fields) => {
                for (fname, fty) in fields {
                    path.push(fname.clone());
                    self.flatten_rec(fty, path, None, out)?;
                    path.pop();
                }
                Ok(())
            }
        }
    }

    /// Total bit width of a type.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Unknown`] for undeclared names.
    pub fn width(&self, ty: &Type) -> Result<u32, TypeError> {
        Ok(self.flatten(ty)?.iter().map(|l| l.width).sum())
    }

    /// The type reached from `ty` by following the field `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Unknown`] if a name fails to resolve or if a
    /// path segment does not name a field of a struct.
    pub fn project(&self, ty: &Type, path: &[String]) -> Result<Type, TypeError> {
        let mut cur = ty.clone();
        for seg in path {
            let resolved = self.resolve(&cur)?.clone();
            let fields = match resolved {
                Type::Struct(fields) => fields,
                other => {
                    return Err(TypeError::Unknown(format!(
                        "field `{seg}` projected from non-struct type `{other}`"
                    )))
                }
            };
            cur = fields
                .iter()
                .find(|(name, _)| name == seg)
                .map(|(_, t)| t.clone())
                .ok_or_else(|| TypeError::Unknown(format!("no field `{seg}`")))?;
        }
        Ok(cur)
    }

    /// Checks two types for structural equality after resolving names.
    pub fn same(&self, a: &Type, b: &Type) -> bool {
        match (self.flatten(a), self.flatten(b)) {
            (Ok(la), Ok(lb)) => {
                la.len() == lb.len()
                    && la
                        .iter()
                        .zip(&lb)
                        .all(|(x, y)| x.width == y.width && x.bound == y.bound && x.path == y.path)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_width_boundaries() {
        assert_eq!(range_width(1), 1);
        assert_eq!(range_width(2), 1);
        assert_eq!(range_width(3), 2);
        assert_eq!(range_width(4), 2);
        assert_eq!(range_width(5), 3);
        assert_eq!(range_width(256), 8);
        assert_eq!(range_width(257), 9);
    }

    #[test]
    fn declare_and_resolve() {
        let mut t = TypeTable::new();
        t.declare("PC", Type::Range(17)).unwrap();
        t.declare("Alias", Type::named("PC")).unwrap();
        let alias = Type::named("Alias");
        let r = t.resolve(&alias).unwrap();
        assert_eq!(r, &Type::Range(17));
    }

    #[test]
    fn duplicate_rejected() {
        let mut t = TypeTable::new();
        t.declare("X", Type::Bool).unwrap();
        assert_eq!(t.declare("X", Type::Bool), Err(TypeError::Duplicate("X".into())));
    }

    #[test]
    fn unknown_rejected() {
        let mut t = TypeTable::new();
        assert_eq!(t.declare("Y", Type::named("Nope")), Err(TypeError::Unknown("Nope".into())));
    }

    #[test]
    fn degenerate_rejected() {
        let mut t = TypeTable::new();
        assert!(matches!(t.declare("Z", Type::Range(0)), Err(TypeError::Degenerate(_))));
        assert!(matches!(t.declare("W", Type::Bits(0)), Err(TypeError::Degenerate(_))));
        assert!(matches!(t.declare("S", Type::Struct(vec![])), Err(TypeError::Degenerate(_))));
    }

    #[test]
    fn flatten_struct_channels() {
        let mut t = TypeTable::new();
        t.declare("Module", Type::Range(3)).unwrap();
        t.declare("PC", Type::Range(17)).unwrap();
        t.declare("Local", Type::Bits(5)).unwrap();
        t.declare("Global", Type::Bits(3)).unwrap();
        t.declare(
            "Conf",
            Type::Struct(vec![
                ("mod".into(), Type::named("Module")),
                ("pc".into(), Type::named("PC")),
                ("cl".into(), Type::named("Local")),
                ("cg".into(), Type::named("Global")),
                ("ecl".into(), Type::named("Local")),
                ("ecg".into(), Type::named("Global")),
            ]),
        )
        .unwrap();
        let leaves = t.flatten(&Type::named("Conf")).unwrap();
        assert_eq!(leaves.len(), 6);
        assert_eq!(leaves[0].channel, "Module");
        assert_eq!(leaves[0].width, 2);
        assert_eq!(leaves[0].bound, Some(3));
        assert_eq!(leaves[1].channel, "PC");
        assert_eq!(leaves[1].path, vec!["pc".to_string()]);
        assert_eq!(leaves[2].channel, "Local");
        assert_eq!(leaves[2].width, 5);
        assert_eq!(leaves[4].channel, "Local");
        assert_eq!(leaves[4].path, vec!["ecl".to_string()]);
        assert_eq!(t.width(&Type::named("Conf")).unwrap(), 2 + 5 + 5 + 5 + 3 + 3);
    }

    #[test]
    fn nested_struct_paths() {
        let mut t = TypeTable::new();
        t.declare("Inner", Type::Struct(vec![("b".into(), Type::Bool)])).unwrap();
        t.declare(
            "Outer",
            Type::Struct(vec![("x".into(), Type::named("Inner")), ("y".into(), Type::Bool)]),
        )
        .unwrap();
        let leaves = t.flatten(&Type::named("Outer")).unwrap();
        assert_eq!(leaves[0].path, vec!["x".to_string(), "b".to_string()]);
        assert_eq!(leaves[1].path, vec!["y".to_string()]);
    }

    #[test]
    fn same_type_structural() {
        let mut t = TypeTable::new();
        t.declare("A", Type::Bits(4)).unwrap();
        t.declare("B", Type::named("A")).unwrap();
        assert!(t.same(&Type::named("A"), &Type::named("B")));
        assert!(!t.same(&Type::named("A"), &Type::Bits(5)));
    }
}
