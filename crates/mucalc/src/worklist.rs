//! The demand-driven worklist strategy: dependency-ordered, change-driven
//! fixed-point evaluation.
//!
//! Where the round-robin reference (`solve.rs`) re-derives every relation a
//! body mentions on every round — nesting full fixpoint computations inside
//! fixpoint computations — this engine schedules work from the static
//! dependency graph (`deps.rs`):
//!
//! 1. **Demand.** Evaluating `R` only touches the cone of relations `R`
//!    transitively applies; unrelated equations are never compiled.
//! 2. **Stratification.** The cone's SCCs are solved dependencies-first.
//!    A relation in a non-recursive component is compiled *exactly once*;
//!    already-solved strata are read from the memo table, never re-derived.
//! 3. **Chaotic iteration.** Inside a recursive *monotone* component, a
//!    worklist keyed on "whose interpretation changed" drives re-evaluation:
//!    a member is re-compiled only when one of its intra-component
//!    dependencies actually changed since its last compilation.
//! 4. **Semi-naive propagation.** Where the formula structure permits —
//!    a body that is a top-level disjunction — only the disjuncts that
//!    mention a changed relation are recompiled, and their result is
//!    OR-accumulated into the previous interpretation. This is sound
//!    exactly because the component is monotone: interpretations only grow
//!    during the iteration, so a skipped disjunct's old contribution is
//!    still below the accumulated value.
//!
//! # Correctness and the non-monotone rule
//!
//! For a **monotone** component (every intra-component application under an
//! even number of negations) the accumulated chaotic iteration converges to
//! the component's least fixed point over the product lattice: at
//! quiescence every member's value is a pre-fixpoint, and by induction the
//! accumulation never exceeds the least fixed point. That is the same set
//! the nested §3 semantics computes (Bekić), so the two strategies produce
//! *identical* canonical BDDs.
//!
//! A **non-monotone** component — the §4.3 `Relevant` pattern reads the
//! complement of the summary's frontier — has no Tarski guarantee, and its
//! meaning is *defined by* the nested evaluation order of §3. The scheduler
//! therefore never *reorders* such a component; what it can do is run the
//! reference rounds **without the reference's redundancy**. Most
//! non-monotone systems that arise in practice (the `ef-opt` algorithm
//! chief among them) fit the **frontier pattern**
//! ([`crate::deps::DepGraph::ordered_plan`]): anchored at the evaluation
//! root, the remaining members form a DAG modulo self-loops. One §3 round
//! of the root then derives every other member as a *pure function of the
//! frozen root value* — so [`Solver::solve_scc_ordered`] walks the members
//! in dependency-rank order, once per round, with per-disjunct
//! change-tracking: a disjunct is recompiled only when a relation it reads
//! changed version since it was last compiled. Because a disjunct's value
//! is a function of the interpretations it reads, this caching is *exact*
//! — no monotonicity assumption — and the ordered schedule reproduces the
//! nested semantics round for round while skipping the nested evaluator's
//! rediscovery of unchanged inner fixpoints. Non-monotone components that
//! do **not** fit the pattern (mutual recursion among two non-anchor
//! members) still run the nested §3 semantics verbatim, demand-driven per
//! requested root.

use crate::alloc::owner_rel;
use crate::ast::Formula;
use crate::compile::CompileCtx;
use crate::deps::OrderedPlan;
use crate::solve::{SolveError, Solver};
use crate::system::RelationKind;
use getafix_bdd::Bdd;
use getafix_telemetry::{self as telemetry, Phase};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// One top-level disjunct of a member's body, with the metadata needed to
/// recompile it in isolation.
struct Part {
    formula: Formula,
    /// Intra-component relations this disjunct applies.
    scc_rels: BTreeSet<String>,
    /// Binder-numbering offset of the disjunct within the whole body.
    binder_offset: usize,
    /// Position among the body's top-level disjuncts — the `#index` half
    /// of the [`crate::DisjunctStats`] attribution key.
    index: usize,
    /// Pretty-printed prefix of the formula, for the offenders table.
    label: String,
}

/// Truncates a disjunct's pretty-printed formula to a table-friendly
/// prefix, on a char boundary.
fn part_label(formula: &Formula) -> String {
    const MAX: usize = 48;
    // Formula's Display may span lines; the label must stay a single table
    // cell, so whitespace runs collapse to one space before truncation.
    let text: String = formula.to_string().split_whitespace().collect::<Vec<_>>().join(" ");
    if text.chars().count() <= MAX {
        return text;
    }
    let mut out: String = text.chars().take(MAX - 1).collect();
    out.push('…');
    out
}

/// The compilation plan of one component member.
struct MemberPlan {
    name: String,
    param_names: Vec<String>,
    parts: Vec<Part>,
    /// All intra-component relations the body applies (union over parts).
    intra_deps: BTreeSet<String>,
    formals_domain: Bdd,
}

/// One disjunct's cached compilation in the ordered schedule: its value
/// plus the version of every intra-component relation it read. Exact by
/// construction — a disjunct's value is a pure function of the
/// interpretations it reads, so equal read versions imply an equal value.
struct PartCache {
    value: Bdd,
    read_versions: BTreeMap<String, u64>,
}

impl Solver {
    /// Worklist-strategy evaluation of `name` (see the module docs).
    ///
    /// # Errors
    ///
    /// See [`SolveError`].
    pub(crate) fn evaluate_worklist(&mut self, name: &str) -> Result<Bdd, SolveError> {
        {
            let rel =
                self.system.relation(name).ok_or_else(|| SolveError::Unknown(name.to_string()))?;
            if rel.kind == RelationKind::Input {
                return self
                    .inputs
                    .get(name)
                    .copied()
                    .ok_or_else(|| SolveError::MissingInterpretation(name.to_string()));
            }
        }
        let root = self
            .deps
            .relation_index(name)
            .ok_or_else(|| SolveError::Internal(format!("`{name}` missing from dep graph")))?;

        // Demand: the cone of relations `root` transitively applies, grouped
        // into components. Component indices ascend in dependency order, so
        // iterating the set ascending solves dependencies first.
        let needed = self.deps.transitive_deps(root);
        let mut demanded: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        demanded.entry(self.deps.scc_of(root)).or_default().insert(root);
        for &i in &needed {
            for &j in self.deps.deps(i) {
                if self.deps.scc_of(j) != self.deps.scc_of(i) {
                    demanded.entry(self.deps.scc_of(j)).or_default().insert(j);
                }
            }
        }
        let scc_order: BTreeSet<usize> = needed.iter().map(|&i| self.deps.scc_of(i)).collect();
        if telemetry::enabled() {
            // Position gauges for the live-progress heartbeat.
            telemetry::gauge_set("solve.strata_total", scc_order.len() as f64);
            telemetry::gauge_set("solve.stratum", 0.0);
        }
        // Provenance snapshots pin every intermediate value in the
        // coordinator's arena, so that path stays on the exact sequential
        // schedule regardless of the job count.
        let jobs = self.options.effective_jobs();
        if jobs > 1 && !self.options.record_provenance {
            self.stats.jobs = self.stats.jobs.max(jobs);
            self.solve_strata_parallel(&scc_order, &demanded, jobs)?;
        } else {
            self.stats.jobs = self.stats.jobs.max(1);
            let mut strata_done = 0usize;
            for idx in scc_order {
                let roots = demanded.get(&idx).cloned().unwrap_or_default();
                self.solve_stratum(idx, &roots)?;
                strata_done += 1;
                self.note_stratum_done(strata_done);
            }
        }
        self.evaluated
            .get(name)
            .copied()
            .ok_or_else(|| SolveError::Internal(format!("`{name}` not solved by its component")))
    }

    /// One stratum of the worklist schedule: solve component `idx` (with a
    /// telemetry span and per-SCC wall attribution), then collect at the
    /// stratum boundary — nothing intermediate is live there, so the arena
    /// can be compacted around the inputs, the memoized interpretations
    /// and the provenance snapshots.
    pub(crate) fn solve_stratum(
        &mut self,
        idx: usize,
        roots: &BTreeSet<usize>,
    ) -> Result<(), SolveError> {
        let stratum_start = Instant::now();
        {
            let mut span = telemetry::span(Phase::Solve, "stratum");
            if span.is_recording() {
                let scc = &self.deps.sccs()[idx];
                span.attr("scc", idx);
                span.attr("members", scc.members.len());
                span.attr("recursive", scc.recursive);
                span.attr("monotone", scc.monotone);
            }
            self.solve_scc(idx, roots)?;
        }
        self.stats.sccs[idx].wall_ms += stratum_start.elapsed().as_secs_f64() * 1e3;
        // Stratum boundary: threshold-gated collection plus the resource
        // governance round (cancellation poll, node-budget enforcement).
        self.govern_with(&mut [])?;
        Ok(())
    }

    /// Telemetry bookkeeping after `strata_done` strata have finished:
    /// kernel-counter time series (one point per stratum turns the
    /// terminal cache ratio into a trajectory over the run) and the
    /// heartbeat position gauge.
    pub(crate) fn note_stratum_done(&mut self, strata_done: usize) {
        if telemetry::enabled() {
            let ms = self.manager.stats();
            telemetry::sample("bdd.cache_hits", ms.cache_hits as f64);
            telemetry::sample("bdd.cache_misses", ms.cache_misses as f64);
            telemetry::sample("bdd.arena_nodes", ms.nodes as f64);
            telemetry::sample("bdd.arena_bytes", ms.arena_bytes as f64);
            telemetry::gauge_set("bdd.arena_bytes", ms.arena_bytes as f64);
            telemetry::gauge_set("solve.stratum", strata_done as f64);
        }
    }

    /// Solves one component; `demanded` are the members read from outside
    /// the component (or the evaluation root).
    pub(crate) fn solve_scc(
        &mut self,
        idx: usize,
        demanded: &BTreeSet<usize>,
    ) -> Result<(), SolveError> {
        let (members, recursive, monotone) = {
            let scc = &self.deps.sccs()[idx];
            let names: Vec<String> =
                scc.members.iter().map(|&i| self.deps.name(i).to_string()).collect();
            (names, scc.recursive, scc.monotone)
        };

        if !recursive {
            let name = members[0].clone();
            if self.evaluated.contains_key(&name) {
                return Ok(());
            }
            let value = self.evaluate_once(&name)?;
            self.note_provenance(&name, value);
            let entry = self.stats.relations.entry(name.clone()).or_default();
            entry.iterations = 1;
            entry.final_nodes = self.manager.node_count(value);
            entry.peak_nodes = entry.peak_nodes.max(self.manager.node_count(value));
            self.evaluated.insert(name, value);
            return Ok(());
        }

        if monotone {
            if members.iter().all(|m| self.evaluated.contains_key(m)) {
                return Ok(());
            }
            return self.solve_scc_chaotic(&members);
        }

        // Non-monotone: per demanded root, run the ordered change-driven
        // schedule when the component fits the §4.3 frontier pattern with
        // that root as the anchor; otherwise defer to the nested §3
        // semantics (outer strata resolve through the memo table either
        // way). Only the root's value is memoized: other members' §3
        // meanings are anchored at *their own* top-level evaluation, so
        // caching intermediates would change later answers.
        let member_set: BTreeSet<String> = members.iter().cloned().collect();
        for &r in demanded {
            let rname = self.deps.name(r).to_string();
            if self.evaluated.contains_key(&rname) {
                continue;
            }
            let value = match self.deps.ordered_plan(idx, r) {
                Some(plan) => self.solve_scc_ordered(idx, &plan)?,
                None => {
                    let frozen = BTreeMap::new();
                    self.evaluate_nested(&rname, &frozen, true, Some(&member_set))?
                }
            };
            self.evaluated.insert(rname, value);
        }
        Ok(())
    }

    /// The ordered change-driven schedule for a frontier-pattern component
    /// (see the module docs and [`crate::deps::DepGraph::ordered_plan`]).
    ///
    /// Each outer round freezes the anchor's value, re-derives the
    /// non-anchor members in dependency-rank order — a single compilation
    /// for DAG members, an inner fixpoint from `⊥` for self-recursive ones
    /// — and then recomputes the anchor's body once. Per-disjunct
    /// version-keyed caching makes every step incremental: a disjunct
    /// whose reads did not change is reused, not recompiled. The computed
    /// round sequence is *identical* to the nested §3 reference, so the
    /// returned value (and the recorded provenance ranks) are too; only
    /// the amount of recompilation differs.
    fn solve_scc_ordered(&mut self, idx: usize, plan: &OrderedPlan) -> Result<Bdd, SolveError> {
        let anchor = self.deps.name(plan.anchor).to_string();
        let rank_names: Vec<String> =
            plan.ranks.iter().map(|&i| self.deps.name(i).to_string()).collect();
        let mut all_members = rank_names.clone();
        all_members.push(anchor.clone());
        let member_set: BTreeSet<String> = all_members.iter().cloned().collect();
        let plans: BTreeMap<String, MemberPlan> = all_members
            .iter()
            .map(|m| Ok((m.clone(), self.member_plan(m, &member_set)?)))
            .collect::<Result<_, SolveError>>()?;

        let mut plans = plans;
        let mut env = self.component_env(&all_members)?;
        let mut version: BTreeMap<String, u64> =
            all_members.iter().map(|m| (m.clone(), 0u64)).collect();
        let mut cache: BTreeMap<String, Vec<Option<PartCache>>> = all_members
            .iter()
            .map(|m| (m.clone(), (0..plans[m].parts.len()).map(|_| None).collect()))
            .collect();

        let bound = self.options.max_iterations;
        let mut anchor_val = Bdd::FALSE;
        let mut rounds = 0usize;
        let mut peak_nodes = 0usize;
        loop {
            rounds += 1;
            if rounds > bound {
                return Err(SolveError::Diverged { relation: anchor, bound });
            }
            self.note_step()?;
            let reevals_before = self.stats.ordered_reevaluations;
            let mut round_span = telemetry::span(Phase::Solve, "round");
            if round_span.is_recording() {
                round_span.attr("anchor", anchor.as_str());
                round_span.attr("round", rounds);
                round_span.attr("schedule", "ordered");
            }
            // Phase 1: the non-anchor members, dependencies first. Each is
            // a function of the frozen anchor (and earlier ranks), exactly
            // as one §3 round derives them.
            for (i, m) in rank_names.iter().enumerate() {
                if plan.self_recursive[i] {
                    // Inner fixpoint from ⊥, as the nested semantics
                    // prescribes (restarting is required for exactness:
                    // the member's other inputs may have *shrunk*).
                    Self::ordered_assign(&mut env, &mut version, m, Bdd::FALSE);
                    let mut passes = 0usize;
                    loop {
                        passes += 1;
                        if passes > bound {
                            return Err(SolveError::Diverged { relation: m.clone(), bound });
                        }
                        self.note_step()?;
                        let val = self.ordered_eval(&plans[m], &env, &version, &mut cache, i)?;
                        if val == env[m] {
                            break;
                        }
                        Self::ordered_assign(&mut env, &mut version, m, val);
                        // An inner fixpoint can run for the whole solve
                        // (a counter-like member iterates its state space
                        // here), so arena pressure must be relieved at the
                        // pass boundary too, not just per outer round. The
                        // pass boundary is a safe point: `val` is dead once
                        // assigned, and everything the next pass reads is
                        // registered as a root and remapped in place.
                        if self.arena_over_pressure() {
                            let mut extras: Vec<&mut Bdd> = Vec::new();
                            extras.extend(env.values_mut());
                            extras.extend(plans.values_mut().map(|p| &mut p.formals_domain));
                            extras.extend(
                                cache.values_mut().flatten().flatten().map(|pc| &mut pc.value),
                            );
                            extras.push(&mut anchor_val);
                            self.govern_with(&mut extras)?;
                        }
                    }
                } else {
                    let val = self.ordered_eval(&plans[m], &env, &version, &mut cache, i)?;
                    if val != env[m] {
                        Self::ordered_assign(&mut env, &mut version, m, val);
                    }
                }
            }
            // Phase 2: one recomputation of the anchor's body.
            let next =
                self.ordered_eval(&plans[&anchor], &env, &version, &mut cache, rank_names.len())?;
            peak_nodes = peak_nodes.max(self.manager.node_count(next));
            if round_span.is_recording() {
                round_span.attr("reevals", self.stats.ordered_reevaluations - reevals_before);
                round_span.attr("changed", next != anchor_val);
            }
            drop(round_span);
            if next == anchor_val {
                break;
            }
            anchor_val = next;
            Self::ordered_assign(&mut env, &mut version, &anchor, next);
            self.note_provenance(&anchor, next);
            // Mid-stratum collection: the round boundary is a safe point —
            // everything the next round reads is registered as a root (the
            // member environment, the per-disjunct cache values, the
            // formals-domain constraints and the accumulated anchor), and
            // all of it is remapped in place. Version keys are untouched,
            // so the exactness of the per-disjunct cache survives: a remap
            // renames handles without changing which function they denote.
            let mut extras: Vec<&mut Bdd> = Vec::new();
            extras.extend(env.values_mut());
            extras.extend(plans.values_mut().map(|p| &mut p.formals_domain));
            extras.extend(cache.values_mut().flatten().flatten().map(|pc| &mut pc.value));
            extras.push(&mut anchor_val);
            self.govern_with(&mut extras)?;
        }

        self.stats.sccs[idx].ordered = true;
        let entry = self.stats.relations.entry(anchor).or_default();
        entry.iterations = rounds;
        entry.final_nodes = self.manager.node_count(anchor_val);
        entry.peak_nodes = entry.peak_nodes.max(peak_nodes);
        Ok(anchor_val)
    }

    /// Writes `value` into the ordered schedule's environment, bumping the
    /// relation's version so dependent disjuncts see the change.
    fn ordered_assign(
        env: &mut BTreeMap<String, Bdd>,
        version: &mut BTreeMap<String, u64>,
        name: &str,
        value: Bdd,
    ) {
        if env[name] != value {
            env.insert(name.to_string(), value);
            *version.get_mut(name).expect("member version") += 1;
        }
    }

    /// One body evaluation under the ordered schedule: OR of the member's
    /// disjuncts, recompiling only those whose intra-component reads
    /// changed version since their cached compilation.
    fn ordered_eval(
        &mut self,
        plan: &MemberPlan,
        env: &BTreeMap<String, Bdd>,
        version: &BTreeMap<String, u64>,
        cache: &mut BTreeMap<String, Vec<Option<PartCache>>>,
        rank: usize,
    ) -> Result<Bdd, SolveError> {
        let mut span = telemetry::span(Phase::Solve, "reeval");
        if span.is_recording() {
            span.attr("relation", plan.name.as_str());
            span.attr("schedule", "ordered");
            span.attr("rank", rank);
        }
        let slots = cache.get_mut(&plan.name).expect("member cache");
        let mut acc = Bdd::FALSE;
        let mut recompiled = false;
        for (pi, part) in plan.parts.iter().enumerate() {
            let cached = slots[pi].as_ref().and_then(|pc| {
                part.scc_rels
                    .iter()
                    .all(|d| pc.read_versions.get(d) == version.get(d))
                    .then_some(pc.value)
            });
            let value = match cached {
                Some(v) => v,
                None => {
                    recompiled = true;
                    let raw = self.compile_part(plan, part, env)?;
                    let v = self.manager.and(raw, plan.formals_domain);
                    slots[pi] = Some(PartCache {
                        value: v,
                        read_versions: part
                            .scc_rels
                            .iter()
                            .map(|d| (d.clone(), version[d]))
                            .collect(),
                    });
                    v
                }
            };
            acc = self.manager.or(acc, value);
        }
        if recompiled {
            self.note_reevaluation(&plan.name);
            self.stats.ordered_reevaluations += 1;
        }
        span.attr("recompiled", recompiled);
        Ok(acc)
    }

    /// Compiles the body of a non-recursive relation exactly once under the
    /// memoized environment.
    fn evaluate_once(&mut self, name: &str) -> Result<Bdd, SolveError> {
        let mut span = telemetry::span(Phase::Solve, "reeval");
        if span.is_recording() {
            span.attr("relation", name);
            span.attr("schedule", "once");
        }
        let plan = self.member_plan(name, &BTreeSet::new())?;
        let env = self.component_env(std::slice::from_ref(&plan.name))?;
        self.note_step()?;
        self.note_reevaluation(name);
        let mut acc = Bdd::FALSE;
        for part in &plan.parts {
            let raw = self.compile_part(&plan, part, &env)?;
            let constrained = self.manager.and(raw, plan.formals_domain);
            acc = self.manager.or(acc, constrained);
        }
        Ok(acc)
    }

    /// Chaotic iteration over a monotone recursive component.
    fn solve_scc_chaotic(&mut self, members: &[String]) -> Result<(), SolveError> {
        let member_set: BTreeSet<String> = members.iter().cloned().collect();
        let mut plans: BTreeMap<String, MemberPlan> = members
            .iter()
            .map(|m| Ok((m.clone(), self.member_plan(m, &member_set)?)))
            .collect::<Result<_, SolveError>>()?;

        // Reverse intra-component edges: who must be rescheduled when `r`
        // changes. Owned names, so the plans stay mutably borrowable for
        // the mid-stratum GC remap.
        let mut dependents: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for plan in plans.values() {
            for dep in &plan.intra_deps {
                dependents.entry(dep.clone()).or_default().push(plan.name.clone());
            }
        }

        let mut env = self.component_env(members)?;
        let mut value: BTreeMap<&str, Bdd> =
            members.iter().map(|m| (m.as_str(), Bdd::FALSE)).collect();
        let mut first_pass: BTreeSet<&str> = members.iter().map(String::as_str).collect();
        let mut dirty: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        let mut queue: VecDeque<&str> = members.iter().map(String::as_str).collect();
        let mut queued: BTreeSet<&str> = queue.iter().copied().collect();
        let mut passes: BTreeMap<&str, usize> = BTreeMap::new();
        let mut peak: BTreeMap<&str, usize> = BTreeMap::new();

        while let Some(r) = queue.pop_front() {
            queued.remove(r);
            let first = first_pass.remove(r);
            let dirty_now = dirty.remove(r).unwrap_or_default();
            if !first && dirty_now.is_empty() {
                continue;
            }
            let pass = passes.entry(r).or_insert(0);
            *pass += 1;
            let pass_no = *pass;
            if pass_no > self.options.max_iterations {
                return Err(SolveError::Diverged {
                    relation: r.to_string(),
                    bound: self.options.max_iterations,
                });
            }
            // One governed step per re-evaluation: deadline/cancellation
            // poll plus step-budget accounting.
            self.note_step()?;

            let mut pass_span = telemetry::span(Phase::Solve, "reeval");
            if pass_span.is_recording() {
                pass_span.attr("relation", r);
                pass_span.attr("schedule", "chaotic");
                pass_span.attr("pass", pass_no);
                pass_span.attr("dirty", dirty_now.len());
            }
            let plan = &plans[r];
            self.note_reevaluation(r);
            // Semi-naive: recompile only disjuncts that read something that
            // changed (all of them on the first pass).
            let mut delta = Bdd::FALSE;
            for part in &plan.parts {
                if first || part.scc_rels.iter().any(|d| dirty_now.contains(d)) {
                    let raw = self.compile_part(plan, part, &env)?;
                    let constrained = self.manager.and(raw, plan.formals_domain);
                    delta = self.manager.or(delta, constrained);
                }
            }
            let old = value[r];
            let new = self.manager.or(old, delta);
            pass_span.attr("changed", new != old);
            drop(pass_span);
            peak.entry(r)
                .and_modify(|p| *p = (*p).max(self.manager.node_count(new)))
                .or_insert_with(|| self.manager.node_count(new));
            if new != old {
                value.insert(r, new);
                env.insert(r.to_string(), new);
                self.note_provenance(r, new);
                if let Some(ds) = dependents.get(r) {
                    for d in ds {
                        dirty.entry(d.as_str()).or_default().insert(r.to_string());
                        if queued.insert(d.as_str()) {
                            queue.push_back(d.as_str());
                        }
                    }
                }
            }
            // Mid-stratum collection: between worklist passes nothing is
            // live beyond the member environment, the accumulated values
            // and the formals-domain constraints, all of which register as
            // roots and are remapped in place. Monotone accumulation is
            // indifferent to the renaming — canonicity is rebuilt by the
            // collector, so `new != old` comparisons stay exact.
            let mut extras: Vec<&mut Bdd> = Vec::new();
            extras.extend(env.values_mut());
            extras.extend(plans.values_mut().map(|p| &mut p.formals_domain));
            extras.extend(value.values_mut());
            self.govern_with(&mut extras)?;
        }

        for m in members {
            let v = value[m.as_str()];
            let entry = self.stats.relations.entry(m.clone()).or_default();
            entry.iterations = passes.get(m.as_str()).copied().unwrap_or(0);
            entry.final_nodes = self.manager.node_count(v);
            entry.peak_nodes = entry.peak_nodes.max(peak.get(m.as_str()).copied().unwrap_or(0));
            self.evaluated.insert(m.clone(), v);
        }
        Ok(())
    }

    /// Builds the compilation plan of one member: top-level disjuncts with
    /// their binder offsets and intra-component reads.
    fn member_plan(
        &mut self,
        name: &str,
        member_set: &BTreeSet<String>,
    ) -> Result<MemberPlan, SolveError> {
        let (body, param_names) = {
            let rel =
                self.system.relation(name).ok_or_else(|| SolveError::Unknown(name.to_string()))?;
            let body = rel
                .body
                .clone()
                .ok_or_else(|| SolveError::Internal(format!("`{name}` has no body to plan")))?;
            let params: Vec<String> = rel.params.iter().map(|(n, _)| n.clone()).collect();
            (body, params)
        };
        let raw_parts: Vec<Formula> = match body {
            Formula::Or(parts) => parts,
            other => vec![other],
        };
        let mut parts = Vec::with_capacity(raw_parts.len());
        let mut offset = 0usize;
        for (index, f) in raw_parts.into_iter().enumerate() {
            let scc_rels = f.relations().into_iter().filter(|r| member_set.contains(r)).collect();
            let binders = f.binder_count();
            let label = part_label(&f);
            parts.push(Part { formula: f, scc_rels, binder_offset: offset, index, label });
            offset += binders;
        }
        let intra_deps = parts.iter().flat_map(|p| p.scc_rels.iter().cloned()).collect();
        let mut formals_domain = Bdd::TRUE;
        for i in 0..param_names.len() {
            let inst = self.alloc.formal(name, i).clone();
            let d = self.alloc.domain(&inst);
            formals_domain = self.manager.and(formals_domain, d);
        }
        Ok(MemberPlan { name: name.to_string(), param_names, parts, intra_deps, formals_domain })
    }

    /// The evaluation environment of a component: inputs and already-solved
    /// outer strata for everything the members' bodies apply, plus `⊥` for
    /// the members themselves.
    fn component_env(&mut self, members: &[String]) -> Result<BTreeMap<String, Bdd>, SolveError> {
        let member_set: BTreeSet<&str> = members.iter().map(String::as_str).collect();
        let mut applied: BTreeSet<String> = BTreeSet::new();
        for m in members {
            let rel = self.system.relation(m).ok_or_else(|| SolveError::Unknown(m.clone()))?;
            if let Some(body) = &rel.body {
                applied.extend(body.relations());
            }
        }
        let mut env = BTreeMap::new();
        for r in applied {
            if member_set.contains(r.as_str()) {
                env.insert(r, Bdd::FALSE);
                continue;
            }
            let rel = self.system.relation(&r).ok_or_else(|| SolveError::Unknown(r.clone()))?;
            let value = match rel.kind {
                RelationKind::Input => self
                    .inputs
                    .get(&r)
                    .copied()
                    .ok_or_else(|| SolveError::MissingInterpretation(r.clone()))?,
                RelationKind::Fixpoint => self.evaluated.get(&r).copied().ok_or_else(|| {
                    SolveError::Internal(format!(
                        "stratification violated: `{r}` read before being solved"
                    ))
                })?,
            };
            env.insert(r, value);
        }
        Ok(env)
    }

    /// Compiles one disjunct of `plan` under `interp`, with the binder
    /// numbering resumed at the disjunct's offset.
    fn compile_part(
        &mut self,
        plan: &MemberPlan,
        part: &Part,
        interp: &BTreeMap<String, Bdd>,
    ) -> Result<Bdd, SolveError> {
        let compile_start = Instant::now();
        let raw = {
            let mut ctx = CompileCtx::with_binder_offset(
                &mut self.manager,
                &self.system,
                &self.alloc,
                interp,
                owner_rel(&plan.name),
                part.binder_offset,
            );
            for i in 0..plan.param_names.len() {
                let inst = ctx.alloc.formal(&plan.name, i).clone();
                ctx.bind(&plan.param_names[i], inst);
            }
            ctx.compile(&part.formula)?
        };
        // Every disjunct recompilation in every schedule funnels through
        // here, so this one call site is the whole attribution story.
        let nodes = self.manager.node_count(raw);
        self.note_disjunct(
            &plan.name,
            part.index,
            &part.label,
            nodes,
            compile_start.elapsed().as_micros() as u64,
        );
        Ok(raw)
    }
}
