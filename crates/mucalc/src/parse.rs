//! A concrete syntax for equation systems, in the spirit of MUCKE input
//! files (`mu bool Reachable (Conf s) (...)`), restyled with explicit
//! keywords:
//!
//! ```text
//! type Conf = struct { pc: PC, b: bool };
//! type PC   = range 17;
//!
//! input ProgramInt(s: Conf, t: Conf);
//!
//! mu Reach(s: Conf) :=
//!     Init(s)
//!   | (exists t: Conf. Reach(t) & ProgramInt(t, s));
//!
//! query hit := exists s: Conf. Reach(s) & s.pc = 3;
//! ```
//!
//! Operator precedence (loosest to tightest): `<->`, `->`, `|`, `&`, `!`.
//! A quantifier body extends as far right as possible (to the closing
//! parenthesis or the end of the statement). Comments are `//` to end of
//! line or `/* ... */`.

use crate::ast::{CmpOp, Formula, Term};
use crate::system::{System, SystemBuilder, SystemError};
use crate::types::Type;
use std::fmt;

/// Parse error with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<SystemError> for ParseError {
    fn from(e: SystemError) -> Self {
        ParseError { message: e.to_string(), line: 0, col: 0 }
    }
}

/// Parses the textual form of an equation system.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors and on the semantic errors
/// detected by [`SystemBuilder::build`] (unknown relations, arity and type
/// mismatches).
pub fn parse_system(src: &str) -> Result<System, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut builder = System::builder();
    while !p.at_end() {
        p.parse_item(&mut builder)?;
    }
    builder.build().map_err(ParseError::from)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semi,
    Dot,
    Define, // :=
    Eq,
    Ne,
    Lt,
    Le,
    And,
    Or,
    Not,
    Arrow,  // ->
    DArrow, // <->
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Define => write!(f, "`:=`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::And => write!(f, "`&`"),
            Tok::Or => write!(f, "`|`"),
            Tok::Not => write!(f, "`!`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::DArrow => write!(f, "`<->`"),
        }
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let n = bytes.len();
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned { tok: $tok, line, col });
            i += $len;
            col += $len;
        }};
    }
    while i < n {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= n {
                        return Err(ParseError {
                            message: "unterminated block comment".into(),
                            line,
                            col,
                        });
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            ',' => push!(Tok::Comma, 1),
            ';' => push!(Tok::Semi, 1),
            '.' => push!(Tok::Dot, 1),
            '&' => push!(Tok::And, 1),
            '|' => push!(Tok::Or, 1),
            '=' => push!(Tok::Eq, 1),
            ':' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::Define, 2)
                } else {
                    push!(Tok::Colon, 1)
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::Ne, 2)
                } else {
                    push!(Tok::Not, 1)
                }
            }
            '<' => {
                if i + 2 < n && bytes[i + 1] == '-' && bytes[i + 2] == '>' {
                    push!(Tok::DArrow, 3)
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::Le, 2)
                } else {
                    push!(Tok::Lt, 1)
                }
            }
            '-' => {
                if i + 1 < n && bytes[i + 1] == '>' {
                    push!(Tok::Arrow, 2)
                } else {
                    return Err(ParseError { message: "stray `-`".into(), line, col });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value: u64 = text.parse().map_err(|_| ParseError {
                    message: format!("integer literal `{text}` out of range"),
                    line,
                    col,
                })?;
                out.push(Spanned { tok: Tok::Int(value), line, col });
                col += i - start;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '\'')
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Spanned { tok: Tok::Ident(text), line, col });
                col += i - start;
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    line,
                    col,
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|s| &s.tok)
    }

    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError { message: message.into(), line, col }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {tok}, found {t}"))),
            None => Err(self.err(format!("expected {tok}, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.err(format!("expected an identifier, found {t}"))),
            None => Err(self.err("expected an identifier, found end of input")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_item(&mut self, builder: &mut SystemBuilder) -> Result<(), ParseError> {
        if self.eat_keyword("type") {
            let name = self.expect_ident()?;
            self.expect(&Tok::Eq)?;
            let ty = self.parse_type()?;
            self.expect(&Tok::Semi)?;
            builder.declare_type(name, ty)?;
            Ok(())
        } else if self.eat_keyword("input") {
            let name = self.expect_ident()?;
            self.expect(&Tok::LParen)?;
            let params = self.parse_params()?;
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::Semi)?;
            builder.input(name, params);
            Ok(())
        } else if self.eat_keyword("mu") {
            let name = self.expect_ident()?;
            self.expect(&Tok::LParen)?;
            let params = self.parse_params()?;
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::Define)?;
            let body = self.parse_formula()?;
            self.expect(&Tok::Semi)?;
            builder.define(name, params, body);
            Ok(())
        } else if self.eat_keyword("query") {
            let name = self.expect_ident()?;
            self.expect(&Tok::Define)?;
            let body = self.parse_formula()?;
            self.expect(&Tok::Semi)?;
            builder.query(name, body);
            Ok(())
        } else {
            Err(self.err("expected `type`, `input`, `mu` or `query`"))
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        if self.eat_keyword("bool") {
            Ok(Type::Bool)
        } else if self.eat_keyword("range") {
            match self.bump() {
                Some(Tok::Int(n)) => Ok(Type::Range(n)),
                _ => Err(self.err("expected an integer after `range`")),
            }
        } else if self.eat_keyword("bits") {
            match self.bump() {
                Some(Tok::Int(n)) if n <= u32::MAX as u64 => Ok(Type::Bits(n as u32)),
                _ => Err(self.err("expected an integer after `bits`")),
            }
        } else if self.eat_keyword("struct") {
            self.expect(&Tok::LBrace)?;
            let mut fields = Vec::new();
            loop {
                let fname = self.expect_ident()?;
                self.expect(&Tok::Colon)?;
                let fty = self.parse_type()?;
                fields.push((fname, fty));
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(&Tok::RBrace)?;
            Ok(Type::Struct(fields))
        } else {
            let name = self.expect_ident()?;
            Ok(Type::Named(name))
        }
    }

    fn parse_params(&mut self) -> Result<Vec<(String, Type)>, ParseError> {
        let mut params = Vec::new();
        if matches!(self.peek(), Some(Tok::RParen)) {
            return Ok(params);
        }
        loop {
            let name = self.expect_ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.parse_type()?;
            params.push((name, ty));
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(params)
    }

    fn parse_formula(&mut self) -> Result<Formula, ParseError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_implies()?;
        while matches!(self.peek(), Some(Tok::DArrow)) {
            self.pos += 1;
            let rhs = self.parse_implies()?;
            lhs = Formula::Iff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.parse_or()?;
        if matches!(self.peek(), Some(Tok::Arrow)) {
            self.pos += 1;
            // Right-associative.
            let rhs = self.parse_implies()?;
            Ok(Formula::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_and()?];
        while matches!(self.peek(), Some(Tok::Or)) {
            self.pos += 1;
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one") } else { Formula::Or(parts) })
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_unary()?];
        while matches!(self.peek(), Some(Tok::And)) {
            self.pos += 1;
            parts.push(self.parse_unary()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one") } else { Formula::And(parts) })
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        if matches!(self.peek(), Some(Tok::Not)) {
            self.pos += 1;
            let f = self.parse_unary()?;
            return Ok(Formula::Not(Box::new(f)));
        }
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "exists" || s == "forall") {
            let is_exists = matches!(self.peek(), Some(Tok::Ident(s)) if s == "exists");
            self.pos += 1;
            let binders = self.parse_binders()?;
            self.expect(&Tok::Dot)?;
            let body = self.parse_formula()?;
            return Ok(if is_exists {
                Formula::Exists(binders, Box::new(body))
            } else {
                Formula::Forall(binders, Box::new(body))
            });
        }
        self.parse_atom()
    }

    fn parse_binders(&mut self) -> Result<Vec<(String, Type)>, ParseError> {
        let mut binders = Vec::new();
        loop {
            let name = self.expect_ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.parse_type()?;
            binders.push((name, ty));
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(binders)
    }

    fn parse_atom(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let f = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f)
            }
            Some(Tok::Ident(s)) if s == "true" => {
                self.pos += 1;
                Ok(Formula::tt())
            }
            Some(Tok::Ident(s)) if s == "false" => {
                self.pos += 1;
                Ok(Formula::ff())
            }
            Some(Tok::Ident(_)) if matches!(self.peek2(), Some(Tok::LParen)) => {
                // Relation application.
                let name = self.expect_ident()?;
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if !matches!(self.peek(), Some(Tok::RParen)) {
                    loop {
                        args.push(self.parse_term()?);
                        if matches!(self.peek(), Some(Tok::Comma)) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Formula::App(name, args))
            }
            Some(Tok::Ident(_)) | Some(Tok::Int(_)) => {
                let lhs = self.parse_term()?;
                let op = match self.peek() {
                    Some(Tok::Eq) => Some(CmpOp::Eq),
                    Some(Tok::Ne) => Some(CmpOp::Ne),
                    Some(Tok::Lt) => Some(CmpOp::Lt),
                    Some(Tok::Le) => Some(CmpOp::Le),
                    _ => None,
                };
                match op {
                    Some(op) => {
                        self.pos += 1;
                        let rhs = self.parse_term()?;
                        Ok(Formula::Cmp(lhs, op, rhs))
                    }
                    None => match lhs {
                        Term::Int(_) => Err(self.err("integer literal is not a formula")),
                        t => Ok(Formula::Atom(t)),
                    },
                }
            }
            Some(t) => {
                let t = t.clone();
                Err(self.err(format!("expected a formula, found {t}")))
            }
            None => Err(self.err("expected a formula, found end of input")),
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Term::Int(v)),
            Some(Tok::Ident(name)) => {
                let mut path = Vec::new();
                while matches!(self.peek(), Some(Tok::Dot)) {
                    self.pos += 1;
                    path.push(self.expect_ident()?);
                }
                Ok(Term::Var { name, path })
            }
            Some(t) => Err(self.err(format!("expected a term, found {t}"))),
            None => Err(self.err("expected a term, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RelationKind;

    #[test]
    fn parse_reach_example() {
        let sys = parse_system(
            r#"
            // The §3 example.
            type State = bits 3;
            input Init(s: State);
            input Trans(s: State, t: State);
            mu Reach(u: State) :=
                Init(u) | (exists x: State. Reach(x) & Trans(x, u));
            query hit := exists u: State. Reach(u) & u = 5;
            "#,
        )
        .unwrap();
        assert_eq!(sys.relations().len(), 3);
        assert_eq!(sys.queries().len(), 1);
        assert_eq!(sys.relation("Reach").unwrap().kind, RelationKind::Fixpoint);
        assert!(sys.is_positive("Reach"));
    }

    #[test]
    fn parse_struct_types_and_paths() {
        let sys = parse_system(
            r#"
            type PC = range 9;
            type Conf = struct { pc: PC, halt: bool };
            input At(p: PC);
            mu R(s: Conf) := At(s.pc) & !s.halt;
            "#,
        )
        .unwrap();
        let rel = sys.relation("R").unwrap();
        assert_eq!(rel.params.len(), 1);
    }

    #[test]
    fn parse_comparisons() {
        let sys = parse_system(
            r#"
            type K = range 7;
            input I(a: K, b: K);
            mu R(a: K, b: K) := I(a, b) & a <= b & a != 3 & !(b < a);
            "#,
        )
        .unwrap();
        assert!(sys.relation("R").is_some());
    }

    #[test]
    fn parse_implication_and_iff() {
        let sys = parse_system(
            r#"
            type B = bool;
            input P(x: B);
            input Q(x: B);
            mu R(x: B) := (P(x) -> Q(x)) <-> (!P(x) | Q(x));
            "#,
        )
        .unwrap();
        let body = sys.relation("R").unwrap().body.as_ref().unwrap();
        assert!(matches!(body, Formula::Iff(..)));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_system("type X = ;").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col > 1);
    }

    #[test]
    fn unterminated_comment() {
        let err = parse_system("/* nope").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn semantic_error_surfaces() {
        let err = parse_system(
            r#"
            type B = bool;
            mu R(x: B) := Missing(x);
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("Missing"));
    }

    #[test]
    fn primed_identifiers() {
        // cs' style names from the paper parse as identifiers.
        let sys = parse_system(
            r#"
            type K = range 4;
            input I(k: K);
            mu R(cs: K) := exists cs': K. I(cs') & cs' <= cs;
            "#,
        )
        .unwrap();
        assert!(sys.relation("R").is_some());
    }
}
