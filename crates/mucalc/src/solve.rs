//! The fixed-point solver: two strategies over one equation system.
//!
//! # `Strategy::RoundRobin` — the paper's §3 operational semantics
//!
//! The reference evaluator is the paper's `Evaluate(R, Eq)`. To evaluate a
//! relation `R` defined by `R = B`:
//!
//! 1. start with `S := ∅`;
//! 2. in each round, freeze `R ↦ S`, evaluate every relation occurring in
//!    `B` under that frozen environment (recursively, by the same
//!    procedure), then re-evaluate `B` to obtain the next `S`;
//! 3. stop when `S` stabilizes.
//!
//! For *positive* systems this computes the least fixed point
//! (Tarski–Knaster). For non-positive systems — the optimized entry-forward
//! algorithm (§4.3) needs one — the procedure is still well-defined and the
//! specific equations we run are written to terminate; a configurable
//! iteration bound turns accidental divergence into an error. Round-robin is
//! kept unoptimized on purpose: it is the executable definition the fast
//! path is differentially tested against.
//!
//! # `Strategy::Worklist` — dependency-ordered chaotic iteration
//!
//! The default strategy (see `worklist.rs` for the engine and `deps.rs` for
//! the dependency analysis) stratifies the system into SCCs of the
//! relation-dependency graph and solves them dependencies-first:
//!
//! * non-recursive relations are evaluated **exactly once**;
//! * monotone recursive components run chaotic iteration from a worklist,
//!   re-evaluating a relation only when something it reads has changed, and
//!   re-compiling only the top-level disjuncts that mention a changed
//!   relation (semi-naive propagation);
//! * non-monotone components fitting the §4.3 **frontier pattern**
//!   ([`crate::DepGraph::ordered_plan`]) run an *ordered change-driven
//!   schedule* that reproduces the nested §3 round sequence exactly while
//!   recompiling only disjuncts whose reads changed; the rest are routed
//!   to the nested §3 semantics above, with already-solved outer strata
//!   memoized.
//!
//! **When do the strategies agree?** On every component that is monotone
//! (all intra-component applications positive), both compute the unique
//! least fixed point, so interpretations — as canonical BDDs — are
//! *identical*. On non-monotone components the worklist strategy either
//! replays the round-robin round sequence bit for bit (ordered schedule)
//! or defers to it wholesale (nested fallback), so results again coincide.
//! The difference is purely how much work is re-done: round-robin
//! re-evaluates every inner relation of a body from scratch every round
//! (nested fixpoints multiply), the worklist engine never re-evaluates a
//! relation — or a disjunct — whose inputs did not change.
//! [`SolveStats::total_reevaluations`] makes the difference measurable.

use crate::alloc::{owner_query, owner_rel, Allocation};
use crate::compile::CompileCtx;
use crate::deps::DepGraph;
use crate::limits::{FaultInjection, LimitKind, LimitReport, ResourceLimits};
use crate::provenance::Provenance;
use crate::system::{RelationKind, System, SystemError};
use getafix_bdd::{Bdd, Manager};
use getafix_telemetry::json::JsonWriter;
use getafix_telemetry::{self as telemetry, Phase};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

/// Errors produced while solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// An input relation was applied but never supplied.
    MissingInterpretation(String),
    /// Evaluation exceeded the iteration bound (non-positive system that
    /// does not stabilize, or the bound is too small).
    Diverged { relation: String, bound: usize },
    /// A query did not reduce to a constant (free variables escaped).
    OpenQuery(String),
    /// Unknown relation or query name.
    Unknown(String),
    /// System-level error surfaced during setup.
    System(String),
    /// Invalid solver options (e.g. a zero iteration bound).
    Options(String),
    /// A resource bound tripped ([`crate::ResourceLimits`]): deadline,
    /// node budget, step budget, or an external cancellation. The boxed
    /// [`LimitReport`] carries the partial [`SolveStats`] collected up to
    /// the trip. Equality compares the limit kind only.
    LimitExceeded(Box<LimitReport>),
    /// A pool worker panicked while solving a stratum. The panic was
    /// caught at the worker boundary, peers were cancelled via the shared
    /// token, and the process kept running — this error is the clean
    /// surface of the fault.
    WorkerPanicked {
        /// Pool worker index (0-based).
        worker: usize,
        /// Index of the SCC stratum the worker was solving.
        stratum: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Invariant violation (a bug in the caller or in this crate).
    Internal(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::MissingInterpretation(n) => {
                write!(f, "input relation `{n}` has no interpretation")
            }
            SolveError::Diverged { relation, bound } => {
                write!(f, "evaluation of `{relation}` did not stabilize within {bound} rounds")
            }
            SolveError::OpenQuery(n) => write!(f, "query `{n}` has free variables"),
            SolveError::Unknown(n) => write!(f, "unknown relation or query `{n}`"),
            SolveError::System(msg) => write!(f, "{msg}"),
            SolveError::Options(msg) => write!(f, "invalid solver options: {msg}"),
            SolveError::LimitExceeded(report) => write!(f, "{report}"),
            SolveError::WorkerPanicked { worker, stratum, message } => {
                write!(
                    f,
                    "solver worker {worker} panicked while solving stratum {stratum}: {message}"
                )
            }
            SolveError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<SystemError> for SolveError {
    fn from(e: SystemError) -> Self {
        SolveError::System(e.to_string())
    }
}

/// How the solver schedules fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// The paper's §3 `Evaluate(R, Eq)` nested semantics, unoptimized.
    /// Every relation occurring in a body is fully re-evaluated each round.
    /// Kept as the executable reference the fast path is tested against.
    RoundRobin,
    /// Dependency-ordered worklist iteration (the default): SCC strata,
    /// change-driven re-evaluation, semi-naive disjunct propagation.
    /// Non-monotone frontier-pattern components run an ordered
    /// change-driven schedule (exact w.r.t. the reference rounds); other
    /// non-monotone components fall back to the round-robin semantics.
    #[default]
    Worklist,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::RoundRobin => write!(f, "round-robin"),
            Strategy::Worklist => write!(f, "worklist"),
        }
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "roundrobin" | "rr" => Ok(Strategy::RoundRobin),
            "worklist" | "wl" => Ok(Strategy::Worklist),
            other => {
                Err(format!("unknown strategy `{other}` (expected `worklist` or `round-robin`)"))
            }
        }
    }
}

/// Tuning knobs for the solver.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Maximum rounds per relation before declaring divergence.
    /// Zero is rejected by [`Solver::with_options`].
    pub max_iterations: usize,
    /// Iteration scheduling strategy.
    pub strategy: Strategy,
    /// Record the [`Provenance`] of every top-level fixpoint evaluation
    /// (see [`Solver::provenance`]): the relation's value after each
    /// change, so the first snapshot containing a tuple is a well-founded
    /// rank witness extraction can onion-peel — directly from the verdict
    /// solve, no second system. Off by default — snapshots pin
    /// intermediate BDDs and cost memory proportional to the iteration
    /// count ([`SolveStats::provenance_nodes`] reports how much).
    pub record_provenance: bool,
    /// Garbage-collect the node arena once it exceeds this many nodes,
    /// keeping exactly the live roots (inputs, memoized interpretations,
    /// provenance snapshots — plus, inside a running stratum, the
    /// iteration's own state: member environments, per-disjunct caches and
    /// domain constraints). Collections trigger both *between* SCC strata
    /// and *inside* a long-running monotone or ordered iteration, so a
    /// single huge component no longer pins its intermediate garbage.
    /// `None` disables collection. Only the worklist strategy collects;
    /// the round-robin reference never does.
    pub gc_threshold: Option<usize>,
    /// Worker threads for parallel stratified solving. `1` (the default)
    /// is the exact single-threaded path; `0` means "use all available
    /// parallelism"; `N > 1` lets waves of independent SCC strata solve
    /// concurrently, each worker on a private BDD manager, with results
    /// shipped back via cross-manager export/import at wave joins.
    /// Verdicts, interpretations (as truth tables) and re-evaluation
    /// counts are bit-identical at any job count; only wall-clock and
    /// kernel cache/arena counters may differ. Ignored (treated as 1)
    /// when [`SolveOptions::record_provenance`] is set — provenance
    /// snapshots pin the coordinator's arena, so that path stays
    /// sequential — and by the round-robin reference strategy.
    pub jobs: usize,
    /// Resource bounds: wall-clock deadline, arena node budget, global
    /// step budget, plus the shared cancellation token every poll point
    /// checks. All off by default. Cloning the options (as the parallel
    /// pool does per worker) *shares* the deadline and token, so one
    /// budget governs the whole solve. On a trip the solver returns
    /// [`SolveError::LimitExceeded`] with partial statistics; on node
    /// pressure it first forces a collection and only fails if the live
    /// set itself exceeds the budget.
    pub limits: ResourceLimits,
    /// Test-only fault injection for the parallel pool (see
    /// [`crate::FaultInjection`]). Leave defaulted.
    #[doc(hidden)]
    pub fault: FaultInjection,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions::new()
    }
}

impl SolveOptions {
    /// The default iteration bound.
    pub const DEFAULT_MAX_ITERATIONS: usize = 1_000_000;

    /// The default GC threshold: collect between strata once the arena
    /// holds this many nodes (~tens of MB of node storage).
    pub const DEFAULT_GC_THRESHOLD: usize = 1 << 21;

    /// Default options with an explicit strategy.
    pub fn with_strategy(strategy: Strategy) -> SolveOptions {
        SolveOptions { strategy, ..SolveOptions::new() }
    }

    /// The default options (worklist strategy, 10⁶-round bound, no
    /// provenance recording, inter-stratum GC at the default threshold).
    pub fn new() -> SolveOptions {
        SolveOptions {
            max_iterations: Self::DEFAULT_MAX_ITERATIONS,
            strategy: Strategy::default(),
            record_provenance: false,
            gc_threshold: Some(Self::DEFAULT_GC_THRESHOLD),
            jobs: 1,
            limits: ResourceLimits::default(),
            fault: FaultInjection::default(),
        }
    }

    /// Resolves [`SolveOptions::jobs`] to a concrete worker count:
    /// `0` becomes the machine's available parallelism, everything else
    /// passes through.
    pub fn effective_jobs(&self) -> usize {
        crate::parallel::resolve_jobs(self.jobs)
    }

    fn validate(&self) -> Result<(), SolveError> {
        if self.max_iterations == 0 {
            return Err(SolveError::Options(
                "max_iterations must be at least 1 (0 would reject every fixpoint)".into(),
            ));
        }
        Ok(())
    }
}

/// Per-relation evaluation statistics.
#[derive(Debug, Clone, Default)]
pub struct RelationStats {
    /// Outer rounds taken to stabilize (top-level evaluations only for
    /// [`Strategy::RoundRobin`]; worklist passes for [`Strategy::Worklist`]).
    pub iterations: usize,
    /// Total body compilations of this relation, **including** nested
    /// re-evaluations — the work measure the worklist engine minimizes.
    pub reevaluations: usize,
    /// DAG node count of the final interpretation.
    pub final_nodes: usize,
    /// Peak DAG node count of the interpretation across rounds.
    pub peak_nodes: usize,
    /// Index of the relation's SCC in [`SolveStats::sccs`].
    pub scc: Option<usize>,
}

/// Per-SCC statistics (components in dependency-topological order).
#[derive(Debug, Clone, Default)]
pub struct SccStats {
    /// Member relation names.
    pub members: Vec<String>,
    /// Does the component contain a cycle (self-loops included)?
    pub recursive: bool,
    /// Are all intra-component applications positive?
    pub monotone: bool,
    /// Total body compilations attributed to members of this component.
    pub evaluations: usize,
    /// Did the worklist engine run this (non-monotone) component on the
    /// ordered change-driven schedule instead of the nested §3 fallback?
    pub ordered: bool,
    /// Wall-clock time spent solving this component, in milliseconds
    /// (worklist strategy only; round-robin does not attribute time to
    /// components).
    pub wall_ms: f64,
    /// Indices (into [`SolveStats::sccs`]) of the components this one
    /// reads from — the SCC-level dependency edges, deduplicated and
    /// sorted. Populated at solver construction, which is what lets the
    /// topology report ([`crate::depgraph_dot`]) render the full solve
    /// graph from a statistics object alone.
    pub dep_sccs: Vec<usize>,
}

impl SccStats {
    /// The schedule the worklist engine uses for this component:
    /// `"once"` (non-recursive), `"chaotic"` (monotone semi-naive),
    /// `"ordered"` (§4.3 frontier-pattern change-driven) or `"nested"`
    /// (the §3 reference fallback). `ordered` is only known after the
    /// component has been solved; before that, non-monotone recursive
    /// components report `"nested"`.
    pub fn schedule(&self) -> &'static str {
        if self.ordered {
            "ordered"
        } else if !self.recursive {
            "once"
        } else if self.monotone {
            "chaotic"
        } else {
            "nested"
        }
    }
}

/// Work attributed to one top-level disjunct of a relation body — the
/// granularity the semi-naive engine recompiles at, hence the right unit
/// for answering "which part of which body is eating the solve".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DisjunctStats {
    /// A short pretty-printed prefix of the disjunct, for humans.
    pub label: String,
    /// Times this disjunct's formula was recompiled against a changed
    /// environment.
    pub recompilations: usize,
    /// Total DAG nodes across all compiled results (growth pressure this
    /// disjunct puts on the arena).
    pub nodes_built: u64,
    /// Largest single compiled result, in DAG nodes.
    pub peak_nodes: usize,
    /// Wall-clock time spent compiling this disjunct, in microseconds.
    pub wall_us: u64,
}

/// Aggregated solver statistics.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Statistics per evaluated relation.
    pub relations: BTreeMap<String, RelationStats>,
    /// Statistics per dependency SCC, in topological (dependencies-first)
    /// order. Populated at solver construction; `evaluations` grows as the
    /// solver runs.
    pub sccs: Vec<SccStats>,
    /// Body compilations spent inside ordered non-monotone schedules (a
    /// subset of [`SolveStats::total_reevaluations`]); zero when every
    /// non-monotone component ran the nested reference fallback.
    pub ordered_reevaluations: usize,
    /// Distinct BDD nodes pinned by the recorded provenance snapshots
    /// (0 when recording is off) — the memory price of rank provenance.
    pub provenance_nodes: usize,
    /// Garbage collections performed (between strata and mid-stratum).
    pub gcs: usize,
    /// Total nodes reclaimed by those collections.
    pub gc_reclaimed_nodes: usize,
    /// Total wall-clock time spent inside GC pauses, in milliseconds
    /// (mirrors [`getafix_bdd::ManagerStats::gc_pause_ms`]).
    pub gc_pause_ms: f64,
    /// BDD operation-cache hits, from [`getafix_bdd::ManagerStats`].
    pub cache_hits: u64,
    /// BDD operation-cache misses, from [`getafix_bdd::ManagerStats`].
    pub cache_misses: u64,
    /// Current BDD arena size in nodes at the end of the last evaluation.
    pub arena_nodes: usize,
    /// Current bytes held by the BDD arena, unique table and computed
    /// caches.
    pub arena_bytes: usize,
    /// Peak of `arena_bytes` observed by the manager.
    pub peak_arena_bytes: usize,
    /// Per-disjunct work attribution, keyed `"Relation#index"` (index =
    /// position among the body's top-level disjuncts). Worklist strategy
    /// only; the round-robin reference compiles whole bodies.
    pub disjuncts: BTreeMap<String, DisjunctStats>,
    /// Effective worker count of the last worklist evaluation (`1` =
    /// the sequential path, `0` = the solver has not run).
    pub jobs: usize,
    /// Wall-clock each pool worker spent solving strata, in milliseconds,
    /// indexed by worker. Empty for sequential runs (the coordinator's
    /// time lives in [`SccStats::wall_ms`] either way).
    pub worker_wall_ms: Vec<f64>,
}

impl SolveStats {
    /// Total body compilations across all relations — the scheduler-quality
    /// measure: `Worklist` must never exceed `RoundRobin` on it.
    pub fn total_reevaluations(&self) -> usize {
        self.relations.values().map(|r| r.reevaluations).sum()
    }

    /// Renders the statistics as a self-contained JSON object — the single
    /// serialization consumed by `getafix … --stats-json`, the bench
    /// reporter and CI artifacts, so no tool re-derives numbers by hand.
    pub fn to_json(&self) -> String {
        self.to_json_with_metrics(None)
    }

    /// [`SolveStats::to_json`] with the telemetry metrics registry embedded
    /// as a trailing `"metrics"` field — what `--stats-json` emits when a
    /// collector is installed, and what diagnostics bundles always carry.
    /// With `None` the output is byte-identical to [`SolveStats::to_json`],
    /// so runs without a collector keep their schema unchanged.
    pub fn to_json_with_metrics(&self, metrics: Option<&getafix_telemetry::Registry>) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("total_reevaluations", self.total_reevaluations() as u64);
        w.field_u64("ordered_reevaluations", self.ordered_reevaluations as u64);
        w.field_u64("provenance_nodes", self.provenance_nodes as u64);
        w.field_u64("gcs", self.gcs as u64);
        w.field_u64("gc_reclaimed_nodes", self.gc_reclaimed_nodes as u64);
        w.field_f64("gc_pause_ms", self.gc_pause_ms);
        w.field_u64("cache_hits", self.cache_hits);
        w.field_u64("cache_misses", self.cache_misses);
        w.field_u64("arena_nodes", self.arena_nodes as u64);
        w.field_u64("arena_bytes", self.arena_bytes as u64);
        w.field_u64("peak_arena_bytes", self.peak_arena_bytes as u64);
        w.field_u64("jobs", self.jobs as u64);
        w.key("worker_wall_ms");
        w.begin_array();
        for &wall in &self.worker_wall_ms {
            w.value_f64(wall);
        }
        w.end_array();
        w.key("relations");
        w.begin_array();
        for (name, r) in &self.relations {
            w.begin_object();
            w.field_str("name", name);
            w.field_u64("iterations", r.iterations as u64);
            w.field_u64("reevaluations", r.reevaluations as u64);
            w.field_u64("final_nodes", r.final_nodes as u64);
            w.field_u64("peak_nodes", r.peak_nodes as u64);
            w.key("scc");
            match r.scc {
                Some(s) => w.value_u64(s as u64),
                None => w.value_null(),
            }
            w.end_object();
        }
        w.end_array();
        w.key("sccs");
        w.begin_array();
        for scc in &self.sccs {
            w.begin_object();
            w.key("members");
            w.begin_array();
            for m in &scc.members {
                w.value_str(m);
            }
            w.end_array();
            w.field_bool("recursive", scc.recursive);
            w.field_bool("monotone", scc.monotone);
            w.field_bool("ordered", scc.ordered);
            w.field_str("schedule", scc.schedule());
            w.field_u64("evaluations", scc.evaluations as u64);
            w.field_f64("wall_ms", scc.wall_ms);
            w.key("dep_sccs");
            w.begin_array();
            for &d in &scc.dep_sccs {
                w.value_u64(d as u64);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("disjuncts");
        w.begin_array();
        for (key, d) in &self.disjuncts {
            w.begin_object();
            w.field_str("key", key);
            w.field_str("label", &d.label);
            w.field_u64("recompilations", d.recompilations as u64);
            w.field_u64("nodes_built", d.nodes_built);
            w.field_u64("peak_nodes", d.peak_nodes as u64);
            w.field_u64("wall_us", d.wall_us);
            w.end_object();
        }
        w.end_array();
        if let Some(reg) = metrics {
            w.key("metrics");
            reg.write_json(&mut w);
        }
        w.end_object();
        w.finish()
    }

    /// The "top offenders" table of `--profile`: the `n` disjuncts doing
    /// the most recompilation work, ranked by recompilations, then total
    /// nodes built, then key — a run-deterministic order (wall time is
    /// shown but never ranks). Empty string when nothing was attributed
    /// (round-robin strategy, or a solve with no fixpoint work).
    pub fn top_offenders(&self, n: usize) -> String {
        use std::fmt::Write as _;
        if self.disjuncts.is_empty() {
            return String::new();
        }
        let mut rows: Vec<(&String, &DisjunctStats)> = self.disjuncts.iter().collect();
        rows.sort_by(|a, b| {
            b.1.recompilations
                .cmp(&a.1.recompilations)
                .then_with(|| b.1.nodes_built.cmp(&a.1.nodes_built))
                .then_with(|| a.0.cmp(b.0))
        });
        rows.truncate(n);
        let key_w = rows.iter().map(|(k, _)| k.len()).chain([12]).max().unwrap_or(12);
        let mut out = String::new();
        let _ = writeln!(out, "top offenders (by disjunct recompilations):");
        let _ = writeln!(
            out,
            "{:<key_w$} {:>10} {:>12} {:>10} {:>9}  formula",
            "disjunct", "recompiles", "nodes built", "peak", "ms"
        );
        for (key, d) in rows {
            let _ = writeln!(
                out,
                "{:<key_w$} {:>10} {:>12} {:>10} {:>9.2}  {}",
                key,
                d.recompilations,
                d.nodes_built,
                d.peak_nodes,
                d.wall_us as f64 / 1e3,
                d.label
            );
        }
        out
    }

    /// Accumulates another run's statistics into this one — used by the
    /// bench reporter to aggregate a workload into one JSON object. All
    /// runs of one workload share an algorithm, hence a system shape, so
    /// SCC tables of equal length merge positionally; mismatched shapes
    /// concatenate instead.
    pub fn absorb(&mut self, other: &SolveStats) {
        for (name, r) in &other.relations {
            let e = self.relations.entry(name.clone()).or_default();
            e.iterations += r.iterations;
            e.reevaluations += r.reevaluations;
            e.final_nodes = e.final_nodes.max(r.final_nodes);
            e.peak_nodes = e.peak_nodes.max(r.peak_nodes);
            e.scc = e.scc.or(r.scc);
        }
        if self.sccs.len() == other.sccs.len() {
            for (mine, theirs) in self.sccs.iter_mut().zip(&other.sccs) {
                mine.evaluations += theirs.evaluations;
                mine.ordered |= theirs.ordered;
                mine.wall_ms += theirs.wall_ms;
                if mine.dep_sccs.is_empty() {
                    mine.dep_sccs = theirs.dep_sccs.clone();
                }
            }
        } else {
            self.sccs.extend(other.sccs.iter().cloned());
        }
        for (key, d) in &other.disjuncts {
            let e = self.disjuncts.entry(key.clone()).or_default();
            if e.label.is_empty() {
                e.label = d.label.clone();
            }
            e.recompilations += d.recompilations;
            e.nodes_built += d.nodes_built;
            e.peak_nodes = e.peak_nodes.max(d.peak_nodes);
            e.wall_us += d.wall_us;
        }
        self.ordered_reevaluations += other.ordered_reevaluations;
        self.provenance_nodes = self.provenance_nodes.max(other.provenance_nodes);
        self.gcs += other.gcs;
        self.gc_reclaimed_nodes += other.gc_reclaimed_nodes;
        self.gc_pause_ms += other.gc_pause_ms;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.arena_nodes = self.arena_nodes.max(other.arena_nodes);
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.peak_arena_bytes = self.peak_arena_bytes.max(other.peak_arena_bytes);
        self.jobs = self.jobs.max(other.jobs);
        if self.worker_wall_ms.len() < other.worker_wall_ms.len() {
            self.worker_wall_ms.resize(other.worker_wall_ms.len(), 0.0);
        }
        for (mine, theirs) in self.worker_wall_ms.iter_mut().zip(&other.worker_wall_ms) {
            *mine += theirs;
        }
    }
}

/// The solver: owns the manager, the allocation and the interpretations.
#[derive(Debug)]
pub struct Solver {
    pub(crate) manager: Manager,
    pub(crate) system: System,
    pub(crate) alloc: Allocation,
    pub(crate) deps: DepGraph,
    pub(crate) inputs: BTreeMap<String, Bdd>,
    /// Memoized top-level (empty-frozen-environment) interpretations.
    pub(crate) evaluated: BTreeMap<String, Bdd>,
    pub(crate) options: SolveOptions,
    pub(crate) stats: SolveStats,
    /// Rank provenance of every top-level fixpoint evaluation (see
    /// [`SolveOptions::record_provenance`]).
    pub(crate) provenance: Provenance,
}

impl Solver {
    /// Creates a solver for `system` with default options.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (undeclared types).
    pub fn new(system: System) -> Result<Solver, SolveError> {
        Self::with_options(system, SolveOptions::default())
    }

    /// Creates a solver with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (undeclared types) and rejects
    /// semantically invalid options ([`SolveError::Options`]).
    pub fn with_options(system: System, options: SolveOptions) -> Result<Solver, SolveError> {
        options.validate()?;
        let mut manager = Manager::new();
        let alloc = Allocation::build(&mut manager, &system)?;
        let deps = DepGraph::build(&system);
        let mut stats = SolveStats::default();
        for (idx, scc) in deps.sccs().iter().enumerate() {
            let mut dep_sccs: Vec<usize> = scc
                .external_deps
                .iter()
                .map(|&rel| deps.scc_of(rel))
                .filter(|&s| s != idx)
                .collect();
            dep_sccs.sort_unstable();
            dep_sccs.dedup();
            stats.sccs.push(SccStats {
                members: scc.members.iter().map(|&i| deps.name(i).to_string()).collect(),
                recursive: scc.recursive,
                monotone: scc.monotone,
                evaluations: 0,
                ordered: false,
                wall_ms: 0.0,
                dep_sccs,
            });
        }
        Ok(Solver {
            manager,
            system,
            alloc,
            deps,
            inputs: BTreeMap::new(),
            evaluated: BTreeMap::new(),
            options,
            stats,
            provenance: Provenance::default(),
        })
    }

    /// The underlying manager (input relations are built against it).
    pub fn manager(&mut self) -> &mut Manager {
        &mut self.manager
    }

    /// Read-only view of the manager, for non-mutating operations
    /// (`eval`, `cubes`, `sat_one`, node counts).
    pub fn manager_ref(&self) -> &Manager {
        &self.manager
    }

    /// The variable allocation (to look up formal-parameter variables when
    /// building input relations).
    pub fn alloc(&self) -> &Allocation {
        &self.alloc
    }

    /// The system being solved.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The relation-dependency graph driving the worklist strategy.
    pub fn deps(&self) -> &DepGraph {
        &self.deps
    }

    /// The options the solver was built with.
    pub fn options(&self) -> &SolveOptions {
        &self.options
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The rank provenance recorded so far (see
    /// [`SolveOptions::record_provenance`]).
    ///
    /// Snapshots are ⊆-increasing and the last one equals the final
    /// interpretation. The **rank property** witness extraction relies on:
    /// a tuple first appearing in snapshot `i` is derivable (by one
    /// application of the relation's body) from tuples that already appear
    /// in snapshots `< i` — under the round-robin semantics because round
    /// `i` is computed from round `i - 1`'s value, under the worklist
    /// strategy for *single-member* monotone components because each
    /// semi-naive delta is compiled against the previously recorded value,
    /// and under the ordered non-monotone schedule because it reproduces
    /// the reference round sequence exactly. (For multi-member monotone
    /// components the per-relation sequences are still increasing, but
    /// ranks are not comparable across members.)
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Pushes a provenance snapshot for `name` (no-op unless recording).
    pub(crate) fn note_provenance(&mut self, name: &str, value: Bdd) {
        if self.options.record_provenance {
            self.provenance.note(name, value);
        }
    }

    /// Supplies the interpretation of an input relation.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Unknown`] if `name` is not an input relation.
    pub fn set_input(&mut self, name: &str, bdd: Bdd) -> Result<(), SolveError> {
        match self.system.relation(name) {
            Some(rel) if rel.kind == RelationKind::Input => {
                self.inputs.insert(name.to_string(), bdd);
                // Interpretations downstream may change, and every
                // recorded rank with them.
                self.evaluated.clear();
                self.provenance.clear();
                Ok(())
            }
            Some(_) => Err(SolveError::System(format!("`{name}` is not an input relation"))),
            None => Err(SolveError::Unknown(name.to_string())),
        }
    }

    /// Evaluates relation `name` under the configured [`Strategy`] and
    /// returns its interpretation (a BDD over the relation's formal
    /// variables).
    ///
    /// Top-level results are memoized until the next [`Solver::set_input`].
    ///
    /// **Handle lifetime:** when inter-stratum GC is enabled
    /// ([`SolveOptions::gc_threshold`], on by default), a *later* call to
    /// `evaluate`/[`Solver::eval_query`] may compact the arena, remapping
    /// only the solver's own tables. Do not hold a returned [`Bdd`] across
    /// another evaluation — re-read it (it stays memoized, remapped, under
    /// the same name).
    ///
    /// # Errors
    ///
    /// See [`SolveError`].
    pub fn evaluate(&mut self, name: &str) -> Result<Bdd, SolveError> {
        if let Some(&b) = self.evaluated.get(name) {
            return Ok(b);
        }
        let mut span = telemetry::span(Phase::Solve, "evaluate");
        if span.is_recording() {
            span.attr("relation", name);
            span.attr("strategy", self.options.strategy.to_string());
        }
        let b = match self.options.strategy {
            Strategy::RoundRobin => {
                let frozen = BTreeMap::new();
                self.evaluate_nested(name, &frozen, true, None)?
            }
            Strategy::Worklist => self.evaluate_worklist(name)?,
        };
        self.evaluated.insert(name.to_string(), b);
        if self.options.record_provenance {
            self.stats.provenance_nodes = self.provenance.node_footprint(&self.manager);
        }
        self.sync_manager_stats();
        Ok(b)
    }

    /// Copies the manager's kernel counters (cache hit rates, arena size
    /// and bytes) into [`SolveStats`], so `--stats`/`--stats-json` and the
    /// bench reporter surface them without reaching into the manager.
    pub(crate) fn sync_manager_stats(&mut self) {
        let ms = self.manager.stats();
        self.stats.cache_hits = ms.cache_hits;
        self.stats.cache_misses = ms.cache_misses;
        self.stats.gc_pause_ms = ms.gc_pause_ms;
        self.stats.arena_nodes = ms.nodes;
        self.stats.arena_bytes = ms.arena_bytes;
        self.stats.peak_arena_bytes = self.stats.peak_arena_bytes.max(ms.peak_arena_bytes);
    }

    /// Garbage-collects the node arena if it has outgrown the configured
    /// threshold, keeping exactly the live roots: input relations,
    /// memoized interpretations and provenance snapshots. Called by the
    /// worklist engine between SCC strata, where no intermediate handles
    /// are live. The allocation's lazily cached domain constraints are
    /// dropped (they rebuild on demand and re-deduplicate by hash-consing).
    pub(crate) fn maybe_gc(&mut self) {
        self.maybe_gc_with(&mut []);
    }

    /// Threshold-gated collection with *extra* live roots: the handles a
    /// running stratum still needs — member environments, per-disjunct
    /// cache values, domain constraints, accumulated interpretations. The
    /// extras are remapped in place, which is what lets `gc_threshold`
    /// fire in the middle of a long-running SCC instead of only at its
    /// boundary. Returns whether a collection happened.
    pub(crate) fn maybe_gc_with(&mut self, extras: &mut [&mut Bdd]) -> bool {
        let Some(threshold) = self.options.gc_threshold else { return false };
        if self.manager.stats().nodes <= threshold {
            return false;
        }
        self.force_gc_with(extras);
        true
    }

    /// Unconditional collection with extra live roots — the threshold-gated
    /// [`Solver::maybe_gc_with`] and the node-budget degradation ladder
    /// ([`Solver::enforce_node_budget`]) both bottom out here. Computed
    /// caches are dropped as part of the collection.
    pub(crate) fn force_gc_with(&mut self, extras: &mut [&mut Bdd]) {
        let mut roots: Vec<Bdd> = Vec::new();
        roots.extend(self.inputs.values().copied());
        roots.extend(self.evaluated.values().copied());
        roots.extend(self.provenance.roots());
        roots.extend(extras.iter().map(|b| **b));
        let result = self.manager.gc(&roots);
        let mut remapped = result.roots.iter().copied();
        for v in self.inputs.values_mut() {
            *v = remapped.next().expect("gc root count mismatch");
        }
        for v in self.evaluated.values_mut() {
            *v = remapped.next().expect("gc root count mismatch");
        }
        self.provenance.remap(remapped.by_ref());
        for b in extras.iter_mut() {
            **b = remapped.next().expect("gc root count mismatch");
        }
        self.alloc.rebuild_domains(&mut self.manager);
        self.stats.gcs += 1;
        self.stats.gc_reclaimed_nodes += result.reclaimed();
        if telemetry::enabled() {
            telemetry::counter_add("solve.gcs", 1);
            telemetry::gauge_set("solve.gc_pause_ms", self.manager.stats().gc_pause_ms);
        }
    }

    /// Builds the structured limit error for `kind`: cancels the shared
    /// token (so pool peers trip at their next poll), refreshes the kernel
    /// counters, and snapshots the partial statistics into the report.
    pub(crate) fn limit_error(&mut self, kind: LimitKind) -> SolveError {
        self.options.limits.cancel.cancel(kind);
        self.sync_manager_stats();
        SolveError::LimitExceeded(Box::new(LimitReport { kind, partial: self.stats.clone() }))
    }

    /// One poll point: checks the shared token and the deadline. Called
    /// per re-evaluation and per governance round — must stay cheap (an
    /// atomic load; a clock read only when a deadline is configured).
    pub(crate) fn check_limits(&mut self) -> Result<(), SolveError> {
        match self.options.limits.poll() {
            Ok(()) => Ok(()),
            Err(kind) => Err(self.limit_error(kind)),
        }
    }

    /// Accounts one step against the global budget, then polls. The step
    /// counter is shared across pool workers via the token, so the budget
    /// bounds *total* work, not per-worker work.
    pub(crate) fn note_step(&mut self) -> Result<(), SolveError> {
        match self.options.limits.note_steps(1) {
            Ok(()) => Ok(()),
            Err(kind) => Err(self.limit_error(kind)),
        }
    }

    /// The mid-stratum governance round the worklist engine runs where it
    /// used to only consider GC: poll the limits, do a threshold-gated
    /// collection, then hold the arena to the node budget.
    pub(crate) fn govern_with(&mut self, extras: &mut [&mut Bdd]) -> Result<(), SolveError> {
        self.check_limits()?;
        self.maybe_gc_with(extras);
        self.enforce_node_budget(extras)
    }

    /// Cheap pre-check for mid-loop governance: is the arena over the GC
    /// threshold or the node budget right now? One counter read — the
    /// ordered schedule's inner fixpoint calls this every pass and only
    /// pays for live-root collection when it answers `true`.
    pub(crate) fn arena_over_pressure(&self) -> bool {
        let nodes = self.manager.stats().nodes;
        self.options.gc_threshold.is_some_and(|t| nodes > t)
            || self.options.limits.node_budget.is_some_and(|b| nodes > b)
    }

    /// Node-budget enforcement with graceful degradation: when the arena
    /// exceeds [`crate::ResourceLimits::node_budget`], first force a
    /// collection (dropping computed caches and dead intermediates), and
    /// only if the *live* set still exceeds the budget surface
    /// [`LimitKind::NodeBudget`] — with peak-arena diagnostics in the
    /// partial stats.
    pub(crate) fn enforce_node_budget(
        &mut self,
        extras: &mut [&mut Bdd],
    ) -> Result<(), SolveError> {
        let Some(budget) = self.options.limits.node_budget else { return Ok(()) };
        if self.manager.stats().nodes <= budget {
            return Ok(());
        }
        self.force_gc_with(extras);
        if self.manager.stats().nodes <= budget {
            return Ok(());
        }
        Err(self.limit_error(LimitKind::NodeBudget))
    }

    /// Attributes one body compilation of `name` to the statistics.
    pub(crate) fn note_reevaluation(&mut self, name: &str) {
        let scc = self.deps.scc_of_name(name);
        let entry = self.stats.relations.entry(name.to_string()).or_default();
        entry.reevaluations += 1;
        entry.scc = scc;
        if let Some(s) = scc {
            self.stats.sccs[s].evaluations += 1;
        }
        telemetry::counter_add("solve.reevals", 1);
    }

    /// Attributes one disjunct compilation: `part` is the disjunct's index
    /// among `name`'s top-level disjuncts, `nodes` the compiled result's
    /// DAG size, `wall_us` the compile time. Always-on (the cost is a map
    /// insert next to a BDD compilation) so `--profile` needs no re-run.
    pub(crate) fn note_disjunct(
        &mut self,
        name: &str,
        part: usize,
        label: &str,
        nodes: usize,
        wall_us: u64,
    ) {
        let e = self.stats.disjuncts.entry(format!("{name}#{part}")).or_default();
        if e.label.is_empty() {
            e.label = label.to_string();
        }
        e.recompilations += 1;
        e.nodes_built += nodes as u64;
        e.peak_nodes = e.peak_nodes.max(nodes);
        e.wall_us += wall_us;
    }

    /// The paper's `Evaluate(R, Eq)` with a frozen environment.
    ///
    /// `memo_outside`: when `Some(members)`, fixpoint relations *outside*
    /// `members` are resolved from the memoized top-level interpretations
    /// instead of being re-evaluated — the worklist strategy's non-monotone
    /// fallback, where every outer stratum is already fixed. `None` gives
    /// the exact seed semantics (round-robin), which re-derives everything.
    pub(crate) fn evaluate_nested(
        &mut self,
        name: &str,
        frozen: &BTreeMap<String, Bdd>,
        top_level: bool,
        memo_outside: Option<&BTreeSet<String>>,
    ) -> Result<Bdd, SolveError> {
        if let Some(&b) = frozen.get(name) {
            return Ok(b);
        }
        let (body, param_names) = {
            let rel =
                self.system.relation(name).ok_or_else(|| SolveError::Unknown(name.to_string()))?;
            if rel.kind == RelationKind::Input {
                return self
                    .inputs
                    .get(name)
                    .copied()
                    .ok_or_else(|| SolveError::MissingInterpretation(name.to_string()));
            }
            if let Some(members) = memo_outside {
                if !members.contains(name) {
                    return self.evaluated.get(name).copied().ok_or_else(|| {
                        SolveError::Internal(format!(
                            "worklist fallback: outer stratum `{name}` not pre-evaluated"
                        ))
                    });
                }
            }
            let body = rel.body.clone().expect("fixpoint relation has a body");
            let names: Vec<String> = rel.params.iter().map(|(n, _)| n.clone()).collect();
            (body, names)
        };
        let inner_relations = body.relations();

        // Domain constraint of the formals, conjoined into each round so the
        // interpretation stays canonical (no out-of-range junk tuples).
        let mut formals_domain = Bdd::TRUE;
        for i in 0..param_names.len() {
            let inst = self.alloc.formal(name, i).clone();
            let d = self.alloc.domain(&inst);
            formals_domain = self.manager.and(formals_domain, d);
        }

        let rel_name = name.to_string();
        let nparams = param_names.len();
        let mut s = Bdd::FALSE;
        let mut iterations = 0usize;
        let mut peak_nodes = 0usize;
        loop {
            iterations += 1;
            if iterations > self.options.max_iterations {
                return Err(SolveError::Diverged {
                    relation: rel_name,
                    bound: self.options.max_iterations,
                });
            }
            // One governed step per round: deadline/cancellation poll plus
            // step-budget accounting, before any BDD work for the round.
            self.note_step()?;
            let mut round_span = top_level.then(|| {
                let mut sp = telemetry::span(Phase::Solve, "round");
                sp.attr("relation", rel_name.as_str());
                sp.attr("round", iterations);
                sp
            });
            let mut env = frozen.clone();
            env.insert(rel_name.clone(), s);
            // Evaluate every inner relation under the frozen environment.
            let mut interp = env.clone();
            for r in &inner_relations {
                if !interp.contains_key(r) {
                    let v = self.evaluate_nested(r, &env, false, memo_outside)?;
                    interp.insert(r.clone(), v);
                }
            }
            self.note_reevaluation(&rel_name);
            let next = {
                let mut ctx = CompileCtx::new(
                    &mut self.manager,
                    &self.system,
                    &self.alloc,
                    &interp,
                    owner_rel(&rel_name),
                );
                for (i, pname) in param_names.iter().enumerate().take(nparams) {
                    let inst = ctx.alloc.formal(&rel_name, i).clone();
                    ctx.bind(pname, inst);
                }
                let raw = ctx.compile(&body)?;
                ctx.manager.and(raw, formals_domain)
            };
            peak_nodes = peak_nodes.max(self.manager.node_count(next));
            if let Some(sp) = &mut round_span {
                sp.attr("changed", next != s);
            }
            if next == s {
                break;
            }
            s = next;
            if top_level {
                self.note_provenance(name, s);
            }
        }
        if top_level {
            let entry = self.stats.relations.entry(rel_name).or_default();
            entry.iterations = iterations;
            entry.final_nodes = self.manager.node_count(s);
            entry.peak_nodes = peak_nodes;
        }
        Ok(s)
    }

    /// Evaluates a closed Boolean query.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::OpenQuery`] if the query's formula does not
    /// reduce to a constant, plus any evaluation error.
    pub fn eval_query(&mut self, name: &str) -> Result<bool, SolveError> {
        let mut query_span = telemetry::span(Phase::Solve, "query");
        query_span.attr("query", name);
        let q =
            self.system.query(name).ok_or_else(|| SolveError::Unknown(name.to_string()))?.clone();
        // Evaluate every relation the query mentions — all of them BEFORE
        // collecting handles: a later evaluation may garbage-collect the
        // arena, and only the memo table (and provenance) are remapped. The
        // memo table therefore is the one safe place to read handles from.
        for r in q.body.relations() {
            self.evaluate(&r)?;
        }
        let mut interp = BTreeMap::new();
        for r in q.body.relations() {
            let v = *self
                .evaluated
                .get(&r)
                .ok_or_else(|| SolveError::Internal(format!("`{r}` evaluated but not memoized")))?;
            interp.insert(r, v);
        }
        let result = {
            let mut ctx = CompileCtx::new(
                &mut self.manager,
                &self.system,
                &self.alloc,
                &interp,
                owner_query(&q.name),
            );
            ctx.compile(&q.body)?
        };
        self.sync_manager_stats();
        if result.is_true() {
            Ok(true)
        } else if result.is_false() {
            Ok(false)
        } else {
            Err(SolveError::OpenQuery(name.to_string()))
        }
    }

    /// Node count of the most recent interpretation of `name`, if evaluated.
    pub fn interpretation_nodes(&self, name: &str) -> Option<usize> {
        self.evaluated.get(name).map(|&b| self.manager.node_count(b))
    }

    /// Number of satisfying tuples of the interpretation of `name`
    /// (over the relation's formal variables, domain-constrained).
    ///
    /// # Errors
    ///
    /// Evaluates the relation first; see [`Solver::evaluate`].
    pub fn tuple_count(&mut self, name: &str) -> Result<f64, SolveError> {
        let b = self.evaluate(name)?;
        let rel =
            self.system.relation(name).ok_or_else(|| SolveError::Unknown(name.to_string()))?;
        // Count over exactly the formal variables.
        let mut formal_vars = Vec::new();
        for i in 0..rel.params.len() {
            formal_vars.extend(self.alloc.formal(name, i).all_vars());
        }
        // Project onto the formal space: existentially quantify nothing —
        // the interpretation already only mentions formal vars. Count by
        // scaling: sat_count over all manager vars / 2^(others).
        let total_vars = self.manager.var_count();
        let full = self.manager.sat_count(b, total_vars);
        let scale = 2f64.powi((total_vars - formal_vars.len()) as i32);
        Ok(full / scale)
    }
}
