//! The fixed-point solver: the paper's `Evaluate(R, Eq)` operational
//! semantics (§3), executed symbolically over BDDs.
//!
//! To evaluate a relation `R` defined by `R = B`:
//!
//! 1. start with `S := ∅`;
//! 2. in each round, freeze `R ↦ S`, evaluate every relation occurring in
//!    `B` under that frozen environment (recursively, by the same
//!    procedure), then re-evaluate `B` to obtain the next `S`;
//! 3. stop when `S` stabilizes.
//!
//! For positive systems this computes the least fixed point
//! (Tarski–Knaster). For non-positive systems — the optimized entry-forward
//! algorithm needs one — the procedure is still well-defined and the
//! specific equations we run are written to terminate; a configurable
//! iteration bound turns accidental divergence into an error.

use crate::alloc::{owner_query, owner_rel, Allocation};
use crate::compile::CompileCtx;
use crate::system::{RelationKind, System, SystemError};
use getafix_bdd::{Bdd, Manager};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// An input relation was applied but never supplied.
    MissingInterpretation(String),
    /// Evaluation exceeded the iteration bound (non-positive system that
    /// does not stabilize, or the bound is too small).
    Diverged { relation: String, bound: usize },
    /// A query did not reduce to a constant (free variables escaped).
    OpenQuery(String),
    /// Unknown relation or query name.
    Unknown(String),
    /// System-level error surfaced during setup.
    System(String),
    /// Invariant violation (a bug in the caller or in this crate).
    Internal(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::MissingInterpretation(n) => {
                write!(f, "input relation `{n}` has no interpretation")
            }
            SolveError::Diverged { relation, bound } => {
                write!(f, "evaluation of `{relation}` did not stabilize within {bound} rounds")
            }
            SolveError::OpenQuery(n) => write!(f, "query `{n}` has free variables"),
            SolveError::Unknown(n) => write!(f, "unknown relation or query `{n}`"),
            SolveError::System(msg) => write!(f, "{msg}"),
            SolveError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<SystemError> for SolveError {
    fn from(e: SystemError) -> Self {
        SolveError::System(e.to_string())
    }
}

/// Tuning knobs for the solver.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Maximum rounds per relation before declaring divergence.
    pub max_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { max_iterations: 1_000_000 }
    }
}

/// Per-relation evaluation statistics.
#[derive(Debug, Clone, Default)]
pub struct RelationStats {
    /// Outer rounds taken to stabilize (top-level evaluations only).
    pub iterations: usize,
    /// DAG node count of the final interpretation.
    pub final_nodes: usize,
    /// Peak DAG node count of the interpretation across rounds.
    pub peak_nodes: usize,
}

/// Aggregated solver statistics.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Statistics per top-level-evaluated relation.
    pub relations: BTreeMap<String, RelationStats>,
}

/// The solver: owns the manager, the allocation and the interpretations.
#[derive(Debug)]
pub struct Solver {
    manager: Manager,
    system: System,
    alloc: Allocation,
    inputs: BTreeMap<String, Bdd>,
    /// Memoized top-level (empty-frozen-environment) interpretations.
    evaluated: BTreeMap<String, Bdd>,
    options: SolveOptions,
    stats: SolveStats,
}

impl Solver {
    /// Creates a solver for `system` with default options.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (undeclared types).
    pub fn new(system: System) -> Result<Solver, SolveError> {
        Self::with_options(system, SolveOptions::default())
    }

    /// Creates a solver with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (undeclared types).
    pub fn with_options(system: System, options: SolveOptions) -> Result<Solver, SolveError> {
        let mut manager = Manager::new();
        let alloc = Allocation::build(&mut manager, &system)?;
        Ok(Solver {
            manager,
            system,
            alloc,
            inputs: BTreeMap::new(),
            evaluated: BTreeMap::new(),
            options,
            stats: SolveStats::default(),
        })
    }

    /// The underlying manager (input relations are built against it).
    pub fn manager(&mut self) -> &mut Manager {
        &mut self.manager
    }

    /// The variable allocation (to look up formal-parameter variables when
    /// building input relations).
    pub fn alloc(&self) -> &Allocation {
        &self.alloc
    }

    /// The system being solved.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Supplies the interpretation of an input relation.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Unknown`] if `name` is not an input relation.
    pub fn set_input(&mut self, name: &str, bdd: Bdd) -> Result<(), SolveError> {
        match self.system.relation(name) {
            Some(rel) if rel.kind == RelationKind::Input => {
                self.inputs.insert(name.to_string(), bdd);
                // Interpretations downstream may change.
                self.evaluated.clear();
                Ok(())
            }
            Some(_) => Err(SolveError::System(format!("`{name}` is not an input relation"))),
            None => Err(SolveError::Unknown(name.to_string())),
        }
    }

    /// Evaluates relation `name` per the operational semantics and returns
    /// its interpretation (a BDD over the relation's formal variables).
    ///
    /// Top-level results are memoized until the next [`Solver::set_input`].
    ///
    /// # Errors
    ///
    /// See [`SolveError`].
    pub fn evaluate(&mut self, name: &str) -> Result<Bdd, SolveError> {
        if let Some(&b) = self.evaluated.get(name) {
            return Ok(b);
        }
        let frozen = BTreeMap::new();
        let b = self.evaluate_rec(name, &frozen, true)?;
        self.evaluated.insert(name.to_string(), b);
        Ok(b)
    }

    /// The paper's `Evaluate(R, Eq)` with a frozen environment.
    fn evaluate_rec(
        &mut self,
        name: &str,
        frozen: &BTreeMap<String, Bdd>,
        top_level: bool,
    ) -> Result<Bdd, SolveError> {
        if let Some(&b) = frozen.get(name) {
            return Ok(b);
        }
        let (body, param_names) = {
            let rel = self
                .system
                .relation(name)
                .ok_or_else(|| SolveError::Unknown(name.to_string()))?;
            if rel.kind == RelationKind::Input {
                return self
                    .inputs
                    .get(name)
                    .copied()
                    .ok_or_else(|| SolveError::MissingInterpretation(name.to_string()));
            }
            let body = rel.body.clone().expect("fixpoint relation has a body");
            let names: Vec<String> = rel.params.iter().map(|(n, _)| n.clone()).collect();
            (body, names)
        };
        let inner_relations = body.relations();

        // Domain constraint of the formals, conjoined into each round so the
        // interpretation stays canonical (no out-of-range junk tuples).
        let mut formals_domain = Bdd::TRUE;
        for i in 0..param_names.len() {
            let inst = self.alloc.formal(name, i).clone();
            let d = self.alloc.domain(&mut self.manager, &inst);
            formals_domain = self.manager.and(formals_domain, d);
        }

        let rel_name = name.to_string();
        let nparams = param_names.len();
        let mut s = Bdd::FALSE;
        let mut iterations = 0usize;
        let mut peak_nodes = 0usize;
        loop {
            iterations += 1;
            if iterations > self.options.max_iterations {
                return Err(SolveError::Diverged {
                    relation: rel_name,
                    bound: self.options.max_iterations,
                });
            }
            let mut env = frozen.clone();
            env.insert(rel_name.clone(), s);
            // Evaluate every inner relation under the frozen environment.
            let mut interp = env.clone();
            for r in &inner_relations {
                if !interp.contains_key(r) {
                    let v = self.evaluate_rec(r, &env, false)?;
                    interp.insert(r.clone(), v);
                }
            }
            let next = {
                let mut ctx = CompileCtx::new(
                    &mut self.manager,
                    &self.system,
                    &self.alloc,
                    &interp,
                    owner_rel(&rel_name),
                );
                for i in 0..nparams {
                    let inst = ctx.alloc.formal(&rel_name, i).clone();
                    ctx.bind(&param_names[i], inst);
                }
                let raw = ctx.compile(&body)?;
                ctx.manager.and(raw, formals_domain)
            };
            peak_nodes = peak_nodes.max(self.manager.node_count(next));
            if next == s {
                break;
            }
            s = next;
        }
        if top_level {
            let entry = self.stats.relations.entry(rel_name).or_default();
            entry.iterations = iterations;
            entry.final_nodes = self.manager.node_count(s);
            entry.peak_nodes = peak_nodes;
        }
        Ok(s)
    }

    /// Evaluates a closed Boolean query.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::OpenQuery`] if the query's formula does not
    /// reduce to a constant, plus any evaluation error.
    pub fn eval_query(&mut self, name: &str) -> Result<bool, SolveError> {
        let q = self
            .system
            .query(name)
            .ok_or_else(|| SolveError::Unknown(name.to_string()))?
            .clone();
        // Evaluate every relation the query mentions.
        let mut interp = BTreeMap::new();
        for r in q.body.relations() {
            let v = self.evaluate(&r)?;
            interp.insert(r, v);
        }
        let result = {
            let mut ctx = CompileCtx::new(
                &mut self.manager,
                &self.system,
                &self.alloc,
                &interp,
                owner_query(&q.name),
            );
            ctx.compile(&q.body)?
        };
        if result.is_true() {
            Ok(true)
        } else if result.is_false() {
            Ok(false)
        } else {
            Err(SolveError::OpenQuery(name.to_string()))
        }
    }

    /// Node count of the most recent interpretation of `name`, if evaluated.
    pub fn interpretation_nodes(&self, name: &str) -> Option<usize> {
        self.evaluated.get(name).map(|&b| self.manager.node_count(b))
    }

    /// Number of satisfying tuples of the interpretation of `name`
    /// (over the relation's formal variables, domain-constrained).
    ///
    /// # Errors
    ///
    /// Evaluates the relation first; see [`Solver::evaluate`].
    pub fn tuple_count(&mut self, name: &str) -> Result<f64, SolveError> {
        let b = self.evaluate(name)?;
        let rel = self
            .system
            .relation(name)
            .ok_or_else(|| SolveError::Unknown(name.to_string()))?;
        // Count over exactly the formal variables.
        let mut formal_vars = Vec::new();
        for i in 0..rel.params.len() {
            formal_vars.extend(self.alloc.formal(name, i).all_vars());
        }
        // Project onto the formal space: existentially quantify nothing —
        // the interpretation already only mentions formal vars. Count by
        // scaling: sat_count over all manager vars / 2^(others).
        let total_vars = self.manager.var_count();
        let full = self.manager.sat_count(b, total_vars);
        let scale = 2f64.powi((total_vars - formal_vars.len()) as i32);
        Ok(full / scale)
    }
}
