//! Pretty-printing of formulae and systems, round-tripping with `parse.rs`.
//!
//! The point of the paper is that the whole model-checking algorithm fits on
//! a page of readable formulae; the pretty-printer is what puts that page on
//! screen (see the `emit-mu` mode of the CLI).

use crate::ast::{Formula, Term};
use crate::system::{RelationKind, System};
use crate::types::Type;
use std::fmt;

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_formula(self, f, 0)
    }
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "  ")?;
    }
    Ok(())
}

fn write_terms(f: &mut fmt::Formatter<'_>, terms: &[Term]) -> fmt::Result {
    for (i, t) in terms.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{t}")?;
    }
    Ok(())
}

fn write_binders(f: &mut fmt::Formatter<'_>, binders: &[(String, Type)]) -> fmt::Result {
    for (i, (name, ty)) in binders.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{name}: {ty}")?;
    }
    Ok(())
}

/// Writes a formula with explicit parentheses (safe to re-parse).
fn write_formula(formula: &Formula, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    match formula {
        Formula::Const(true) => write!(f, "true"),
        Formula::Const(false) => write!(f, "false"),
        Formula::Atom(t) => write!(f, "{t}"),
        Formula::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
        Formula::App(name, args) => {
            write!(f, "{name}(")?;
            write_terms(f, args)?;
            write!(f, ")")
        }
        Formula::Not(g) => {
            write!(f, "!(")?;
            write_formula(g, f, depth)?;
            write!(f, ")")
        }
        Formula::And(gs) => {
            write!(f, "(")?;
            for (i, g) in gs.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write_formula(g, f, depth)?;
            }
            write!(f, ")")
        }
        Formula::Or(gs) => {
            // Disjunctions are the clause structure of the algorithms;
            // print one clause per line like the paper's appendix.
            write!(f, "(")?;
            for (i, g) in gs.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                    indent(f, depth + 1)?;
                    write!(f, "| ")?;
                }
                write_formula(g, f, depth + 1)?;
            }
            write!(f, ")")
        }
        Formula::Implies(a, b) => {
            write!(f, "(")?;
            write_formula(a, f, depth)?;
            write!(f, " -> ")?;
            write_formula(b, f, depth)?;
            write!(f, ")")
        }
        Formula::Iff(a, b) => {
            write!(f, "(")?;
            write_formula(a, f, depth)?;
            write!(f, " <-> ")?;
            write_formula(b, f, depth)?;
            write!(f, ")")
        }
        Formula::Exists(binders, g) => {
            write!(f, "(exists ")?;
            write_binders(f, binders)?;
            write!(f, ". ")?;
            write_formula(g, f, depth)?;
            write!(f, ")")
        }
        Formula::Forall(binders, g) => {
            write!(f, "(forall ")?;
            write_binders(f, binders)?;
            write!(f, ". ")?;
            write_formula(g, f, depth)?;
            write!(f, ")")
        }
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for name in self.types.names() {
            let ty = self.types.get(name).expect("declared");
            writeln!(f, "type {name} = {ty};")?;
        }
        if self.types.names().next().is_some() {
            writeln!(f)?;
        }
        for rel in &self.relations {
            match rel.kind {
                RelationKind::Input => {
                    write!(f, "input {}(", rel.name)?;
                    write_binders(f, &rel.params)?;
                    writeln!(f, ");")?;
                }
                RelationKind::Fixpoint => {
                    write!(f, "mu {}(", rel.name)?;
                    write_binders(f, &rel.params)?;
                    writeln!(f, ") :=")?;
                    write!(f, "  ")?;
                    write_formula(rel.body.as_ref().expect("fixpoint body"), f, 1)?;
                    writeln!(f, ";")?;
                    writeln!(f)?;
                }
            }
        }
        for q in &self.queries {
            write!(f, "query {} := ", q.name)?;
            write_formula(&q.body, f, 0)?;
            writeln!(f, ";")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_system;

    const EXAMPLE: &str = r#"
        type PC = range 9;
        type Conf = struct { pc: PC, halt: bool };
        input Init(s: Conf);
        input Trans(s: Conf, t: Conf);
        mu Reach(u: Conf) :=
            Init(u)
          | (exists x: Conf. Reach(x) & Trans(x, u) & !(x.halt) & x.pc <= u.pc);
        query hit := exists u: Conf. Reach(u) & u.pc = 5;
    "#;

    #[test]
    fn round_trip_is_stable() {
        let sys1 = parse_system(EXAMPLE).unwrap();
        let printed1 = sys1.to_string();
        let sys2 = parse_system(&printed1).expect("pretty output re-parses");
        let printed2 = sys2.to_string();
        assert_eq!(printed1, printed2, "printing must be a fixed point of parse∘print");
    }

    #[test]
    fn display_shows_clauses_on_lines() {
        let sys = parse_system(EXAMPLE).unwrap();
        let text = sys.to_string();
        assert!(text.contains("mu Reach"));
        assert!(text.contains("| "), "clause separator rendered");
        assert!(text.contains("query hit"));
    }
}
