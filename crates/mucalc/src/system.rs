//! Equation systems: named relations defined by mutually recursive
//! fixed-point equations over input relations.
//!
//! A [`System`] is the unit the solver works on. It corresponds to one
//! "MUCKE file" in the paper's architecture (Figure 1): type declarations,
//! *input* relations (the program templates — `ProgramInt`, `IntoCall`, …),
//! *fixpoint* relations (`mu bool Reachable(Conf s) (...)`) and Boolean
//! *queries*.

use crate::ast::{CmpOp, Formula, Term};
use crate::types::{Type, TypeError, TypeTable};
use std::collections::BTreeMap;
use std::fmt;

/// How a relation gets its interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationKind {
    /// Supplied from outside (a compiled program template).
    Input,
    /// Defined by a least-fixed-point equation.
    Fixpoint,
}

/// A named relation: parameters plus (for fixpoint relations) a body.
#[derive(Debug, Clone)]
pub struct RelationDef {
    /// Relation name, unique in the system.
    pub name: String,
    /// Formal parameters in order.
    pub params: Vec<(String, Type)>,
    /// Input vs fixpoint.
    pub kind: RelationKind,
    /// The defining equation body (fixpoint relations only).
    pub body: Option<Formula>,
}

/// A named closed Boolean query over the system's relations.
#[derive(Debug, Clone)]
pub struct Query {
    /// Query name.
    pub name: String,
    /// A closed formula (all variables bound by quantifiers).
    pub body: Formula,
}

/// Errors detected while building or checking a system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// Relation declared twice.
    DuplicateRelation(String),
    /// Application of an undeclared relation.
    UnknownRelation(String),
    /// Wrong number of arguments in an application.
    Arity { relation: String, expected: usize, got: usize },
    /// Reference to a variable not in scope.
    UnboundVariable(String),
    /// Type mismatch with a human-readable explanation.
    Type(String),
    /// Underlying type-table error.
    Types(TypeError),
    /// A fixpoint relation has no body / an input relation has one.
    BadBody(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::DuplicateRelation(n) => write!(f, "relation `{n}` declared twice"),
            SystemError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            SystemError::Arity { relation, expected, got } => {
                write!(f, "`{relation}` expects {expected} arguments, got {got}")
            }
            SystemError::UnboundVariable(n) => write!(f, "unbound variable `{n}`"),
            SystemError::Type(msg) => write!(f, "type error: {msg}"),
            SystemError::Types(e) => write!(f, "type error: {e}"),
            SystemError::BadBody(n) => write!(f, "relation `{n}` has an inconsistent body"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<TypeError> for SystemError {
    fn from(e: TypeError) -> Self {
        SystemError::Types(e)
    }
}

/// A checked equation system, ready for the solver.
#[derive(Debug, Clone)]
pub struct System {
    pub(crate) types: TypeTable,
    pub(crate) relations: Vec<RelationDef>,
    pub(crate) by_name: BTreeMap<String, usize>,
    pub(crate) queries: Vec<Query>,
}

impl System {
    /// Starts building a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The type table.
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// All relations in declaration order.
    pub fn relations(&self) -> &[RelationDef] {
        &self.relations
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&RelationDef> {
        self.by_name.get(name).map(|&i| &self.relations[i])
    }

    /// All queries in declaration order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Looks up a query by name.
    pub fn query(&self, name: &str) -> Option<&Query> {
        self.queries.iter().find(|q| q.name == name)
    }

    /// Is the equation for `name` positive in every fixpoint relation it
    /// applies (so Tarski's theorem guarantees a least fixed point)?
    ///
    /// Non-positive systems are still *evaluable* — the operational
    /// semantics of §3 gives them meaning (the optimized entry-forward
    /// algorithm depends on this) — but convergence is then a property of
    /// the specific equations, not a theorem.
    pub fn is_positive(&self, name: &str) -> bool {
        let Some(rel) = self.relation(name) else { return true };
        let Some(body) = &rel.body else { return true };
        self.relations
            .iter()
            .filter(|r| r.kind == RelationKind::Fixpoint)
            .all(|r| !body.occurs_negatively(&r.name))
    }
}

/// Incremental builder for [`System`]; validates on [`SystemBuilder::build`].
#[derive(Debug, Default)]
pub struct SystemBuilder {
    types: TypeTable,
    relations: Vec<RelationDef>,
    queries: Vec<Query>,
}

impl SystemBuilder {
    /// Declares a named type.
    ///
    /// # Errors
    ///
    /// See [`TypeTable::declare`].
    pub fn declare_type(
        &mut self,
        name: impl Into<String>,
        ty: Type,
    ) -> Result<&mut Self, SystemError> {
        self.types.declare(name, ty)?;
        Ok(self)
    }

    /// Declares an input relation (interpretation supplied to the solver).
    pub fn input(&mut self, name: impl Into<String>, params: Vec<(String, Type)>) -> &mut Self {
        self.relations.push(RelationDef {
            name: name.into(),
            params,
            kind: RelationKind::Input,
            body: None,
        });
        self
    }

    /// Defines a fixpoint relation by its equation body.
    pub fn define(
        &mut self,
        name: impl Into<String>,
        params: Vec<(String, Type)>,
        body: Formula,
    ) -> &mut Self {
        self.relations.push(RelationDef {
            name: name.into(),
            params,
            kind: RelationKind::Fixpoint,
            body: Some(body),
        });
        self
    }

    /// Adds a closed Boolean query.
    pub fn query(&mut self, name: impl Into<String>, body: Formula) -> &mut Self {
        self.queries.push(Query { name: name.into(), body });
        self
    }

    /// Validates everything and produces the checked [`System`].
    ///
    /// # Errors
    ///
    /// Returns the first scope, arity or type error found.
    pub fn build(self) -> Result<System, SystemError> {
        let mut by_name = BTreeMap::new();
        for (i, rel) in self.relations.iter().enumerate() {
            if by_name.insert(rel.name.clone(), i).is_some() {
                return Err(SystemError::DuplicateRelation(rel.name.clone()));
            }
            match (rel.kind, &rel.body) {
                (RelationKind::Input, None) | (RelationKind::Fixpoint, Some(_)) => {}
                _ => return Err(SystemError::BadBody(rel.name.clone())),
            }
        }
        let sys =
            System { types: self.types, relations: self.relations, by_name, queries: self.queries };
        // Scope/type check every body and query.
        for rel in &sys.relations {
            if let Some(body) = &rel.body {
                let mut env: Vec<(String, Type)> = rel.params.clone();
                check_formula(&sys, body, &mut env)?;
            }
        }
        for q in &sys.queries {
            let mut env = Vec::new();
            check_formula(&sys, &q.body, &mut env)?;
        }
        Ok(sys)
    }
}

/// The type of a term in the environment, if well-formed.
fn term_type(
    sys: &System,
    term: &Term,
    env: &[(String, Type)],
) -> Result<Option<Type>, SystemError> {
    match term {
        Term::Int(_) => Ok(None),
        Term::Var { name, path } => {
            let (_, ty) = env
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .ok_or_else(|| SystemError::UnboundVariable(name.clone()))?;
            Ok(Some(sys.types.project(ty, path)?))
        }
    }
}

fn check_formula(
    sys: &System,
    f: &Formula,
    env: &mut Vec<(String, Type)>,
) -> Result<(), SystemError> {
    match f {
        Formula::Const(_) => Ok(()),
        Formula::Atom(t) => {
            let ty = term_type(sys, t, env)?
                .ok_or_else(|| SystemError::Type(format!("integer `{t}` used as an atom")))?;
            let leaves = sys.types.flatten(&ty)?;
            if leaves.len() == 1 && leaves[0].width == 1 && leaves[0].bound.is_none() {
                Ok(())
            } else {
                Err(SystemError::Type(format!("atom `{t}` is not a single bit")))
            }
        }
        Formula::Cmp(a, op, b) => {
            let ta = term_type(sys, a, env)?;
            let tb = term_type(sys, b, env)?;
            match (ta, tb) {
                (None, None) => Err(SystemError::Type(format!(
                    "cannot compare two integer literals `{a}` and `{b}`"
                ))),
                (Some(ty), None) | (None, Some(ty)) => {
                    let leaves = sys.types.flatten(&ty)?;
                    if leaves.len() != 1 {
                        return Err(SystemError::Type(format!(
                            "integer comparison on a non-scalar term in `{a} {op} {b}`"
                        )));
                    }
                    Ok(())
                }
                (Some(ta), Some(tb)) => {
                    if !sys.types.same(&ta, &tb) {
                        return Err(SystemError::Type(format!(
                            "comparison `{a} {op} {b}` between incompatible types `{ta}` and `{tb}`"
                        )));
                    }
                    if matches!(op, CmpOp::Lt | CmpOp::Le) {
                        let leaves = sys.types.flatten(&ta)?;
                        if leaves.len() != 1 {
                            return Err(SystemError::Type(format!(
                                "ordered comparison `{a} {op} {b}` on a non-scalar type"
                            )));
                        }
                    }
                    Ok(())
                }
            }
        }
        Formula::App(name, args) => {
            let rel =
                sys.relation(name).ok_or_else(|| SystemError::UnknownRelation(name.clone()))?;
            if rel.params.len() != args.len() {
                return Err(SystemError::Arity {
                    relation: name.clone(),
                    expected: rel.params.len(),
                    got: args.len(),
                });
            }
            for (arg, (pname, pty)) in args.iter().zip(&rel.params) {
                match term_type(sys, arg, env)? {
                    Some(aty) => {
                        if !sys.types.same(&aty, pty) {
                            return Err(SystemError::Type(format!(
                                "argument `{arg}` of `{name}` has type `{aty}`, \
                                 parameter `{pname}` expects `{pty}`"
                            )));
                        }
                    }
                    None => {
                        // Integer literal argument: parameter must be scalar.
                        let leaves = sys.types.flatten(pty)?;
                        if leaves.len() != 1 {
                            return Err(SystemError::Type(format!(
                                "integer argument `{arg}` for non-scalar parameter `{pname}` of `{name}`"
                            )));
                        }
                    }
                }
            }
            Ok(())
        }
        Formula::Not(g) => check_formula(sys, g, env),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                check_formula(sys, g, env)?;
            }
            Ok(())
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            check_formula(sys, a, env)?;
            check_formula(sys, b, env)
        }
        Formula::Exists(binders, g) | Formula::Forall(binders, g) => {
            for (name, ty) in binders {
                // Validate the type exists/flattens.
                sys.types.flatten(ty)?;
                env.push((name.clone(), ty.clone()));
            }
            let r = check_formula(sys, g, env);
            for _ in binders {
                env.pop();
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reach_system() -> SystemBuilder {
        let mut b = System::builder();
        b.declare_type("State", Type::Bits(3)).unwrap();
        b.input("Init", vec![("s".into(), Type::named("State"))]);
        b.input(
            "Trans",
            vec![("s".into(), Type::named("State")), ("t".into(), Type::named("State"))],
        );
        b.define(
            "Reach",
            vec![("u".into(), Type::named("State"))],
            Formula::or(vec![
                Formula::app("Init", vec![Term::var("u")]),
                Formula::exists(
                    vec![("x".into(), Type::named("State"))],
                    Formula::and(vec![
                        Formula::app("Reach", vec![Term::var("x")]),
                        Formula::app("Trans", vec![Term::var("x"), Term::var("u")]),
                    ]),
                ),
            ]),
        );
        b
    }

    #[test]
    fn build_reach_ok() {
        let sys = reach_system().build().unwrap();
        assert_eq!(sys.relations().len(), 3);
        assert!(sys.is_positive("Reach"));
        assert_eq!(sys.relation("Reach").unwrap().kind, RelationKind::Fixpoint);
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut b = System::builder();
        b.declare_type("S", Type::Bool).unwrap();
        b.define(
            "R",
            vec![("x".into(), Type::named("S"))],
            Formula::app("Missing", vec![Term::var("x")]),
        );
        assert_eq!(b.build().unwrap_err(), SystemError::UnknownRelation("Missing".into()));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = System::builder();
        b.declare_type("S", Type::Bool).unwrap();
        b.input("I", vec![("x".into(), Type::named("S"))]);
        b.define(
            "R",
            vec![("x".into(), Type::named("S"))],
            Formula::app("I", vec![Term::var("x"), Term::var("x")]),
        );
        assert!(matches!(b.build().unwrap_err(), SystemError::Arity { .. }));
    }

    #[test]
    fn unbound_variable_rejected() {
        let mut b = System::builder();
        b.declare_type("S", Type::Bool).unwrap();
        b.input("I", vec![("x".into(), Type::named("S"))]);
        b.define(
            "R",
            vec![("x".into(), Type::named("S"))],
            Formula::app("I", vec![Term::var("y")]),
        );
        assert_eq!(b.build().unwrap_err(), SystemError::UnboundVariable("y".into()));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = System::builder();
        b.declare_type("A", Type::Bits(2)).unwrap();
        b.declare_type("B", Type::Bits(3)).unwrap();
        b.input("I", vec![("x".into(), Type::named("A"))]);
        b.define(
            "R",
            vec![("y".into(), Type::named("B"))],
            Formula::app("I", vec![Term::var("y")]),
        );
        assert!(matches!(b.build().unwrap_err(), SystemError::Type(_)));
    }

    #[test]
    fn non_positive_detected() {
        let mut b = System::builder();
        b.declare_type("S", Type::Bool).unwrap();
        b.define(
            "R",
            vec![("x".into(), Type::named("S"))],
            Formula::not(Formula::app("R", vec![Term::var("x")])),
        );
        let sys = b.build().unwrap();
        assert!(!sys.is_positive("R"));
    }

    #[test]
    fn field_projection_checked() {
        let mut b = System::builder();
        b.declare_type("PC", Type::Range(5)).unwrap();
        b.declare_type(
            "Conf",
            Type::Struct(vec![("pc".into(), Type::named("PC")), ("b".into(), Type::Bool)]),
        )
        .unwrap();
        b.input("AtPc", vec![("p".into(), Type::named("PC"))]);
        b.define(
            "R",
            vec![("s".into(), Type::named("Conf"))],
            Formula::and(vec![
                Formula::app("AtPc", vec![Term::field("s", "pc")]),
                Formula::Atom(Term::field("s", "b")),
            ]),
        );
        assert!(b.build().is_ok());
    }

    #[test]
    fn bad_projection_rejected() {
        let mut b = System::builder();
        b.declare_type("Conf", Type::Struct(vec![("b".into(), Type::Bool)])).unwrap();
        b.define(
            "R",
            vec![("s".into(), Type::named("Conf"))],
            Formula::Atom(Term::field("s", "nope")),
        );
        assert!(matches!(b.build().unwrap_err(), SystemError::Types(_)));
    }

    #[test]
    fn ordered_cmp_requires_scalar() {
        let mut b = System::builder();
        b.declare_type("K", Type::Range(4)).unwrap();
        b.declare_type(
            "Pair",
            Type::Struct(vec![("a".into(), Type::named("K")), ("b".into(), Type::named("K"))]),
        )
        .unwrap();
        b.define(
            "R",
            vec![("p".into(), Type::named("Pair"))],
            Formula::lt(Term::var("p"), Term::var("p")),
        );
        assert!(matches!(b.build().unwrap_err(), SystemError::Type(_)));
    }
}
