//! Static relation-dependency analysis of an equation system.
//!
//! The worklist solver (`worklist.rs`) schedules evaluation from the
//! *dependency graph* of the system's fixpoint relations: relation `R`
//! depends on `S` when `S` is applied somewhere in `R`'s defining body.
//! This module extracts that graph, contracts it to strongly connected
//! components (Tarjan), and orders the components topologically so that a
//! component is only solved after everything it reads from is already
//! fixed — the "dependency-ordered iteration over equation systems" of
//! Kuncak–Leino, lifted from boolean equations to first-order relations.
//!
//! Each SCC is additionally classified:
//!
//! * **recursive** — more than one member, or a self-application; a
//!   non-recursive component needs exactly one evaluation pass;
//! * **monotone** — no member's body applies another member under an odd
//!   number of negations. Monotone recursive components have a least fixed
//!   point by Tarski–Knaster, so *any* fair chaotic iteration converges to
//!   it; non-monotone components (the §4.3 `Relevant` pattern) only have
//!   the paper's §3 operational semantics and must be iterated in the exact
//!   nested order that semantics prescribes.

use crate::system::{RelationKind, System};
use std::collections::{BTreeMap, BTreeSet};

/// One strongly connected component of the relation-dependency graph.
#[derive(Debug, Clone)]
pub struct Scc {
    /// Member relation indices (resolve with [`DepGraph::name`]).
    pub members: Vec<usize>,
    /// Does any member depend on a member (including itself)?
    pub recursive: bool,
    /// Is every intra-component application positive?
    pub monotone: bool,
    /// Fixpoint relations outside the component that members apply.
    pub external_deps: Vec<usize>,
}

/// The evaluation plan of a non-monotone component that fits the §4.3
/// **frontier pattern** (see [`DepGraph::ordered_plan`]): one *anchor*
/// relation plays the role of the frozen outer fixpoint, and the remaining
/// members — which form a DAG modulo self-loops once the anchor is removed
/// — are re-derived from it in dependency-rank order each round. Iterating
/// on this plan reproduces the §3 nested semantics round for round while
/// letting the engine skip every recompilation whose inputs did not
/// change.
#[derive(Debug, Clone)]
pub struct OrderedPlan {
    /// The anchor relation (the evaluation root; its value is the frozen
    /// environment of each round).
    pub anchor: usize,
    /// Non-anchor members in dependency order (dependencies first): the
    /// rank order one round of the schedule evaluates them in.
    pub ranks: Vec<usize>,
    /// `self_recursive[i]`: does `ranks[i]` apply itself (and therefore
    /// need an inner fixpoint from `⊥` each round)?
    pub self_recursive: Vec<bool>,
}

/// The relation-dependency graph of a [`System`], with its condensation.
#[derive(Debug)]
pub struct DepGraph {
    /// Fixpoint relation names, in system declaration order.
    names: Vec<String>,
    /// Name → index in `names`.
    index: BTreeMap<String, usize>,
    /// `deps[i]`: indices of fixpoint relations applied in the body of `i`.
    deps: Vec<BTreeSet<usize>>,
    /// `negative[i]`: the subset of `deps[i]` occurring under an odd number
    /// of negations in the body of `i`.
    negative: Vec<BTreeSet<usize>>,
    /// Components in topological order: every dependency of a component
    /// lives in an earlier (or the same) component.
    sccs: Vec<Scc>,
    /// Relation index → index of its component in `sccs`.
    scc_of: Vec<usize>,
}

impl DepGraph {
    /// Extracts the dependency graph of `system`'s fixpoint relations.
    pub fn build(system: &System) -> DepGraph {
        let mut names = Vec::new();
        let mut index = BTreeMap::new();
        for rel in system.relations() {
            if rel.kind == RelationKind::Fixpoint {
                index.insert(rel.name.clone(), names.len());
                names.push(rel.name.clone());
            }
        }
        let n = names.len();
        let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut negative: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (i, name) in names.iter().enumerate() {
            let rel = system.relation(name).expect("indexed relation exists");
            let body = rel.body.as_ref().expect("fixpoint relation has a body");
            for applied in body.relations() {
                if let Some(&j) = index.get(&applied) {
                    deps[i].insert(j);
                    if body.occurs_negatively(&applied) {
                        negative[i].insert(j);
                    }
                }
            }
        }

        let (sccs_members, scc_of) = tarjan(n, &deps);
        let sccs = sccs_members
            .into_iter()
            .map(|members| {
                let mset: BTreeSet<usize> = members.iter().copied().collect();
                let recursive = members.len() > 1 || members.iter().any(|&i| deps[i].contains(&i));
                let monotone =
                    members.iter().all(|&i| negative[i].intersection(&mset).next().is_none());
                let mut external: BTreeSet<usize> = BTreeSet::new();
                for &i in &members {
                    external.extend(deps[i].difference(&mset).copied());
                }
                Scc { members, recursive, monotone, external_deps: external.into_iter().collect() }
            })
            .collect();

        DepGraph { names, index, deps, negative, sccs, scc_of }
    }

    /// Number of fixpoint relations.
    pub fn relation_count(&self) -> usize {
        self.names.len()
    }

    /// The name of relation `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// The index of a fixpoint relation, if it is one.
    pub fn relation_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Direct fixpoint dependencies of relation `i`.
    pub fn deps(&self, i: usize) -> &BTreeSet<usize> {
        &self.deps[i]
    }

    /// The subset of `deps(i)` applied under an odd number of negations.
    pub fn negative_deps(&self, i: usize) -> &BTreeSet<usize> {
        &self.negative[i]
    }

    /// The components in topological order (dependencies first).
    pub fn sccs(&self) -> &[Scc] {
        &self.sccs
    }

    /// The component index of relation `i`.
    pub fn scc_of(&self, i: usize) -> usize {
        self.scc_of[i]
    }

    /// The component index of a fixpoint relation by name.
    pub fn scc_of_name(&self, name: &str) -> Option<usize> {
        self.relation_index(name).map(|i| self.scc_of(i))
    }

    /// Classifies component `scc` as an instance of the §4.3 **frontier
    /// pattern** anchored at `anchor` (which must be a member): the
    /// component minus the anchor must be acyclic apart from self-loops.
    /// Under that shape, each §3 round of `Evaluate(anchor)` derives every
    /// other member as a *function of the frozen anchor value* — single
    /// compilations for DAG members, an inner fixpoint from `⊥` for
    /// self-recursive ones — so an ordered change-driven schedule
    /// reproduces the nested reference semantics exactly (the argument
    /// does not depend on edge polarities at all; negative edges are
    /// simply reads of already-fixed values).
    ///
    /// Returns the plan (non-anchor members topologically sorted,
    /// dependencies first), or `None` when two non-anchor members are
    /// mutually recursive — then only the nested semantics applies.
    pub fn ordered_plan(&self, scc: usize, anchor: usize) -> Option<OrderedPlan> {
        let members = &self.sccs[scc].members;
        if !members.contains(&anchor) {
            return None;
        }
        let rest: Vec<usize> = members.iter().copied().filter(|&m| m != anchor).collect();
        let in_rest: BTreeSet<usize> = rest.iter().copied().collect();
        // Kahn's algorithm over intra-component edges, anchor and
        // self-loops removed.
        let mut indegree: BTreeMap<usize, usize> = rest.iter().map(|&m| (m, 0)).collect();
        for &m in &rest {
            for &d in &self.deps[m] {
                if d != m && in_rest.contains(&d) {
                    *indegree.get_mut(&m).expect("member") += 1;
                }
            }
        }
        let mut ready: Vec<usize> = rest.iter().copied().filter(|m| indegree[m] == 0).collect();
        let mut ranks = Vec::with_capacity(rest.len());
        while let Some(m) = ready.pop() {
            ranks.push(m);
            for &n in &rest {
                if n != m && self.deps[n].contains(&m) {
                    let e = indegree.get_mut(&n).expect("member");
                    *e -= 1;
                    if *e == 0 {
                        ready.push(n);
                    }
                }
            }
        }
        if ranks.len() != rest.len() {
            return None; // a cycle among non-anchor members
        }
        let self_recursive = ranks.iter().map(|&m| self.deps[m].contains(&m)).collect();
        Some(OrderedPlan { anchor, ranks, self_recursive })
    }

    /// All relation indices transitively needed to evaluate `root`
    /// (including `root` itself).
    pub fn transitive_deps(&self, root: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            if seen.insert(i) {
                stack.extend(self.deps[i].iter().copied());
            }
        }
        seen
    }
}

/// Iterative Tarjan SCC. Edges point from a relation to its dependencies,
/// so components are emitted dependencies-first — already the evaluation
/// order the solver wants.
fn tarjan(n: usize, deps: &[BTreeSet<usize>]) -> (Vec<Vec<usize>>, Vec<usize>) {
    const UNSET: usize = usize::MAX;
    let mut indexes = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut scc_of = vec![UNSET; n];

    // Explicit DFS frames: (node, iterator position over deps).
    for start in 0..n {
        if indexes[start] != UNSET {
            continue;
        }
        let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succs: Vec<usize> = deps[start].iter().copied().collect();
        indexes[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        frames.push((start, succs, 0));

        while let Some(&mut (v, ref succs, ref mut pos)) = frames.last_mut() {
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if indexes[w] == UNSET {
                    indexes[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let wsuccs: Vec<usize> = deps[w].iter().copied().collect();
                    frames.push((w, wsuccs, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(indexes[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == indexes[v] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.sort_unstable();
                    sccs.push(members);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_system;

    fn graph(src: &str) -> DepGraph {
        DepGraph::build(&parse_system(src).unwrap())
    }

    #[test]
    fn single_self_recursive_relation() {
        let g = graph(
            r#"
            type S = range 4;
            input Init(s: S);
            input Trans(s: S, t: S);
            mu Reach(u: S) :=
                Init(u) | (exists x: S. Reach(x) & Trans(x, u));
            "#,
        );
        assert_eq!(g.relation_count(), 1);
        assert_eq!(g.sccs().len(), 1);
        let scc = &g.sccs()[0];
        assert!(scc.recursive && scc.monotone);
        assert!(scc.external_deps.is_empty());
    }

    #[test]
    fn stratified_chain_is_topologically_ordered() {
        let g = graph(
            r#"
            type S = range 4;
            input I(s: S);
            mu A(s: S) := I(s) | A(s);
            mu B(s: S) := A(s);
            mu C(s: S) := B(s) | C(s);
            "#,
        );
        assert_eq!(g.sccs().len(), 3);
        // Dependencies first: A's component before B's before C's.
        let pos = |name: &str| g.scc_of_name(name).unwrap();
        assert!(pos("A") < pos("B"));
        assert!(pos("B") < pos("C"));
        // B is non-recursive; A and C are.
        assert!(!g.sccs()[pos("B")].recursive);
        assert!(g.sccs()[pos("A")].recursive);
        // C's component reads B from outside.
        assert_eq!(g.sccs()[pos("C")].external_deps, vec![g.relation_index("B").unwrap()]);
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        let g = graph(
            r#"
            type N = range 4;
            input Zero(n: N);
            input Succ(n: N, m: N);
            mu Even(n: N) := Zero(n) | (exists m: N. Odd(m) & Succ(m, n));
            mu Odd(n: N) := exists m: N. Even(m) & Succ(m, n);
            "#,
        );
        assert_eq!(g.sccs().len(), 1);
        let scc = &g.sccs()[0];
        assert_eq!(scc.members.len(), 2);
        assert!(scc.recursive && scc.monotone);
    }

    #[test]
    fn negative_intra_component_edge_is_nonmonotone() {
        let g = graph(
            r#"
            type Fr = range 2;
            type S = range 4;
            input Init(s: S);
            mu R(fr: Fr, s: S) := (fr = 1 & Init(s)) | R(1, s) | (fr = 1 & Frontier(s));
            mu Frontier(s: S) := R(1, s) & !R(0, s);
            "#,
        );
        assert_eq!(g.sccs().len(), 1, "R and Frontier are mutually recursive");
        assert!(!g.sccs()[0].monotone);
        let r = g.relation_index("Frontier").unwrap();
        assert_eq!(g.negative_deps(r).len(), 1);
    }

    #[test]
    fn negation_outside_the_component_keeps_monotonicity() {
        let g = graph(
            r#"
            type S = range 4;
            input I(s: S);
            mu Base(s: S) := I(s) | Base(s);
            mu Up(s: S) := (Base(s) & !Dead(s)) | Up(s);
            mu Dead(s: S) := Base(s);
            "#,
        );
        let up = g.scc_of_name("Up").unwrap();
        assert!(g.sccs()[up].monotone, "negation of an earlier stratum is fine");
        let dead = g.scc_of_name("Dead").unwrap();
        assert!(dead < up);
    }

    #[test]
    fn frontier_pattern_is_classified_and_ranked() {
        // The ef-opt shape: anchor R; Frontier/New form a DAG (New reads
        // Frontier) with a self-loop on New.
        let g = graph(
            r#"
            type Fr = range 2;
            type S = range 4;
            input Init(s: S);
            input Edge(s: S, t: S);
            mu R(fr: Fr, s: S) := (fr = 1 & Init(s)) | R(1, s) | (fr = 1 & New(s));
            mu Frontier(s: S) := R(1, s) & !R(0, s);
            mu New(s: S) :=
                Frontier(s) | (exists x: S. New(x) & Edge(x, s));
            "#,
        );
        assert_eq!(g.sccs().len(), 1);
        assert!(!g.sccs()[0].monotone);
        let r = g.relation_index("R").unwrap();
        let plan = g.ordered_plan(0, r).expect("frontier pattern anchored at R");
        assert_eq!(plan.anchor, r);
        // Dependencies first: Frontier before New.
        let names: Vec<&str> = plan.ranks.iter().map(|&i| g.name(i)).collect();
        assert_eq!(names, vec!["Frontier", "New"]);
        assert_eq!(plan.self_recursive, vec![false, true]);
        // Anchored at Frontier the rest (R ↔ New through each other's
        // bodies? R reads New, New reads Frontier only) is still a DAG:
        // R → New is the only edge, so a plan exists there too.
        let f = g.relation_index("Frontier").unwrap();
        let plan_f = g.ordered_plan(0, f).expect("anchored at Frontier");
        let names_f: Vec<&str> = plan_f.ranks.iter().map(|&i| g.name(i)).collect();
        assert_eq!(names_f, vec!["New", "R"]);
    }

    #[test]
    fn mutually_recursive_satellites_defeat_the_pattern() {
        // Removing the anchor leaves A ↔ B mutually recursive: no ordered
        // plan, the nested reference semantics is the only meaning.
        let g = graph(
            r#"
            type S = range 4;
            input I(s: S);
            mu Anchor(s: S) := I(s) | A(s) | (Anchor(s) & !B(s));
            mu A(s: S) := B(s) | Anchor(s);
            mu B(s: S) := A(s);
            "#,
        );
        assert_eq!(g.sccs().len(), 1);
        let anchor = g.relation_index("Anchor").unwrap();
        assert!(g.ordered_plan(0, anchor).is_none());
        // A non-member anchor is rejected outright.
        assert!(g.ordered_plan(0, 99).is_none());
    }

    #[test]
    fn transitive_deps_cover_the_cone() {
        let g = graph(
            r#"
            type S = range 4;
            input I(s: S);
            mu A(s: S) := I(s) | A(s);
            mu B(s: S) := A(s);
            mu C(s: S) := B(s);
            mu Unrelated(s: S) := I(s);
            "#,
        );
        let c = g.relation_index("C").unwrap();
        let cone = g.transitive_deps(c);
        assert_eq!(cone.len(), 3);
        assert!(!cone.contains(&g.relation_index("Unrelated").unwrap()));
    }
}
