//! Parallel stratified solving: a wave scheduler over the SCC dependency
//! levels, a scoped worker pool where every worker owns a **private** BDD
//! manager, and cross-manager result shipping via
//! [`Manager::export`]/[`Manager::import`].
//!
//! # Why waves, and why private managers
//!
//! The worklist engine already solves components dependencies-first; what
//! stratification *also* gives away for free is independence: two SCCs on
//! the same dependency level never read each other, so they can solve
//! concurrently — each against the already-finished strata below. The BDD
//! kernel, however, is aggressively single-threaded (hash-consed arena,
//! lossy computed caches), and sharing one manager under a lock would
//! serialize exactly the operations we are trying to overlap. So each
//! worker is a full [`Solver`] over the *same* system with its own
//! manager: [`crate::Allocation::build`] is deterministic, hence every
//! worker speaks the same variable universe and packages transfer without
//! renaming.
//!
//! # Determinism
//!
//! Verdicts, interpretations (as truth tables) and re-evaluation counts
//! are **bit-identical at any job count**. The argument: a worker solving
//! an SCC sees exactly the interpretations the sequential solver would —
//! synced at the wave boundary, re-canonicalized by import — and every
//! schedule inside an SCC (chaotic worklist, ordered rounds, nested
//! reference) is a deterministic function of BDD *equality*, which
//! canonicity makes manager-independent. Only wall-clock and kernel
//! cache/arena/GC counters may differ across job counts.
//!
//! [`Manager::export`]: getafix_bdd::Manager::export
//! [`Manager::import`]: getafix_bdd::Manager::import

use crate::limits::LimitKind;
use crate::solve::{SolveError, SolveOptions, SolveStats, Solver};
use getafix_bdd::{Bdd, BddPackage};
use getafix_telemetry::{self as telemetry, Phase, TraceData};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Renders a caught panic payload for [`SolveError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Resolves a [`SolveOptions::jobs`] value to a concrete worker count:
/// `0` means "all available parallelism" (falling back to 1 when the
/// machine will not say), anything else passes through.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Applies `f` to every item on a scoped pool of `jobs` threads and
/// returns the results **in item order**. Items are claimed from a shared
/// atomic cursor, so long items do not convoy short ones; `jobs <= 1` (or
/// a single item) degenerates to a plain in-order loop on the calling
/// thread. `f` receives `(index, item)`.
///
/// Telemetry bridges automatically: when the calling thread has a
/// collector installed, each pool thread records under its own track
/// (tid `2 + worker`, sharing the caller's epoch) and everything is
/// absorbed back — spans appended, counters added — before this returns.
///
/// Worker panics propagate to the caller (the scope joins all threads
/// first).
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let epoch = telemetry::epoch();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let traces: Vec<Mutex<Option<TraceData>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for wi in 0..jobs {
            let (f, slots, results, traces, next) = (&f, &slots, &results, &traces, &next);
            s.spawn(move || {
                if let Some(epoch) = epoch {
                    telemetry::install_worker(2 + wi as u64, epoch);
                }
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("no panic holds a slot lock")
                        .take()
                        .expect("each item claimed once");
                    let r = f(i, item);
                    *results[i].lock().expect("no panic holds a result lock") = Some(r);
                }
                if epoch.is_some() {
                    *traces[wi].lock().expect("no panic holds a trace lock") = telemetry::take();
                }
            });
        }
    });
    for t in traces {
        if let Some(data) = t.into_inner().expect("workers joined before reading traces") {
            telemetry::absorb(data);
        }
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("workers joined before reading results")
                .expect("worker filled slot")
        })
        .collect()
}

/// The wave schedule of one demanded cone: SCC indices grouped by
/// dependency level (everything a level-`k` component reads lives on a
/// level `< k`), heaviest-first within a level so the LPT assignment
/// starts long poles early.
///
/// Weights come from [`SolveStats::disjuncts`] — a *prior* profile of the
/// same system when one is available (the bench reporter's repeat runs,
/// a re-solve after [`Solver::set_input`]). On a fresh solver all weights
/// are zero and the order degrades to ascending SCC index, which is still
/// deterministic; weights steer wall-clock only, never results.
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    waves: Vec<Vec<usize>>,
}

/// The scheduling weight of one component: recompilation count and node
/// pressure of its members' disjuncts, from a prior profile. Wall time is
/// deliberately **not** consulted — the plan must be a deterministic
/// function of the profile, and wall time is not.
fn scc_weight(stats: &SolveStats, idx: usize) -> u64 {
    stats.sccs[idx]
        .members
        .iter()
        .map(|m| {
            let prefix = format!("{m}#");
            stats
                .disjuncts
                .range(prefix.clone()..)
                .take_while(|(k, _)| k.starts_with(prefix.as_str()))
                .map(|(_, d)| d.recompilations as u64 * 1_000 + d.nodes_built)
                .sum::<u64>()
        })
        .sum()
}

impl ParallelPlan {
    /// Builds the wave schedule for the `demanded` SCC indices. Relies on
    /// [`SolveStats::sccs`] being populated for the whole system (done at
    /// solver construction) with `dep_sccs` edges; SCC indices ascend in
    /// dependency order, so one ascending pass settles the levels.
    pub fn new(stats: &SolveStats, demanded: &BTreeSet<usize>) -> ParallelPlan {
        let mut level: BTreeMap<usize, usize> = BTreeMap::new();
        for &idx in demanded {
            let l = stats.sccs[idx]
                .dep_sccs
                .iter()
                .filter(|d| demanded.contains(d))
                .map(|d| level[d] + 1)
                .max()
                .unwrap_or(0);
            level.insert(idx, l);
        }
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for (&idx, &l) in &level {
            if waves.len() <= l {
                waves.resize(l + 1, Vec::new());
            }
            waves[l].push(idx);
        }
        for wave in &mut waves {
            wave.sort_by_key(|&i| (std::cmp::Reverse(scc_weight(stats, i)), i));
        }
        ParallelPlan { waves }
    }

    /// The waves, in solve order; within a wave, heaviest-first.
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// The widest wave — an upper bound on usable workers.
    pub fn max_wave_len(&self) -> usize {
        self.waves.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// What one worker ships back from a wave: the names it solved and their
/// interpretations, packaged from its private manager.
struct WaveOutput {
    names: Vec<String>,
    package: BddPackage,
}

impl Solver {
    /// The parallel counterpart of the sequential stratum loop in
    /// `evaluate_worklist`: solve `scc_order` in dependency waves, fanning
    /// each wave's pending components out over `jobs` workers. Workers
    /// persist across waves (their managers keep the imported strata, so
    /// later waves re-sync only the delta); waves with at most one pending
    /// component run inline on the coordinator — the exact sequential
    /// path, paying no transfer.
    pub(crate) fn solve_strata_parallel(
        &mut self,
        scc_order: &BTreeSet<usize>,
        demanded: &BTreeMap<usize, BTreeSet<usize>>,
        jobs: usize,
    ) -> Result<(), SolveError> {
        let plan = ParallelPlan::new(&self.stats, scc_order);
        let mut workers: Vec<Solver> = Vec::new();
        // Names every worker already holds. Grows only at wave starts, so
        // it stays uniform across workers; a worker re-importing a name it
        // solved itself is a no-op (canonicity: same function, same handle).
        let mut synced: BTreeSet<String> = BTreeSet::new();
        let mut strata_done = 0usize;
        let epoch = telemetry::epoch();

        for (wave_no, wave) in plan.waves().iter().enumerate() {
            let mut pending: Vec<(usize, BTreeSet<usize>)> = Vec::new();
            for &idx in wave {
                let roots = demanded.get(&idx).cloned().unwrap_or_default();
                if self.stratum_pending(idx, &roots) {
                    pending.push((idx, roots));
                }
            }
            let skipped = wave.len() - pending.len();
            strata_done += wave.len();
            if pending.len() <= 1 {
                for (idx, roots) in pending {
                    self.solve_stratum(idx, &roots)?;
                }
                self.note_stratum_done(strata_done);
                continue;
            }

            if workers.is_empty() {
                let opts =
                    SolveOptions { jobs: 1, record_provenance: false, ..self.options.clone() };
                for _ in 0..jobs.min(plan.max_wave_len()) {
                    workers.push(Solver::with_options(self.system.clone(), opts.clone())?);
                }
            }

            // Delta sync: everything solved since the last wave (plus, on
            // the first wave, the inputs) ships to every worker as one
            // shared package.
            let mut delta: Vec<(String, bool)> = Vec::new();
            let mut delta_bdds: Vec<Bdd> = Vec::new();
            for (name, &bdd) in &self.inputs {
                if synced.insert(name.clone()) {
                    delta.push((name.clone(), true));
                    delta_bdds.push(bdd);
                }
            }
            for (name, &bdd) in &self.evaluated {
                if synced.insert(name.clone()) {
                    delta.push((name.clone(), false));
                    delta_bdds.push(bdd);
                }
            }
            let delta_pkg = self.manager.export(&delta_bdds);

            // Longest-processing-time assignment: `pending` is already
            // heaviest-first, each task goes to the least-loaded worker
            // (ties to the lowest index — deterministic).
            let mut assignments: Vec<Vec<(usize, BTreeSet<usize>)>> =
                (0..workers.len()).map(|_| Vec::new()).collect();
            let mut load: Vec<u64> = vec![0; workers.len()];
            for (idx, roots) in pending {
                let wi = (0..load.len()).min_by_key(|&i| (load[i], i)).expect("workers exist");
                load[wi] += scc_weight(&self.stats, idx) + 1;
                assignments[wi].push((idx, roots));
            }

            let mut wave_span = telemetry::span(Phase::Solve, "wave");
            if wave_span.is_recording() {
                wave_span.attr("wave", wave_no);
                wave_span.attr("strata", wave.len());
                wave_span.attr("skipped", skipped);
                wave_span.attr("workers", assignments.iter().filter(|a| !a.is_empty()).count());
                wave_span.attr("transfer_nodes", delta_pkg.node_count());
            }
            // The first stratum each worker was assigned — the attribution
            // fallback should a panic somehow escape the per-stratum catch
            // in `run_wave` (delta import, export, telemetry teardown).
            let first_strata: Vec<usize> =
                assignments.iter().map(|a| a.first().map_or(0, |t| t.0)).collect();
            let cancel = self.options.limits.cancel.clone();
            let outcomes: Vec<(Result<WaveOutput, SolveError>, Option<TraceData>)> =
                std::thread::scope(|s| {
                    let handles: Vec<_> = workers
                        .iter_mut()
                        .zip(assignments)
                        .enumerate()
                        .map(|(wi, (worker, tasks))| {
                            let (delta, delta_pkg) = (&delta, &delta_pkg);
                            s.spawn(move || {
                                if let Some(epoch) = epoch {
                                    telemetry::install_worker(2 + wi as u64, epoch);
                                }
                                let out = worker.run_wave(wi, delta, delta_pkg, tasks);
                                (out, telemetry::take())
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .enumerate()
                        .map(|(wi, h)| {
                            h.join().unwrap_or_else(|payload| {
                                cancel.cancel(LimitKind::Interrupted);
                                (
                                    Err(SolveError::WorkerPanicked {
                                        worker: wi,
                                        stratum: first_strata[wi],
                                        message: panic_message(payload.as_ref()),
                                    }),
                                    None,
                                )
                            })
                        })
                        .collect()
                });
            drop(wave_span);

            // Absorb every worker's telemetry before surfacing any error,
            // then fail deterministically: a worker panic outranks the
            // cooperative limit errors it induced in its peers, and ties
            // go to the lowest worker index — stable no matter which
            // worker hit trouble first in wall-clock terms.
            let mut shipped: Vec<WaveOutput> = Vec::new();
            let mut first_err: Option<SolveError> = None;
            for (result, trace) in outcomes {
                if let Some(data) = trace {
                    telemetry::absorb(data);
                }
                match result {
                    Ok(out) => shipped.push(out),
                    Err(e) => {
                        let takes_precedence = match (&first_err, &e) {
                            (None, _) => true,
                            (Some(SolveError::WorkerPanicked { .. }), _) => false,
                            (Some(_), SolveError::WorkerPanicked { .. }) => true,
                            _ => false,
                        };
                        if takes_precedence {
                            first_err = Some(e);
                        }
                    }
                }
            }
            if let Some(mut e) = first_err {
                // Fault isolation ends the solve, not the process: absorb
                // what the surviving workers finished (their completed
                // strata are real work the partial stats should show),
                // then return the structured error. A limit report built
                // inside one worker only saw that worker's counters —
                // upgrade it to the coordinator's merged view.
                self.absorb_worker_stats(&workers);
                if let SolveError::LimitExceeded(report) = &mut e {
                    self.sync_manager_stats();
                    report.partial = self.stats.clone();
                }
                return Err(e);
            }
            for out in shipped {
                let bdds = self.manager.import(&out.package);
                for (name, bdd) in out.names.into_iter().zip(bdds) {
                    self.evaluated.insert(name, bdd);
                }
            }
            self.maybe_gc();
            self.note_stratum_done(strata_done);
        }

        self.absorb_worker_stats(&workers);
        Ok(())
    }

    /// One positional stats merge per worker, in worker order. Workers
    /// never sync kernel counters into their SolveStats, so absorbing
    /// adds only solve-side numbers (re-evals, iterations, per-SCC
    /// wall); the coordinator's final `sync_manager_stats` still owns
    /// the cache/arena fields. Runs on the success path *and* before an
    /// error returns, so partial stats credit completed workers.
    fn absorb_worker_stats(&mut self, workers: &[Solver]) {
        if self.stats.worker_wall_ms.len() < workers.len() {
            self.stats.worker_wall_ms.resize(workers.len(), 0.0);
        }
        for (wi, w) in workers.iter().enumerate() {
            self.stats.worker_wall_ms[wi] += w.stats().sccs.iter().map(|s| s.wall_ms).sum::<f64>();
            self.stats.absorb(w.stats());
        }
    }

    /// Would `solve_scc(idx, roots)` do any work? Mirrors its memo-table
    /// early-exits, so the wave scheduler can run already-solved strata
    /// counts past the workers without shipping anything.
    fn stratum_pending(&self, idx: usize, roots: &BTreeSet<usize>) -> bool {
        let scc = &self.deps.sccs()[idx];
        if !scc.recursive {
            return !self.evaluated.contains_key(self.deps.name(scc.members[0]));
        }
        if scc.monotone {
            return scc.members.iter().any(|&m| !self.evaluated.contains_key(self.deps.name(m)));
        }
        roots.iter().any(|&r| !self.evaluated.contains_key(self.deps.name(r)))
    }

    /// One worker's wave: import the shared delta package, solve the
    /// assigned strata (exactly as the sequential loop would), export the
    /// newly solved interpretations.
    ///
    /// **Fault isolation:** each stratum solve runs under `catch_unwind`.
    /// A panic is converted to [`SolveError::WorkerPanicked`] (worker and
    /// stratum attributed), the shared token is cancelled so peers stop at
    /// their next poll, and the worker returns cleanly — the pool never
    /// takes the process down with it.
    fn run_wave(
        &mut self,
        wi: usize,
        delta: &[(String, bool)],
        delta_pkg: &BddPackage,
        tasks: Vec<(usize, BTreeSet<usize>)>,
    ) -> Result<WaveOutput, SolveError> {
        let imported = self.manager.import(delta_pkg);
        for ((name, is_input), bdd) in delta.iter().zip(imported) {
            if *is_input {
                self.inputs.insert(name.clone(), bdd);
            } else {
                self.evaluated.insert(name.clone(), bdd);
            }
        }
        let mut produced: Vec<String> = Vec::new();
        for (idx, roots) in tasks {
            let solved = catch_unwind(AssertUnwindSafe(|| {
                if let Some(target) = &self.options.fault.panic_on_relation {
                    let scc = &self.deps.sccs()[idx];
                    if scc.members.iter().any(|&m| self.deps.name(m) == *target) {
                        panic!("injected fault: worker asked to panic on `{target}`");
                    }
                }
                self.solve_stratum(idx, &roots)
            }));
            match solved {
                Ok(result) => result?,
                Err(payload) => {
                    self.options.limits.cancel.cancel(LimitKind::Interrupted);
                    return Err(SolveError::WorkerPanicked {
                        worker: wi,
                        stratum: idx,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
            let scc = &self.deps.sccs()[idx];
            if !scc.recursive || scc.monotone {
                produced.extend(scc.members.iter().map(|&m| self.deps.name(m).to_string()));
            } else {
                // Non-monotone components memoize only their demanded
                // roots (other members' §3 meanings are anchored at their
                // own top-level evaluation).
                produced.extend(roots.iter().map(|&r| self.deps.name(r).to_string()));
            }
        }
        produced.sort();
        produced.dedup();
        let bdds: Vec<Bdd> = produced
            .iter()
            .map(|n| {
                self.evaluated.get(n).copied().ok_or_else(|| {
                    SolveError::Internal(format!("worker solved stratum but `{n}` is not memoized"))
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(WaveOutput { package: self.manager.export(&bdds), names: produced })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::eq_const;
    use crate::parse::parse_system;

    /// The pool moves whole solvers into worker threads.
    #[test]
    fn solver_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Solver>();
        assert_send::<SolveError>();
    }

    #[test]
    fn resolve_jobs_zero_means_available_parallelism() {
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(7), 7);
        assert!(resolve_jobs(0) >= 1);
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_every_item() {
        for jobs in [1, 2, 4, 9] {
            let out = parallel_map(jobs, (0..57usize).collect(), |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..57usize).map(|x| x * 3).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = parallel_map(4, Vec::<usize>::new(), |_, x| x);
        assert!(empty.is_empty());
    }

    /// A diamond of components: two independent reachability fixpoints on
    /// level 0, a conjunction above them. The plan must put A and B in one
    /// wave and C after.
    fn diamond() -> crate::system::System {
        parse_system(
            r#"
            type S = bits 3;
            input Init(s: S);
            input Edge(s: S, t: S);
            mu Fwd(u: S) := Init(u) | (exists x: S. Fwd(x) & Edge(x, u));
            mu Bwd(u: S) := Init(u) | (exists x: S. Bwd(x) & Edge(u, x));
            mu Both(u: S) := Fwd(u) & Bwd(u);
            query any := exists u: S. Both(u);
        "#,
        )
        .expect("diamond system parses")
    }

    fn seeded(jobs: usize) -> Solver {
        let options = SolveOptions { jobs, ..SolveOptions::new() };
        let mut solver = Solver::with_options(diamond(), options).expect("solver builds");
        let init = {
            let vars = solver.alloc().formal("Init", 0).all_vars();
            let m = solver.manager();
            eq_const(m, &vars, 0)
        };
        solver.set_input("Init", init).expect("Init is an input");
        let trans = {
            let s = solver.alloc().formal("Edge", 0).all_vars();
            let t = solver.alloc().formal("Edge", 1).all_vars();
            let m = solver.manager();
            let mut acc = m.constant(false);
            for v in 0u64..7 {
                let a = eq_const(m, &s, v);
                let b = eq_const(m, &t, v + 1);
                let edge = m.and(a, b);
                acc = m.or(acc, edge);
            }
            acc
        };
        solver.set_input("Edge", trans).expect("Edge is an input");
        solver
    }

    #[test]
    fn plan_levels_respect_dependencies() {
        let solver = Solver::new(diamond()).expect("solver builds");
        let demanded: BTreeSet<usize> = (0..solver.stats().sccs.len()).collect();
        let plan = ParallelPlan::new(solver.stats(), &demanded);
        let level_of = |name: &str| {
            plan.waves()
                .iter()
                .position(|w| {
                    w.iter().any(|&i| solver.stats().sccs[i].members.contains(&name.to_string()))
                })
                .expect("every component is planned")
        };
        assert_eq!(level_of("Fwd"), 0);
        assert_eq!(level_of("Bwd"), 0);
        assert_eq!(level_of("Both"), 1);
        assert_eq!(plan.max_wave_len(), 2);
    }

    /// The determinism contract, end to end on the diamond: any job count
    /// yields the same verdict, the same per-relation re-eval counts and
    /// truth-table-identical interpretations (checked by importing the
    /// parallel run's summaries into the sequential run's manager).
    #[test]
    fn any_job_count_matches_single_thread_exactly() {
        let mut seq = seeded(1);
        assert!(seq.eval_query("any").expect("sequential solve"));
        for jobs in [2, 3, 8] {
            let mut par = seeded(jobs);
            assert!(par.eval_query("any").expect("parallel solve"), "jobs={jobs}");
            for rel in ["Fwd", "Bwd", "Both"] {
                assert_eq!(
                    seq.stats().relations[rel].reevaluations,
                    par.stats().relations[rel].reevaluations,
                    "re-eval count of {rel} at jobs={jobs}"
                );
                let theirs = par.evaluated[rel];
                let pkg = par.manager.export(&[theirs]);
                let moved = seq.manager.import(&pkg);
                assert_eq!(moved[0], seq.evaluated[rel], "interpretation of {rel} at jobs={jobs}");
            }
        }
    }
}
