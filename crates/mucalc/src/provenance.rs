//! Solve provenance: *when* each tuple first entered each top-level
//! fixpoint, as a product of the one and only solve.
//!
//! While a top-level fixpoint evaluation runs (under either
//! [`crate::Strategy`]), the solver can snapshot the relation's value
//! after every change. The snapshot index of a tuple's first appearance is
//! its **rank** — a well-founded derivation measure: a tuple of rank `r`
//! is derivable by one application of the relation's defining body from
//! tuples of rank `< r` (under round-robin because round `r` is computed
//! from round `r - 1`'s frozen value; under the worklist engine because
//! single-member iterations and the ordered non-monotone schedule compile
//! each round against the previously recorded value).
//!
//! Witness extraction onion-peels these ranks back to the initial
//! configurations instead of re-solving a second system; see
//! `getafix-witness`. Recording is off by default
//! ([`crate::SolveOptions::record_provenance`]) because snapshots pin
//! intermediate BDDs for the lifetime of the solve.

use getafix_bdd::{Bdd, Manager};
use std::collections::BTreeMap;

/// Rank-indexed frontier snapshots per top-level relation.
///
/// Obtained from [`crate::Solver::provenance`]; cleared whenever an input
/// changes ([`crate::Solver::set_input`]), because every recorded rank may
/// be stale afterwards.
#[derive(Debug, Default)]
pub struct Provenance {
    /// Per-relation snapshots: `snapshots[name][i]` is the relation's value
    /// after its `(i + 1)`-th change. ⊆-increasing; the last entry equals
    /// the final interpretation.
    snapshots: BTreeMap<String, Vec<Bdd>>,
    /// Memoized [`Provenance::node_footprint`] — invalidated whenever a
    /// snapshot is added or everything is cleared. A GC remap keeps it:
    /// compaction renames nodes but preserves the DAG shape.
    footprint: std::cell::Cell<Option<usize>>,
}

impl Provenance {
    /// The snapshot sequence of `name`, or `None` when the relation was
    /// never evaluated at the top level (or recording was off).
    pub fn snapshots(&self, name: &str) -> Option<&[Bdd]> {
        self.snapshots.get(name).map(Vec::as_slice)
    }

    /// The number of recorded ranks of `name` (0 when unrecorded).
    pub fn rank_count(&self, name: &str) -> usize {
        self.snapshots.get(name).map_or(0, Vec::len)
    }

    /// Were any snapshots recorded at all?
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The names of the relations with recorded provenance.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.snapshots.keys().map(String::as_str)
    }

    /// The **first-change rank** of the assignment `env` in `name`'s
    /// snapshots: the least `i` with `env ∈ snapshots[i]`, found by binary
    /// search (snapshots are ⊆-increasing). `None` when the tuple never
    /// appears or nothing was recorded.
    pub fn rank_of(&self, manager: &Manager, name: &str, env: &[bool]) -> Option<usize> {
        let snaps = self.snapshots.get(name)?;
        let (mut lo, mut hi) = (0usize, snaps.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if manager.eval(snaps[mid], env) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        (lo < snaps.len()).then_some(lo)
    }

    /// The set of tuples of rank **strictly below** `rank`: snapshot
    /// `rank - 1`, or `⊥` for rank 0. Out-of-range ranks saturate to the
    /// final snapshot (every recorded tuple has rank below them).
    pub fn below(&self, name: &str, rank: usize) -> Bdd {
        match self.snapshots.get(name) {
            None => Bdd::FALSE,
            Some(_) if rank == 0 => Bdd::FALSE,
            Some(snaps) => snaps[(rank - 1).min(snaps.len() - 1)],
        }
    }

    /// The number of distinct BDD nodes pinned by all recorded snapshots
    /// (shared structure counted once) — the memory cost of provenance,
    /// surfaced as [`crate::SolveStats::provenance_nodes`]. Memoized: the
    /// multi-root DAG walk only reruns after new snapshots arrive.
    pub fn node_footprint(&self, manager: &Manager) -> usize {
        if let Some(v) = self.footprint.get() {
            return v;
        }
        let roots: Vec<Bdd> = self.snapshots.values().flatten().copied().collect();
        let v = if roots.is_empty() { 0 } else { manager.node_count_many(&roots) };
        self.footprint.set(Some(v));
        v
    }

    /// Every snapshot handle, for GC root collection.
    pub(crate) fn roots(&self) -> impl Iterator<Item = Bdd> + '_ {
        self.snapshots.values().flatten().copied()
    }

    /// Remaps every snapshot handle after a GC (same iteration order as
    /// [`Provenance::roots`]).
    pub(crate) fn remap(&mut self, mut remapped: impl Iterator<Item = Bdd>) {
        for snaps in self.snapshots.values_mut() {
            for s in snaps.iter_mut() {
                *s = remapped.next().expect("remap length mismatch");
            }
        }
    }

    /// Records a post-change snapshot of `name`.
    pub(crate) fn note(&mut self, name: &str, value: Bdd) {
        self.snapshots.entry(name.to_string()).or_default().push(value);
        self.footprint.set(None);
    }

    /// Forgets everything (inputs changed; ranks are stale).
    pub(crate) fn clear(&mut self) {
        self.snapshots.clear();
        self.footprint.set(None);
    }
}
