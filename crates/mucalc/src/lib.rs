//! A first-order fixed-point calculus over finite Boolean domains, with a
//! symbolic (BDD-backed) solver — the reproduction's stand-in for MUCKE.
//!
//! The paper's thesis (§1, §3) is that symbolic model-checking algorithms
//! are best *written as formulae* in a calculus like this one and evaluated
//! by a generic solver. This crate supplies:
//!
//! * a typed AST ([`Formula`], [`Term`], [`Type`]) for first-order logic
//!   with relation application over finite domains;
//! * [`System`]: mutually recursive least-fixed-point equation systems with
//!   *input* relations (the compiled program templates) and Boolean queries;
//! * [`Solver`]: two evaluation [`Strategy`]s over the same equations —
//!   the default demand-driven **worklist engine** (SCC stratification,
//!   change-driven chaotic iteration, semi-naive disjunct propagation; see
//!   `worklist.rs`/`deps.rs`) and the paper's `Evaluate(R, Eq)`
//!   operational semantics (§3) as the **round-robin** reference, which
//!   also gives meaning to **non-monotone** systems such as the optimized
//!   entry-forward algorithm (§4.3);
//! * a MUCKE-flavoured concrete syntax: [`parse_system`] and a
//!   pretty-printer that round-trips with it.
//!
//! # Example: symbolic reachability in five lines of calculus
//!
//! The §3 example — `Reach(u) = Init(u) ∨ ∃x.(Reach(x) ∧ Trans(x, u))` —
//! runs like this:
//!
//! ```
//! use getafix_mucalc::{parse_system, Solver};
//!
//! let system = parse_system(r#"
//!     type State = bits 2;
//!     input Init(s: State);
//!     input Trans(s: State, t: State);
//!     mu Reach(u: State) :=
//!         Init(u) | (exists x: State. Reach(x) & Trans(x, u));
//!     query hit := exists u: State. Reach(u) & u = 3;
//! "#).unwrap();
//!
//! let mut solver = Solver::new(system).unwrap();
//! // Init = {0}; Trans = successor: a chain 0 -> 1 -> 2 -> 3.
//! let init = {
//!     let vars = solver.alloc().formal("Init", 0).all_vars();
//!     let m = solver.manager();
//!     getafix_mucalc::eq_const(m, &vars, 0)
//! };
//! solver.set_input("Init", init).unwrap();
//! let trans = {
//!     let s = solver.alloc().formal("Trans", 0).all_vars();
//!     let t = solver.alloc().formal("Trans", 1).all_vars();
//!     let m = solver.manager();
//!     let mut acc = m.constant(false);
//!     for v in 0u64..3 {
//!         let a = getafix_mucalc::eq_const(m, &s, v);
//!         let b = getafix_mucalc::eq_const(m, &t, v + 1);
//!         let edge = m.and(a, b);
//!         acc = m.or(acc, edge);
//!     }
//!     acc
//! };
//! solver.set_input("Trans", trans).unwrap();
//! assert!(solver.eval_query("hit").unwrap());
//! ```

mod alloc;
mod ast;
mod compile;
mod deps;
mod limits;
mod parallel;
mod parse;
mod pretty;
mod provenance;
mod solve;
mod system;
mod topology;
mod types;
mod worklist;

pub use alloc::{eq_const, eq_vars, lt_const, lt_vars, Allocation, Instance, LeafAlloc};
pub use ast::{CmpOp, Formula, Term};
pub use deps::{DepGraph, OrderedPlan, Scc};
#[doc(hidden)]
pub use limits::FaultInjection;
pub use limits::{install_sigint_cancel, CancelToken, LimitKind, LimitReport, ResourceLimits};
pub use parallel::{parallel_map, resolve_jobs, ParallelPlan};
pub use parse::{parse_system, ParseError};
pub use provenance::Provenance;
pub use solve::{
    DisjunctStats, RelationStats, SccStats, SolveError, SolveOptions, SolveStats, Solver, Strategy,
};
pub use system::{Query, RelationDef, RelationKind, System, SystemBuilder, SystemError};
pub use topology::{check_depgraph_dot, depgraph_dot, depgraph_json};
pub use types::{range_width, Leaf, Type, TypeError, TypeTable};

// Re-export the substrate types users need to build input relations.
pub use getafix_bdd::{Bdd, Manager, Var, VarMap};
