//! The solve-topology report: the SCC dependency graph with per-component
//! statistics overlaid, as DOT and JSON.
//!
//! Everything renders from a [`SolveStats`] object alone — the per-SCC
//! rows carry their members, schedule classification and dependency edges
//! ([`SccStats::dep_sccs`]) since solver construction — so the same report
//! is available from a live solver, a `--stats-json` artifact or a bench
//! run, without re-deriving the dependency analysis. `getafix inspect`
//! and `--diag-out` are thin wrappers over these two functions.
//!
//! Node indices equal positions in [`SolveStats::sccs`], which is the
//! dependency-topological (dependencies-first) order [`crate::DepGraph`]
//! emits — the differential tests in the CLI crate check the structures
//! agree edge for edge.

use crate::solve::{SccStats, SolveStats};
use getafix_telemetry::json::JsonWriter;
use std::fmt::Write as _;

/// Fill color of a DOT node, keyed by the component's schedule.
fn schedule_color(scc: &SccStats) -> &'static str {
    match scc.schedule() {
        "once" => "gray92",
        "chaotic" => "lightblue",
        "ordered" => "gold",
        _ => "lightsalmon",
    }
}

/// Escapes a string for a double-quoted DOT label.
fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Peak interpretation size over the component's members, in DAG nodes.
fn scc_peak_nodes(stats: &SolveStats, scc: &SccStats) -> usize {
    scc.members
        .iter()
        .filter_map(|m| stats.relations.get(m).map(|r| r.peak_nodes))
        .max()
        .unwrap_or(0)
}

/// Renders the SCC dependency graph as a GraphViz `digraph`: one box per
/// component (labelled with members, schedule, re-evaluations, wall time
/// and peak interpretation size), one edge per SCC-level dependency,
/// pointing from reader to read component.
pub fn depgraph_dot(stats: &SolveStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph depgraph {{");
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\", style=filled];");
    for (i, scc) in stats.sccs.iter().enumerate() {
        let members = dot_escape(&scc.members.join(", "));
        let _ = writeln!(
            out,
            "  scc{i} [label=\"scc {i}: {members}\\n{} · {} evals · {:.1} ms · peak {}\", \
             fillcolor=\"{}\"];",
            scc.schedule(),
            scc.evaluations,
            scc.wall_ms,
            scc_peak_nodes(stats, scc),
            schedule_color(scc)
        );
    }
    for (i, scc) in stats.sccs.iter().enumerate() {
        for &d in &scc.dep_sccs {
            let _ = writeln!(out, "  scc{i} -> scc{d};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the same topology as JSON (`schema: getafix-depgraph/1`):
/// per-SCC rows with members, flags, schedule, statistics and `deps`
/// (indices of the components read). Indices match [`SolveStats::sccs`]
/// positions, i.e. dependency-topological order.
pub fn depgraph_json(stats: &SolveStats) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "getafix-depgraph/1");
    w.field_u64("scc_count", stats.sccs.len() as u64);
    w.key("sccs");
    w.begin_array();
    for (i, scc) in stats.sccs.iter().enumerate() {
        w.begin_object();
        w.field_u64("index", i as u64);
        w.key("members");
        w.begin_array();
        for m in &scc.members {
            w.value_str(m);
        }
        w.end_array();
        w.field_bool("recursive", scc.recursive);
        w.field_bool("monotone", scc.monotone);
        w.field_str("schedule", scc.schedule());
        w.field_u64("evaluations", scc.evaluations as u64);
        w.field_f64("wall_ms", scc.wall_ms);
        w.field_u64("peak_nodes", scc_peak_nodes(stats, scc) as u64);
        w.key("deps");
        w.begin_array();
        for &d in &scc.dep_sccs {
            w.value_u64(d as u64);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Structural validation of a rendered DOT document: it must declare
/// exactly `expected_sccs` nodes (`sccN [` lines) and every edge endpoint
/// must be a declared node — the schema check CI runs on diagnostics
/// bundles.
///
/// # Errors
///
/// A description of the first violation.
pub fn check_depgraph_dot(dot: &str, expected_sccs: usize) -> Result<(), String> {
    if !dot.trim_start().starts_with("digraph") || !dot.trim_end().ends_with('}') {
        return Err("not a digraph document".into());
    }
    let mut nodes = 0usize;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for line in dot.lines().map(str::trim) {
        if let Some(rest) = line.strip_prefix("scc") {
            if let Some((a, b)) = rest.split_once(" -> ") {
                let from = a.parse::<usize>().map_err(|_| format!("bad edge source: {line}"))?;
                let to = b
                    .trim_end_matches(';')
                    .strip_prefix("scc")
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| format!("bad edge target: {line}"))?;
                edges.push((from, to));
            } else if rest.contains('[') {
                nodes += 1;
            }
        }
    }
    if nodes != expected_sccs {
        return Err(format!("expected {expected_sccs} SCC nodes, found {nodes}"));
    }
    for (from, to) in edges {
        if from >= nodes || to >= nodes {
            return Err(format!("edge scc{from} -> scc{to} references an undeclared node"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::RelationStats;

    fn demo_stats() -> SolveStats {
        let mut stats = SolveStats::default();
        stats.relations.insert(
            "Reach".into(),
            RelationStats { peak_nodes: 420, scc: Some(1), ..RelationStats::default() },
        );
        stats.sccs = vec![
            SccStats {
                members: vec!["Edge\"s\\".into()],
                recursive: false,
                monotone: true,
                ..SccStats::default()
            },
            SccStats {
                members: vec!["Reach".into()],
                recursive: true,
                monotone: true,
                evaluations: 12,
                wall_ms: 3.25,
                dep_sccs: vec![0],
                ..SccStats::default()
            },
        ];
        stats
    }

    #[test]
    fn dot_renders_nodes_edges_and_escapes() {
        let stats = demo_stats();
        let dot = depgraph_dot(&stats);
        check_depgraph_dot(&dot, 2).expect("self-validates");
        assert!(dot.contains("scc1 -> scc0;"), "{dot}");
        assert!(dot.contains("Edge\\\"s\\\\"), "members escaped: {dot}");
        assert!(dot.contains("chaotic · 12 evals"), "{dot}");
        assert!(dot.contains("peak 420"), "{dot}");
        assert!(check_depgraph_dot(&dot, 3).is_err(), "wrong node count must fail");
        assert!(check_depgraph_dot("scc0 -> scc1;", 0).is_err());
    }

    #[test]
    fn json_reflects_the_scc_table() {
        use getafix_telemetry::json::{parse, Value};
        let stats = demo_stats();
        let v = parse(&depgraph_json(&stats)).expect("valid JSON");
        assert_eq!(v.get("scc_count").and_then(Value::as_f64), Some(2.0));
        let sccs = v.get("sccs").and_then(Value::as_array).expect("sccs");
        assert_eq!(sccs[0].get("schedule").and_then(Value::as_str), Some("once"));
        assert_eq!(sccs[1].get("schedule").and_then(Value::as_str), Some("chaotic"));
        let deps = sccs[1].get("deps").and_then(Value::as_array).expect("deps");
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].as_f64(), Some(0.0));
        assert_eq!(sccs[1].get("peak_nodes").and_then(Value::as_f64), Some(420.0));
    }
}
