//! Abstract syntax of the fixed-point calculus.
//!
//! A *formula* denotes a Boolean relation over the typed variables in scope.
//! The calculus is first-order logic over finite domains, plus relation
//! application; least fixed points enter through the *equation system*
//! (see `system.rs`), matching §3 of the paper.

use crate::types::Type;
use std::fmt;

/// A term: a (possibly field-projected) variable reference or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// `x` or `x.f.g` — a variable with an access path.
    Var { name: String, path: Vec<String> },
    /// An unsigned integer constant (for `range` comparisons).
    Int(u64),
}

impl Term {
    /// A whole-variable reference.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var { name: name.into(), path: Vec::new() }
    }

    /// A field projection `name.field` (single segment).
    pub fn field(name: impl Into<String>, field: impl Into<String>) -> Term {
        Term::Var { name: name.into(), path: vec![field.into()] }
    }

    /// A projection with an arbitrary path.
    pub fn path(name: impl Into<String>, path: Vec<String>) -> Term {
        Term::Var { name: name.into(), path }
    }

    /// An integer constant.
    pub fn int(v: u64) -> Term {
        Term::Int(v)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var { name, path } => {
                write!(f, "{name}")?;
                for seg in path {
                    write!(f, ".{seg}")?;
                }
                Ok(())
            }
            Term::Int(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators on terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Bitwise equality (defined for any pair of equal-shaped terms).
    Eq,
    /// Negated equality.
    Ne,
    /// Strictly-less-than on `range` values.
    Lt,
    /// Less-or-equal on `range` values.
    Le,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
        };
        write!(f, "{s}")
    }
}

/// A formula of the calculus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// `true` / `false`.
    Const(bool),
    /// A Boolean-typed term used as an atom (a `bool` variable or a single
    /// bit field).
    Atom(Term),
    /// Term comparison.
    Cmp(Term, CmpOp, Term),
    /// Relation application `R(t₁, …, tₙ)`.
    App(String, Vec<Term>),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of all operands (`true` when empty).
    And(Vec<Formula>),
    /// Disjunction of all operands (`false` when empty).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional.
    Iff(Box<Formula>, Box<Formula>),
    /// `exists x₁: T₁, …. φ`
    Exists(Vec<(String, Type)>, Box<Formula>),
    /// `forall x₁: T₁, …. φ`
    Forall(Vec<(String, Type)>, Box<Formula>),
}

impl Formula {
    /// The constant `true`.
    pub fn tt() -> Formula {
        Formula::Const(true)
    }

    /// The constant `false`.
    pub fn ff() -> Formula {
        Formula::Const(false)
    }

    /// `t₁ = t₂`
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Cmp(a, CmpOp::Eq, b)
    }

    /// `t₁ != t₂`
    pub fn ne(a: Term, b: Term) -> Formula {
        Formula::Cmp(a, CmpOp::Ne, b)
    }

    /// `t₁ < t₂`
    pub fn lt(a: Term, b: Term) -> Formula {
        Formula::Cmp(a, CmpOp::Lt, b)
    }

    /// `t₁ <= t₂`
    pub fn le(a: Term, b: Term) -> Formula {
        Formula::Cmp(a, CmpOp::Le, b)
    }

    /// Relation application.
    pub fn app(name: impl Into<String>, args: Vec<Term>) -> Formula {
        Formula::App(name.into(), args)
    }

    /// Negation (with double-negation collapse).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::Not(inner) => *inner,
            Formula::Const(b) => Formula::Const(!b),
            other => Formula::Not(Box::new(other)),
        }
    }

    /// N-ary conjunction, flattening nested `And`s and dropping `true`s.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::Const(true) => {}
                Formula::Const(false) => return Formula::ff(),
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::tt(),
            1 => flat.pop().expect("len checked"),
            _ => Formula::And(flat),
        }
    }

    /// N-ary disjunction, flattening nested `Or`s and dropping `false`s.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::Const(false) => {}
                Formula::Const(true) => return Formula::tt(),
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::ff(),
            1 => flat.pop().expect("len checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Existential quantification (no-op for an empty binder list).
    pub fn exists(binders: Vec<(String, Type)>, body: Formula) -> Formula {
        if binders.is_empty() {
            body
        } else {
            Formula::Exists(binders, Box::new(body))
        }
    }

    /// Universal quantification (no-op for an empty binder list).
    pub fn forall(binders: Vec<(String, Type)>, body: Formula) -> Formula {
        if binders.is_empty() {
            body
        } else {
            Formula::Forall(binders, Box::new(body))
        }
    }

    /// Collects the names of all relations applied anywhere in the formula.
    pub fn relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |f| {
            if let Formula::App(name, _) = f {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Total number of quantifier binders in the formula, counted in the
    /// same preorder the allocator and compiler replay. Used to resume
    /// binder numbering when a top-level disjunct is compiled on its own.
    pub fn binder_count(&self) -> usize {
        let mut n = 0usize;
        self.walk(&mut |f| {
            if let Formula::Exists(binders, _) | Formula::Forall(binders, _) = f {
                n += binders.len();
            }
        });
        n
    }

    /// Does relation `name` occur under an odd number of negations?
    ///
    /// Implications and biconditionals count as the usual derived forms.
    /// A `true` answer means the equation is *not positive* in `name`, so
    /// Tarski's theorem does not apply and only the operational semantics
    /// (§3 of the paper) gives the equation meaning.
    pub fn occurs_negatively(&self, name: &str) -> bool {
        self.polarity_scan(name, false).1
    }

    /// Does relation `name` occur under an even number of negations?
    pub fn occurs_positively(&self, name: &str) -> bool {
        self.polarity_scan(name, false).0
    }

    /// Returns (occurs positively, occurs negatively) for `name`, starting
    /// from the given negation context.
    fn polarity_scan(&self, name: &str, negated: bool) -> (bool, bool) {
        let merge = |a: (bool, bool), b: (bool, bool)| (a.0 || b.0, a.1 || b.1);
        match self {
            Formula::Const(_) | Formula::Atom(_) | Formula::Cmp(..) => (false, false),
            Formula::App(n, _) => {
                if n == name {
                    if negated {
                        (false, true)
                    } else {
                        (true, false)
                    }
                } else {
                    (false, false)
                }
            }
            Formula::Not(f) => f.polarity_scan(name, !negated),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.polarity_scan(name, negated)).fold((false, false), merge)
            }
            Formula::Implies(a, b) => {
                merge(a.polarity_scan(name, !negated), b.polarity_scan(name, negated))
            }
            Formula::Iff(a, b) => {
                // Both polarities on both sides.
                let la = a.polarity_scan(name, negated);
                let lna = a.polarity_scan(name, !negated);
                let lb = b.polarity_scan(name, negated);
                let lnb = b.polarity_scan(name, !negated);
                merge(merge(la, lna), merge(lb, lnb))
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.polarity_scan(name, negated),
        }
    }

    fn walk(&self, visit: &mut impl FnMut(&Formula)) {
        visit(self);
        match self {
            Formula::Const(_) | Formula::Atom(_) | Formula::Cmp(..) | Formula::App(..) => {}
            Formula::Not(f) => f.walk(visit),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.walk(visit);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.walk(visit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_simplify() {
        assert_eq!(Formula::and(vec![]), Formula::tt());
        assert_eq!(Formula::or(vec![]), Formula::ff());
        assert_eq!(Formula::and(vec![Formula::tt(), Formula::ff()]), Formula::ff());
        assert_eq!(Formula::or(vec![Formula::ff(), Formula::tt()]), Formula::tt());
        assert_eq!(Formula::not(Formula::not(Formula::tt())), Formula::tt());
        // Flattening
        let a = Formula::app("R", vec![]);
        let b = Formula::app("S", vec![]);
        let c = Formula::app("T", vec![]);
        let nested = Formula::and(vec![a.clone(), Formula::and(vec![b.clone(), c.clone()])]);
        assert_eq!(nested, Formula::And(vec![a, b, c]));
    }

    #[test]
    fn relations_collected() {
        let f = Formula::or(vec![
            Formula::app("Init", vec![Term::var("s")]),
            Formula::exists(
                vec![("t".into(), Type::named("Conf"))],
                Formula::and(vec![
                    Formula::app("Reach", vec![Term::var("t")]),
                    Formula::app("Trans", vec![Term::var("t"), Term::var("s")]),
                ]),
            ),
        ]);
        assert_eq!(f.relations(), vec!["Init".to_string(), "Reach".into(), "Trans".into()]);
    }

    #[test]
    fn polarity_detection() {
        let pos = Formula::app("R", vec![]);
        assert!(pos.occurs_positively("R"));
        assert!(!pos.occurs_negatively("R"));

        let neg = Formula::not(Formula::app("R", vec![]));
        assert!(!neg.occurs_positively("R"));
        assert!(neg.occurs_negatively("R"));

        // R in the antecedent of an implication is negative.
        let imp = Formula::Implies(
            Box::new(Formula::app("R", vec![])),
            Box::new(Formula::app("S", vec![])),
        );
        assert!(imp.occurs_negatively("R"));
        assert!(imp.occurs_positively("S"));

        // The EFopt `Relevant` pattern: R(1,·) ∧ ¬R(0,·) is both.
        let mixed = Formula::and(vec![
            Formula::app("R", vec![Term::int(1)]),
            Formula::not(Formula::app("R", vec![Term::int(0)])),
        ]);
        assert!(mixed.occurs_positively("R"));
        assert!(mixed.occurs_negatively("R"));
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::field("s", "pc").to_string(), "s.pc");
        assert_eq!(Term::int(3).to_string(), "3");
        assert_eq!(Term::path("s", vec!["a".into(), "b".into()]).to_string(), "s.a.b");
    }
}
