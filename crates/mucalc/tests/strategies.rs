//! Differential testing of the two solver strategies: on randomly
//! generated *positive* equation systems, the worklist engine must produce
//! interpretations and query verdicts identical to the round-robin
//! reference (both compute the unique least fixed point), while never
//! doing more relation re-evaluations.

use getafix_mucalc::{
    eq_const, Bdd, Formula, SolveOptions, Solver, Strategy as SolveStrategy, System, Term, Type,
};
use proptest::prelude::*;

/// A random positive-system specification. Indices are taken modulo the
/// relevant bound at build time, so any tuple of small integers is valid.
#[derive(Debug, Clone)]
struct Spec {
    /// Domain size of the single state type.
    n: u64,
    /// Bodies of the fixpoint relations `R0..`; each disjunct is
    /// `(kind, relation index, constant)`.
    bodies: Vec<Vec<(usize, usize, u64)>>,
    /// Interpretation of the `Init` input.
    init: Vec<u64>,
    /// Interpretation of the `Edge` input.
    edges: Vec<(u64, u64)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        4u64..9,
        prop::collection::vec(prop::collection::vec((0usize..5, 0usize..4, 0u64..16), 1..4), 1..5),
        prop::collection::vec(0u64..16, 1..3),
        prop::collection::vec((0u64..16, 0u64..16), 1..9),
    )
        .prop_map(|(n, bodies, init, edges)| Spec { n, bodies, init, edges })
}

fn state() -> Type {
    Type::named("S")
}

/// Builds the system of a spec: inputs `Init(s)`, `Edge(s, t)` and one
/// positive fixpoint relation per body, plus one point query per relation.
fn build_system(spec: &Spec) -> System {
    let nrels = spec.bodies.len();
    let rel = |i: usize| format!("R{}", i % nrels);
    let mut b = System::builder();
    b.declare_type("S", Type::Range(spec.n)).unwrap();
    b.input("Init", vec![("s".into(), state())]);
    b.input("Edge", vec![("s".into(), state()), ("t".into(), state())]);
    for (i, disjuncts) in spec.bodies.iter().enumerate() {
        let parts = disjuncts
            .iter()
            .map(|&(kind, j, c)| match kind {
                // Seed from the input set.
                0 => Formula::app("Init", vec![Term::var("s")]),
                // Copy another relation (possibly itself).
                1 => Formula::app(rel(j), vec![Term::var("s")]),
                // Forward image along Edge.
                2 => Formula::exists(
                    vec![("x".into(), state())],
                    Formula::and(vec![
                        Formula::app(rel(j), vec![Term::var("x")]),
                        Formula::app("Edge", vec![Term::var("x"), Term::var("s")]),
                    ]),
                ),
                // Backward image along Edge.
                3 => Formula::exists(
                    vec![("x".into(), state())],
                    Formula::and(vec![
                        Formula::app(rel(j), vec![Term::var("x")]),
                        Formula::app("Edge", vec![Term::var("s"), Term::var("x")]),
                    ]),
                ),
                // A constant point.
                _ => Formula::eq(Term::var("s"), Term::int(c % spec.n)),
            })
            .collect();
        b.define(format!("R{i}"), vec![("s".into(), state())], Formula::or(parts));
    }
    for i in 0..nrels {
        b.query(
            format!("q{i}"),
            Formula::exists(
                vec![("s".into(), state())],
                Formula::and(vec![
                    Formula::app(format!("R{i}"), vec![Term::var("s")]),
                    Formula::eq(Term::var("s"), Term::int(spec.init[0] % spec.n)),
                ]),
            ),
        );
    }
    b.build().unwrap()
}

fn make_solver(spec: &Spec, strategy: SolveStrategy) -> Solver {
    let system = build_system(spec);
    let mut solver = Solver::with_options(system, SolveOptions::with_strategy(strategy)).unwrap();
    let init = {
        let vars = solver.alloc().formal("Init", 0).all_vars();
        let m = solver.manager();
        let mut acc = Bdd::FALSE;
        for &v in &spec.init {
            let p = eq_const(m, &vars, v % spec.n);
            acc = m.or(acc, p);
        }
        acc
    };
    solver.set_input("Init", init).unwrap();
    let edges = {
        let s = solver.alloc().formal("Edge", 0).all_vars();
        let t = solver.alloc().formal("Edge", 1).all_vars();
        let m = solver.manager();
        let mut acc = Bdd::FALSE;
        for &(a, c) in &spec.edges {
            let fa = eq_const(m, &s, a % spec.n);
            let fc = eq_const(m, &t, c % spec.n);
            let e = m.and(fa, fc);
            acc = m.or(acc, e);
        }
        acc
    };
    solver.set_input("Edge", edges).unwrap();
    solver
}

/// The interpretation of `R{i}` as an explicit membership vector.
fn membership(solver: &mut Solver, i: usize, n: u64) -> Vec<bool> {
    let name = format!("R{i}");
    let interp = solver.evaluate(&name).unwrap();
    let vars = solver.alloc().formal(&name, 0).all_vars();
    let m = solver.manager();
    (0..n)
        .map(|v| {
            let p = eq_const(m, &vars, v);
            let hit = m.and(interp, p);
            !hit.is_false()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Both strategies compute identical interpretations and verdicts on
    /// random positive systems, and the worklist engine never does more
    /// body compilations than the reference.
    #[test]
    fn strategies_agree_on_random_positive_systems(spec in spec_strategy()) {
        let nrels = spec.bodies.len();
        let mut rr = make_solver(&spec, SolveStrategy::RoundRobin);
        let mut wl = make_solver(&spec, SolveStrategy::Worklist);
        for i in 0..nrels {
            let mrr = membership(&mut rr, i, spec.n);
            let mwl = membership(&mut wl, i, spec.n);
            prop_assert_eq!(mrr, mwl, "interpretation of R{} differs", i);
        }
        for i in 0..nrels {
            let q = format!("q{i}");
            prop_assert_eq!(
                rr.eval_query(&q).unwrap(),
                wl.eval_query(&q).unwrap(),
                "verdict of {} differs", q
            );
        }
        let rr_work = rr.stats().total_reevaluations();
        let wl_work = wl.stats().total_reevaluations();
        prop_assert!(
            wl_work <= rr_work,
            "worklist did more work: {} > {}", wl_work, rr_work
        );
    }

    /// Every system the generator produces really is positive (the
    /// precondition of the identical-least-fixed-point argument).
    #[test]
    fn generated_systems_are_positive(spec in spec_strategy()) {
        let system = build_system(&spec);
        for i in 0..spec.bodies.len() {
            prop_assert!(system.is_positive(&format!("R{i}")));
        }
    }
}
