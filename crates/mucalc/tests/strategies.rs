//! Differential testing of the two solver strategies: on randomly
//! generated *positive* equation systems, the worklist engine must produce
//! interpretations and query verdicts identical to the round-robin
//! reference (both compute the unique least fixed point), while never
//! doing more relation re-evaluations.

use getafix_mucalc::{
    eq_const, Bdd, Formula, SolveOptions, Solver, Strategy as SolveStrategy, System, Term, Type,
};
use proptest::prelude::*;

/// A random positive-system specification. Indices are taken modulo the
/// relevant bound at build time, so any tuple of small integers is valid.
#[derive(Debug, Clone)]
struct Spec {
    /// Domain size of the single state type.
    n: u64,
    /// Bodies of the fixpoint relations `R0..`; each disjunct is
    /// `(kind, relation index, constant)`.
    bodies: Vec<Vec<(usize, usize, u64)>>,
    /// Interpretation of the `Init` input.
    init: Vec<u64>,
    /// Interpretation of the `Edge` input.
    edges: Vec<(u64, u64)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        4u64..9,
        prop::collection::vec(prop::collection::vec((0usize..5, 0usize..4, 0u64..16), 1..4), 1..5),
        prop::collection::vec(0u64..16, 1..3),
        prop::collection::vec((0u64..16, 0u64..16), 1..9),
    )
        .prop_map(|(n, bodies, init, edges)| Spec { n, bodies, init, edges })
}

fn state() -> Type {
    Type::named("S")
}

/// Builds the system of a spec: inputs `Init(s)`, `Edge(s, t)` and one
/// positive fixpoint relation per body, plus one point query per relation.
fn build_system(spec: &Spec) -> System {
    let nrels = spec.bodies.len();
    let rel = |i: usize| format!("R{}", i % nrels);
    let mut b = System::builder();
    b.declare_type("S", Type::Range(spec.n)).unwrap();
    b.input("Init", vec![("s".into(), state())]);
    b.input("Edge", vec![("s".into(), state()), ("t".into(), state())]);
    for (i, disjuncts) in spec.bodies.iter().enumerate() {
        let parts = disjuncts
            .iter()
            .map(|&(kind, j, c)| match kind {
                // Seed from the input set.
                0 => Formula::app("Init", vec![Term::var("s")]),
                // Copy another relation (possibly itself).
                1 => Formula::app(rel(j), vec![Term::var("s")]),
                // Forward image along Edge.
                2 => Formula::exists(
                    vec![("x".into(), state())],
                    Formula::and(vec![
                        Formula::app(rel(j), vec![Term::var("x")]),
                        Formula::app("Edge", vec![Term::var("x"), Term::var("s")]),
                    ]),
                ),
                // Backward image along Edge.
                3 => Formula::exists(
                    vec![("x".into(), state())],
                    Formula::and(vec![
                        Formula::app(rel(j), vec![Term::var("x")]),
                        Formula::app("Edge", vec![Term::var("s"), Term::var("x")]),
                    ]),
                ),
                // A constant point.
                _ => Formula::eq(Term::var("s"), Term::int(c % spec.n)),
            })
            .collect();
        b.define(format!("R{i}"), vec![("s".into(), state())], Formula::or(parts));
    }
    for i in 0..nrels {
        b.query(
            format!("q{i}"),
            Formula::exists(
                vec![("s".into(), state())],
                Formula::and(vec![
                    Formula::app(format!("R{i}"), vec![Term::var("s")]),
                    Formula::eq(Term::var("s"), Term::int(spec.init[0] % spec.n)),
                ]),
            ),
        );
    }
    b.build().unwrap()
}

fn make_solver(spec: &Spec, strategy: SolveStrategy) -> Solver {
    let system = build_system(spec);
    let mut solver = Solver::with_options(system, SolveOptions::with_strategy(strategy)).unwrap();
    let init = {
        let vars = solver.alloc().formal("Init", 0).all_vars();
        let m = solver.manager();
        let mut acc = Bdd::FALSE;
        for &v in &spec.init {
            let p = eq_const(m, &vars, v % spec.n);
            acc = m.or(acc, p);
        }
        acc
    };
    solver.set_input("Init", init).unwrap();
    let edges = {
        let s = solver.alloc().formal("Edge", 0).all_vars();
        let t = solver.alloc().formal("Edge", 1).all_vars();
        let m = solver.manager();
        let mut acc = Bdd::FALSE;
        for &(a, c) in &spec.edges {
            let fa = eq_const(m, &s, a % spec.n);
            let fc = eq_const(m, &t, c % spec.n);
            let e = m.and(fa, fc);
            acc = m.or(acc, e);
        }
        acc
    };
    solver.set_input("Edge", edges).unwrap();
    solver
}

/// The interpretation of `R{i}` as an explicit membership vector.
fn membership(solver: &mut Solver, i: usize, n: u64) -> Vec<bool> {
    let name = format!("R{i}");
    let interp = solver.evaluate(&name).unwrap();
    let vars = solver.alloc().formal(&name, 0).all_vars();
    let m = solver.manager();
    (0..n)
        .map(|v| {
            let p = eq_const(m, &vars, v);
            let hit = m.and(interp, p);
            !hit.is_false()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Both strategies compute identical interpretations and verdicts on
    /// random positive systems, and the worklist engine never does more
    /// body compilations than the reference.
    #[test]
    fn strategies_agree_on_random_positive_systems(spec in spec_strategy()) {
        let nrels = spec.bodies.len();
        let mut rr = make_solver(&spec, SolveStrategy::RoundRobin);
        let mut wl = make_solver(&spec, SolveStrategy::Worklist);
        for i in 0..nrels {
            let mrr = membership(&mut rr, i, spec.n);
            let mwl = membership(&mut wl, i, spec.n);
            prop_assert_eq!(mrr, mwl, "interpretation of R{} differs", i);
        }
        for i in 0..nrels {
            let q = format!("q{i}");
            prop_assert_eq!(
                rr.eval_query(&q).unwrap(),
                wl.eval_query(&q).unwrap(),
                "verdict of {} differs", q
            );
        }
        let rr_work = rr.stats().total_reevaluations();
        let wl_work = wl.stats().total_reevaluations();
        prop_assert!(
            wl_work <= rr_work,
            "worklist did more work: {} > {}", wl_work, rr_work
        );
    }

    /// Every system the generator produces really is positive (the
    /// precondition of the identical-least-fixed-point argument).
    #[test]
    fn generated_systems_are_positive(spec in spec_strategy()) {
        let system = build_system(&spec);
        for i in 0..spec.bodies.len() {
            prop_assert!(system.is_positive(&format!("R{i}")));
        }
    }
}

// --- random NON-MONOTONE (frontier-pattern) systems -----------------------

/// A random ef-opt-shaped specification: a frontier-bit relation `R`, the
/// non-monotone projection `F = R(1,·) ∧ ¬R(0,·)`, a discovery relation
/// `New` with random extra disjuncts, and a monotone downstream stratum
/// `Down` reading `R`.
#[derive(Debug, Clone)]
struct NmSpec {
    n: u64,
    init: Vec<u64>,
    edges: Vec<(u64, u64)>,
    /// Extra disjuncts of `New`: `(kind, constant)`. Kind 1 adds a
    /// self-loop; kind 2 makes `New` read `R(1, ·)` directly, which
    /// defeats the ordered plan for the `F`/`New` anchors (cycle among
    /// non-anchor members) and exercises the nested fallback.
    extra: Vec<(usize, u64)>,
}

fn nm_spec_strategy() -> impl Strategy<Value = NmSpec> {
    (
        3u64..7,
        prop::collection::vec(0u64..16, 1..3),
        prop::collection::vec((0u64..16, 0u64..16), 1..8),
        prop::collection::vec((0usize..4, 0u64..16), 0..3),
    )
        .prop_map(|(n, init, edges, extra)| NmSpec { n, init, edges, extra })
}

fn build_nm_system(spec: &NmSpec) -> System {
    let mut b = System::builder();
    b.declare_type("Fr", Type::Range(2)).unwrap();
    b.declare_type("S", Type::Range(spec.n)).unwrap();
    b.input("Init", vec![("s".into(), state())]);
    b.input("Edge", vec![("s".into(), state()), ("t".into(), state())]);
    let fwd = |rel: &str| {
        Formula::exists(
            vec![("x".into(), state())],
            Formula::and(vec![
                Formula::app(rel, vec![Term::var("x")]),
                Formula::app("Edge", vec![Term::var("x"), Term::var("s")]),
            ]),
        )
    };
    // R(fr, s): the frontier-bit summary, mirroring §4.3's clauses [1-3].
    b.define(
        "R",
        vec![("fr".into(), Type::named("Fr")), ("s".into(), state())],
        Formula::or(vec![
            Formula::and(vec![
                Formula::eq(Term::var("fr"), Term::int(1)),
                Formula::app("Init", vec![Term::var("s")]),
            ]),
            Formula::app("R", vec![Term::int(1), Term::var("s")]),
            Formula::and(vec![
                Formula::eq(Term::var("fr"), Term::int(1)),
                Formula::app("New", vec![Term::var("s")]),
            ]),
        ]),
    );
    // F(s): the frontier projection — the non-monotone clause [4].
    b.define(
        "F",
        vec![("s".into(), state())],
        Formula::and(vec![
            Formula::app("R", vec![Term::int(1), Term::var("s")]),
            Formula::not(Formula::app("R", vec![Term::int(0), Term::var("s")])),
        ]),
    );
    // New(s): one image round from the frontier, plus random extras.
    let mut new_parts = vec![fwd("F")];
    for &(kind, c) in &spec.extra {
        new_parts.push(match kind {
            0 => Formula::app("F", vec![Term::var("s")]),
            1 => fwd("New"),
            2 => Formula::app("R", vec![Term::int(1), Term::var("s")]),
            _ => Formula::eq(Term::var("s"), Term::int(c % spec.n)),
        });
    }
    b.define("New", vec![("s".into(), state())], Formula::or(new_parts));
    // Down(s): a monotone stratum downstream of the non-monotone SCC.
    b.define(
        "Down",
        vec![("s".into(), state())],
        Formula::or(vec![Formula::app("R", vec![Term::int(1), Term::var("s")]), fwd("Down")]),
    );
    for (q, body) in [
        ("q_r", Formula::app("R", vec![Term::int(1), Term::var("s")])),
        ("q_f", Formula::app("F", vec![Term::var("s")])),
        ("q_new", Formula::app("New", vec![Term::var("s")])),
        ("q_down", Formula::app("Down", vec![Term::var("s")])),
    ] {
        b.query(
            q,
            Formula::exists(
                vec![("s".into(), state())],
                Formula::and(vec![body, Formula::eq(Term::var("s"), Term::int(0))]),
            ),
        );
    }
    b.build().unwrap()
}

fn make_nm_solver(spec: &NmSpec, strategy: SolveStrategy) -> Solver {
    let system = build_nm_system(spec);
    let options = SolveOptions {
        strategy,
        // Small enough to turn a genuinely oscillating instance into a
        // `Diverged` error quickly — both strategies must then produce the
        // *same* error, because the ordered schedule reproduces the
        // reference round sequence exactly.
        max_iterations: 300,
        ..SolveOptions::new()
    };
    let mut solver = Solver::with_options(system, options).unwrap();
    let init = {
        let vars = solver.alloc().formal("Init", 0).all_vars();
        let m = solver.manager();
        let mut acc = Bdd::FALSE;
        for &v in &spec.init {
            let p = eq_const(m, &vars, v % spec.n);
            acc = m.or(acc, p);
        }
        acc
    };
    solver.set_input("Init", init).unwrap();
    let edges = {
        let s = solver.alloc().formal("Edge", 0).all_vars();
        let t = solver.alloc().formal("Edge", 1).all_vars();
        let m = solver.manager();
        let mut acc = Bdd::FALSE;
        for &(a, c) in &spec.edges {
            let fa = eq_const(m, &s, a % spec.n);
            let fc = eq_const(m, &t, c % spec.n);
            let e = m.and(fa, fc);
            acc = m.or(acc, e);
        }
        acc
    };
    solver.set_input("Edge", edges).unwrap();
    solver
}

/// The interpretation of a single-`S`-parameter relation as a membership
/// vector, or the error text when evaluation fails.
fn nm_membership(solver: &mut Solver, name: &str, n: u64) -> Result<Vec<bool>, String> {
    let interp = solver.evaluate(name).map_err(|e| e.to_string())?;
    let nvars = solver.manager_ref().var_count();
    let vars = solver.alloc().formal(name, 0).all_vars();
    let m = solver.manager_ref();
    Ok((0..n)
        .map(|v| {
            let mut env = vec![false; nvars];
            for (i, var) in vars.iter().enumerate() {
                env[var.level() as usize] = (v >> i) & 1 == 1;
            }
            m.eval(interp, &env)
        })
        .collect())
}

/// `R`'s interpretation over both frontier-bit values.
fn nm_membership_r(solver: &mut Solver, n: u64) -> Result<Vec<bool>, String> {
    let interp = solver.evaluate("R").map_err(|e| e.to_string())?;
    let nvars = solver.manager_ref().var_count();
    let fr_vars = solver.alloc().formal("R", 0).all_vars();
    let s_vars = solver.alloc().formal("R", 1).all_vars();
    let m = solver.manager_ref();
    let mut out = Vec::new();
    for fr in 0u64..2 {
        for v in 0..n {
            let mut env = vec![false; nvars];
            for (i, var) in fr_vars.iter().enumerate() {
                env[var.level() as usize] = (fr >> i) & 1 == 1;
            }
            for (i, var) in s_vars.iter().enumerate() {
                env[var.level() as usize] = (v >> i) & 1 == 1;
            }
            out.push(m.eval(interp, &env));
        }
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On random frontier-pattern systems — non-monotone SCCs included —
    /// the worklist engine's ordered schedule (and its nested fallback)
    /// must agree with the round-robin reference on every demanded
    /// interpretation, every query verdict and every error, while never
    /// doing more body compilations.
    #[test]
    fn strategies_agree_on_random_nonmonotone_systems(spec in nm_spec_strategy()) {
        let mut rr = make_nm_solver(&spec, SolveStrategy::RoundRobin);
        let mut wl = make_nm_solver(&spec, SolveStrategy::Worklist);
        // The system really contains a non-monotone SCC.
        {
            let g = wl.deps();
            let scc = g.scc_of_name("F").expect("F is a fixpoint relation");
            prop_assert!(!g.sccs()[scc].monotone, "F's component must be non-monotone");
        }
        let mut all_ok = true;
        // Demand every member at top level: each anchors its own run
        // (ordered where the pattern holds, nested otherwise) and must
        // match the reference's per-root evaluation exactly.
        let r_rr = nm_membership_r(&mut rr, spec.n);
        let r_wl = nm_membership_r(&mut wl, spec.n);
        all_ok &= r_rr.is_ok();
        prop_assert_eq!(r_rr, r_wl, "interpretation of R differs");
        for name in ["F", "New", "Down"] {
            let m_rr = nm_membership(&mut rr, name, spec.n);
            let m_wl = nm_membership(&mut wl, name, spec.n);
            all_ok &= m_rr.is_ok();
            prop_assert_eq!(m_rr, m_wl, "interpretation of {} differs", name);
        }
        for q in ["q_r", "q_f", "q_new", "q_down"] {
            let v_rr = rr.eval_query(q).map_err(|e| e.to_string());
            let v_wl = wl.eval_query(q).map_err(|e| e.to_string());
            prop_assert_eq!(v_rr, v_wl, "verdict of {} differs", q);
        }
        if all_ok {
            let rr_work = rr.stats().total_reevaluations();
            let wl_work = wl.stats().total_reevaluations();
            prop_assert!(
                wl_work <= rr_work,
                "worklist did more work: {} > {}", wl_work, rr_work
            );
        }
    }
}
