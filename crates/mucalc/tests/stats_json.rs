//! Property tests of the machine-readable statistics surface.
//!
//! `SolveStats::to_json` is consumed by CI tooling, the bench reporter and
//! the `--stats-json` flag, so it must stay parseable and faithful:
//! parsing it back (with the telemetry crate's own JSON parser — the same
//! one the trace tests use) must recover exactly the counters the struct
//! holds, and [`SolveStats::absorb`] must accumulate according to its
//! documented rules — additive counters add, high-water marks max, SCC
//! tables of equal length merge positionally.

use getafix_mucalc::{DisjunctStats, RelationStats, SccStats, SolveStats};
use getafix_telemetry::json::{parse, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// An arbitrary per-relation row. The `scc` index is `None` one time in
/// nine so both arms of the null-vs-number serialization are exercised.
fn rel_strategy() -> impl Strategy<Value = RelationStats> {
    (0usize..5000, 0usize..5000, 0usize..5000, 0usize..5000, 0usize..9).prop_map(
        |(iterations, reevaluations, final_nodes, peak_nodes, scc)| RelationStats {
            iterations,
            reevaluations,
            final_nodes,
            peak_nodes,
            scc: if scc == 0 { None } else { Some(scc - 1) },
        },
    )
}

/// An arbitrary per-SCC row. `wall_ms` values are multiples of 1/8 so
/// float sums in the absorb property stay exact.
fn scc_strategy() -> impl Strategy<Value = SccStats> {
    (
        (prop::collection::vec(0usize..30, 1..4), prop::collection::vec(0usize..8, 0..3)),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0usize..5000,
        0u64..80_000,
    )
        .prop_map(|((members, dep_sccs), recursive, monotone, ordered, evaluations, wall8)| {
            SccStats {
                members: members.into_iter().map(|i| format!("R{i}")).collect(),
                recursive,
                monotone,
                ordered,
                evaluations,
                wall_ms: wall8 as f64 / 8.0,
                dep_sccs,
            }
        })
}

/// An arbitrary per-disjunct attribution row, keyed like the solver keys
/// them (`Relation#index`).
fn disjunct_strategy() -> impl Strategy<Value = (String, DisjunctStats)> {
    (0usize..30, 0usize..4, 0usize..5000, 0u64..1 << 30, 0usize..1 << 20, 0u64..1 << 30).prop_map(
        |(rel, part, recompilations, nodes_built, peak_nodes, wall_us)| {
            (
                format!("R{rel}#{part}"),
                DisjunctStats {
                    label: format!("disjunct {part} of R{rel}"),
                    recompilations,
                    nodes_built,
                    peak_nodes,
                    wall_us,
                },
            )
        },
    )
}

/// An arbitrary statistics object (relation names deduplicate through the
/// map, which is fine — any map is a valid statistics object).
fn stats_strategy() -> impl Strategy<Value = SolveStats> {
    let counters =
        (0usize..5000, 0usize..5000, 0usize..5000, 0usize..5000, 0u64..1 << 40, 0u64..1 << 40);
    let sizes = (0usize..1 << 30, 0usize..1 << 30, 0usize..1 << 30, 0u64..80_000);
    (
        prop::collection::vec((0usize..30, rel_strategy()), 0..6),
        prop::collection::vec(scc_strategy(), 0..4),
        counters,
        sizes,
        prop::collection::vec(disjunct_strategy(), 0..5),
    )
        .prop_map(|(rels, sccs, counters, sizes, disjuncts)| {
            let (
                ordered_reevaluations,
                provenance_nodes,
                gcs,
                gc_reclaimed_nodes,
                cache_hits,
                cache_misses,
            ) = counters;
            let (arena_nodes, arena_bytes, peak_arena_bytes, pause8) = sizes;
            let relations: BTreeMap<String, RelationStats> =
                rels.into_iter().map(|(i, r)| (format!("R{i}"), r)).collect();
            SolveStats {
                relations,
                sccs,
                ordered_reevaluations,
                provenance_nodes,
                gcs,
                gc_reclaimed_nodes,
                gc_pause_ms: pause8 as f64 / 8.0,
                cache_hits,
                cache_misses,
                arena_nodes,
                arena_bytes,
                peak_arena_bytes,
                disjuncts: disjuncts.into_iter().collect(),
                jobs: (gcs % 4) + 1,
                worker_wall_ms: vec![pause8 as f64 / 4.0; gcs % 3],
            }
        })
}

/// `v.key` as an `f64`, panicking with the key name on absence.
fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or_else(|| panic!("missing number `{key}`"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Every emitted document parses, and every counter survives the trip.
    #[test]
    fn to_json_roundtrips(stats in stats_strategy()) {
        let v = parse(&stats.to_json()).expect("to_json output parses");
        prop_assert_eq!(num(&v, "total_reevaluations") as usize, stats.total_reevaluations());
        prop_assert_eq!(num(&v, "ordered_reevaluations") as usize, stats.ordered_reevaluations);
        prop_assert_eq!(num(&v, "provenance_nodes") as usize, stats.provenance_nodes);
        prop_assert_eq!(num(&v, "gcs") as usize, stats.gcs);
        prop_assert_eq!(num(&v, "gc_reclaimed_nodes") as usize, stats.gc_reclaimed_nodes);
        prop_assert_eq!(num(&v, "gc_pause_ms"), stats.gc_pause_ms);
        prop_assert_eq!(num(&v, "cache_hits") as u64, stats.cache_hits);
        prop_assert_eq!(num(&v, "cache_misses") as u64, stats.cache_misses);
        prop_assert_eq!(num(&v, "arena_nodes") as usize, stats.arena_nodes);
        prop_assert_eq!(num(&v, "arena_bytes") as usize, stats.arena_bytes);
        prop_assert_eq!(num(&v, "peak_arena_bytes") as usize, stats.peak_arena_bytes);
        prop_assert_eq!(num(&v, "jobs") as usize, stats.jobs);
        let walls = v.get("worker_wall_ms").and_then(Value::as_array).expect("worker_wall_ms");
        prop_assert_eq!(walls.len(), stats.worker_wall_ms.len());

        let rels = v.get("relations").and_then(Value::as_array).expect("relations array");
        prop_assert_eq!(rels.len(), stats.relations.len());
        for row in rels {
            let name = row.get("name").and_then(Value::as_str).expect("relation name");
            let r = &stats.relations[name];
            prop_assert_eq!(num(row, "iterations") as usize, r.iterations);
            prop_assert_eq!(num(row, "reevaluations") as usize, r.reevaluations);
            prop_assert_eq!(num(row, "final_nodes") as usize, r.final_nodes);
            prop_assert_eq!(num(row, "peak_nodes") as usize, r.peak_nodes);
            match r.scc {
                Some(s) => prop_assert_eq!(num(row, "scc") as usize, s),
                None => prop_assert_eq!(row.get("scc"), Some(&Value::Null)),
            }
        }

        let sccs = v.get("sccs").and_then(Value::as_array).expect("sccs array");
        prop_assert_eq!(sccs.len(), stats.sccs.len());
        for (row, scc) in sccs.iter().zip(&stats.sccs) {
            let members = row.get("members").and_then(Value::as_array).expect("members");
            prop_assert_eq!(members.len(), scc.members.len());
            prop_assert_eq!(row.get("recursive"), Some(&Value::Bool(scc.recursive)));
            prop_assert_eq!(row.get("monotone"), Some(&Value::Bool(scc.monotone)));
            prop_assert_eq!(row.get("ordered"), Some(&Value::Bool(scc.ordered)));
            prop_assert_eq!(row.get("schedule").and_then(Value::as_str), Some(scc.schedule()));
            prop_assert_eq!(num(row, "evaluations") as usize, scc.evaluations);
            prop_assert_eq!(num(row, "wall_ms"), scc.wall_ms);
            let deps = row.get("dep_sccs").and_then(Value::as_array).expect("dep_sccs");
            let deps: Vec<usize> = deps.iter().map(|d| d.as_f64().unwrap() as usize).collect();
            prop_assert_eq!(&deps, &scc.dep_sccs);
        }

        let disjuncts = v.get("disjuncts").and_then(Value::as_array).expect("disjuncts array");
        prop_assert_eq!(disjuncts.len(), stats.disjuncts.len());
        for row in disjuncts {
            let key = row.get("key").and_then(Value::as_str).expect("disjunct key");
            let d = &stats.disjuncts[key];
            prop_assert_eq!(row.get("label").and_then(Value::as_str), Some(d.label.as_str()));
            prop_assert_eq!(num(row, "recompilations") as usize, d.recompilations);
            prop_assert_eq!(num(row, "nodes_built") as u64, d.nodes_built);
            prop_assert_eq!(num(row, "peak_nodes") as usize, d.peak_nodes);
            prop_assert_eq!(num(row, "wall_us") as u64, d.wall_us);
        }
    }

    /// Absorbing then serializing equals serializing then summing: the
    /// additive counters of `a.absorb(&b)` are the sums of the parsed
    /// documents, the high-water marks are the maxima, and the result
    /// still parses.
    #[test]
    fn absorb_accumulates_through_json(a in stats_strategy(), b in stats_strategy()) {
        let (va, vb) = (parse(&a.to_json()).unwrap(), parse(&b.to_json()).unwrap());
        let mut merged = a.clone();
        merged.absorb(&b);
        let vm = parse(&merged.to_json()).expect("absorbed stats serialize");

        for key in ["total_reevaluations", "ordered_reevaluations", "gcs",
                    "gc_reclaimed_nodes", "gc_pause_ms", "cache_hits", "cache_misses"] {
            prop_assert_eq!(
                num(&vm, key), num(&va, key) + num(&vb, key),
                "additive counter `{}` did not add", key
            );
        }
        for key in ["provenance_nodes", "arena_nodes", "arena_bytes", "peak_arena_bytes"] {
            prop_assert_eq!(
                num(&vm, key), num(&va, key).max(num(&vb, key)),
                "high-water mark `{}` did not max", key
            );
        }
        // SCC tables: equal lengths merge positionally (additive wall/evals),
        // unequal lengths concatenate.
        let (sa, sb) = (a.sccs.len(), b.sccs.len());
        let sm = vm.get("sccs").and_then(Value::as_array).unwrap().len();
        prop_assert_eq!(sm, if sa == sb { sa } else { sa + sb });
        if sa == sb {
            let rows = vm.get("sccs").and_then(Value::as_array).unwrap();
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(num(row, "wall_ms"), a.sccs[i].wall_ms + b.sccs[i].wall_ms);
                prop_assert_eq!(
                    num(row, "evaluations") as usize,
                    a.sccs[i].evaluations + b.sccs[i].evaluations
                );
            }
        }
        // Disjunct attribution merges by key: additive counters add,
        // peaks max, the first non-empty label wins.
        for (key, d) in &merged.disjuncts {
            let da = a.disjuncts.get(key);
            let db = b.disjuncts.get(key);
            prop_assert_eq!(
                d.recompilations,
                da.map_or(0, |x| x.recompilations) + db.map_or(0, |x| x.recompilations)
            );
            prop_assert_eq!(
                d.nodes_built,
                da.map_or(0, |x| x.nodes_built) + db.map_or(0, |x| x.nodes_built)
            );
            prop_assert_eq!(
                d.peak_nodes,
                da.map_or(0, |x| x.peak_nodes).max(db.map_or(0, |x| x.peak_nodes))
            );
        }
        prop_assert_eq!(merged.disjuncts.len(),
            a.disjuncts.keys().chain(b.disjuncts.keys()).collect::<std::collections::BTreeSet<_>>().len());
    }
}
