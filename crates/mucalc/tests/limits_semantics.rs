//! Resource-governance semantics on the public solver API: budgets trip
//! into structured errors with partial statistics (deterministically, at
//! any job count), generous limits leave results bit-identical to an
//! ungoverned solve, and an injected worker panic surfaces as
//! [`SolveError::WorkerPanicked`] with peers cancelled — never as a
//! process abort.

use getafix_mucalc::{
    eq_const, parse_system, FaultInjection, LimitKind, ResourceLimits, SolveError, SolveOptions,
    Solver,
};

/// Two independent reachability fixpoints under a conjunction — the
/// smallest system whose parallel plan has a two-worker wave, so the
/// jobs-4 variants below genuinely exercise the pool.
const DIAMOND: &str = r#"
    type S = bits 3;
    input Init(s: S);
    input Edge(s: S, t: S);
    mu Fwd(u: S) := Init(u) | (exists x: S. Fwd(x) & Edge(x, u));
    mu Bwd(u: S) := Init(u) | (exists x: S. Bwd(x) & Edge(u, x));
    mu Both(u: S) := Fwd(u) & Bwd(u);
    query any := exists u: S. Both(u);
"#;

/// Builds the diamond over a 0→1→…→7 chain starting at 0.
fn seeded(options: SolveOptions) -> Solver {
    let system = parse_system(DIAMOND).expect("diamond parses");
    let mut solver = Solver::with_options(system, options).expect("solver builds");
    let init = {
        let vars = solver.alloc().formal("Init", 0).all_vars();
        let m = solver.manager();
        eq_const(m, &vars, 0)
    };
    solver.set_input("Init", init).expect("Init is an input");
    let chain = {
        let s = solver.alloc().formal("Edge", 0).all_vars();
        let t = solver.alloc().formal("Edge", 1).all_vars();
        let m = solver.manager();
        let mut acc = m.constant(false);
        for v in 0u64..7 {
            let a = eq_const(m, &s, v);
            let b = eq_const(m, &t, v + 1);
            let edge = m.and(a, b);
            acc = m.or(acc, edge);
        }
        acc
    };
    solver.set_input("Edge", chain).expect("Edge is an input");
    solver
}

/// A step budget smaller than the solve trips `LimitExceeded` with
/// `StepBudget` and carries partial statistics — at jobs 1 and at
/// jobs 4, where the trip happens inside a pool worker and must
/// propagate out as the same structured error.
#[test]
fn step_budget_trips_deterministically_at_jobs_1_and_4() {
    for jobs in [1usize, 4] {
        let limits = ResourceLimits::default().with_step_budget(3);
        let options = SolveOptions { jobs, limits: limits.clone(), ..SolveOptions::new() };
        let mut solver = seeded(options);
        match solver.eval_query("any") {
            Err(SolveError::LimitExceeded(report)) => {
                assert_eq!(report.kind, LimitKind::StepBudget, "jobs {jobs}");
                // The shared token accounted at least the budget's worth
                // of re-evaluations before tripping.
                assert!(limits.cancel.steps() >= 3, "jobs {jobs}: {}", limits.cancel.steps());
            }
            other => panic!("jobs {jobs}: expected a step-budget trip, got {other:?}"),
        }
        // The first trip latches the token, so every subsequent use of
        // the same limits is cancelled immediately.
        assert_eq!(limits.cancel.cancelled(), Some(LimitKind::StepBudget), "jobs {jobs}");
    }
}

/// A node budget smaller than the live set trips `NodeBudget` even
/// after the degradation ladder (forced collection, computed-cache
/// drop, one retry) has run — the chain's transition relation alone
/// needs more than ten live nodes.
#[test]
fn tiny_node_budget_trips_after_forced_gc() {
    let limits = ResourceLimits::default().with_node_budget(10);
    let options = SolveOptions { limits, ..SolveOptions::new() };
    let mut solver = seeded(options);
    match solver.eval_query("any") {
        Err(SolveError::LimitExceeded(report)) => {
            assert_eq!(report.kind, LimitKind::NodeBudget);
            // The forced collection ran before the solver gave up.
            assert!(report.partial.gcs >= 1, "gcs = {}", report.partial.gcs);
        }
        other => panic!("expected a node-budget trip, got {other:?}"),
    }
}

/// Generous limits are invisible: verdict, per-state interpretation and
/// re-evaluation counts are bit-identical to an ungoverned solve, at
/// jobs 1 and 4.
#[test]
fn generous_limits_leave_results_bit_identical() {
    let baseline = {
        let mut solver = seeded(SolveOptions::new());
        let verdict = solver.eval_query("any").expect("ungoverned solve succeeds");
        let states = membership(&mut solver);
        (verdict, states, solver.stats().total_reevaluations())
    };
    for jobs in [1usize, 4] {
        let limits = ResourceLimits::default()
            .with_step_budget(1_000_000)
            .with_node_budget(1 << 24)
            .with_timeout(std::time::Duration::from_secs(600));
        let options = SolveOptions { jobs, limits, ..SolveOptions::new() };
        let mut solver = seeded(options);
        let verdict = solver.eval_query("any").expect("governed solve succeeds");
        assert_eq!(verdict, baseline.0, "jobs {jobs}: verdict");
        assert_eq!(membership(&mut solver), baseline.1, "jobs {jobs}: interpretation");
        assert_eq!(
            solver.stats().total_reevaluations(),
            baseline.2,
            "jobs {jobs}: re-evaluation counts"
        );
    }
}

/// `Both`'s interpretation as an explicit membership vector.
fn membership(solver: &mut Solver) -> Vec<bool> {
    let both = solver.evaluate("Both").expect("Both evaluates");
    let vars = solver.alloc().formal("Both", 0).all_vars();
    let m = solver.manager();
    (0u64..8)
        .map(|v| {
            let point = eq_const(m, &vars, v);
            !m.and(both, point).is_false()
        })
        .collect()
}

/// An injected panic in a pool worker is caught at the worker boundary:
/// the error names the worker and stratum, the shared token is
/// cancelled so peers stop at their next poll, and the process keeps
/// running — the whole point of fault-isolated workers.
#[test]
fn injected_worker_panic_is_contained_and_cancels_peers() {
    let limits = ResourceLimits::default();
    let options = SolveOptions {
        jobs: 4,
        limits: limits.clone(),
        fault: FaultInjection { panic_on_relation: Some("Bwd".into()) },
        ..SolveOptions::new()
    };
    let mut solver = seeded(options);
    match solver.eval_query("any") {
        Err(SolveError::WorkerPanicked { worker, stratum, message }) => {
            assert!(message.contains("injected fault"), "{message}");
            assert!(worker < 4, "worker index {worker}");
            let _ = stratum;
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert_eq!(
        limits.cancel.cancelled(),
        Some(LimitKind::Interrupted),
        "the panicking worker must cancel its peers via the shared token"
    );
}

/// The same injection at jobs 1 never fires (the hook lives on the pool
/// worker path only), so sequential solves are unaffected by the
/// test-only machinery.
#[test]
fn fault_injection_is_inert_without_the_pool() {
    let options = SolveOptions {
        jobs: 1,
        fault: FaultInjection { panic_on_relation: Some("Bwd".into()) },
        ..SolveOptions::new()
    };
    let mut solver = seeded(options);
    assert!(solver.eval_query("any").expect("sequential solve succeeds"));
}
