//! Integration tests for the fixed-point solver: differential testing
//! against explicit-state computation, mutual recursion, and the
//! non-monotone patterns the optimized entry-forward algorithm relies on.

use getafix_mucalc::{eq_const, parse_system, Formula, Solver, System, Term, Type};

/// Builds the interpretation of a binary edge relation from an explicit
/// edge list.
fn edges_to_bdd(solver: &mut Solver, rel: &str, edges: &[(u64, u64)]) -> getafix_mucalc::Bdd {
    let s_vars = solver.alloc().formal(rel, 0).all_vars();
    let t_vars = solver.alloc().formal(rel, 1).all_vars();
    let m = solver.manager();
    let mut acc = m.constant(false);
    for &(a, b) in edges {
        let fa = eq_const(m, &s_vars, a);
        let fb = eq_const(m, &t_vars, b);
        let edge = m.and(fa, fb);
        acc = m.or(acc, edge);
    }
    acc
}

fn set_to_bdd(solver: &mut Solver, rel: &str, values: &[u64]) -> getafix_mucalc::Bdd {
    let vars = solver.alloc().formal(rel, 0).all_vars();
    let m = solver.manager();
    let mut acc = m.constant(false);
    for &v in values {
        let fv = eq_const(m, &vars, v);
        acc = m.or(acc, fv);
    }
    acc
}

/// Explicit BFS over an edge list.
fn bfs(n: u64, init: &[u64], edges: &[(u64, u64)]) -> Vec<bool> {
    let mut reach = vec![false; n as usize];
    let mut work: Vec<u64> = init.to_vec();
    for &i in init {
        reach[i as usize] = true;
    }
    while let Some(x) = work.pop() {
        for &(a, b) in edges {
            if a == x && !reach[b as usize] {
                reach[b as usize] = true;
                work.push(b);
            }
        }
    }
    reach
}

const REACH_SRC: &str = r#"
    type State = range 16;
    input Init(s: State);
    input Trans(s: State, t: State);
    mu Reach(u: State) :=
        Init(u) | (exists x: State. Reach(x) & Trans(x, u));
"#;

#[test]
fn reach_matches_explicit_bfs() {
    // A pseudo-random graph, fixed seed via a simple LCG.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for trial in 0..10 {
        let n = 16u64;
        let mut edges = Vec::new();
        for _ in 0..(10 + trial * 3) {
            edges.push((rng() % n, rng() % n));
        }
        let init = vec![rng() % n];
        let expect = bfs(n, &init, &edges);

        let system = parse_system(REACH_SRC).unwrap();
        let mut solver = Solver::new(system).unwrap();
        let ib = set_to_bdd(&mut solver, "Init", &init);
        solver.set_input("Init", ib).unwrap();
        let tb = edges_to_bdd(&mut solver, "Trans", &edges);
        solver.set_input("Trans", tb).unwrap();

        let reach = solver.evaluate("Reach").unwrap();
        let u_vars = solver.alloc().formal("Reach", 0).all_vars();
        let m = solver.manager();
        for v in 0..n {
            let point = eq_const(m, &u_vars, v);
            let hit = m.and(reach, point);
            assert_eq!(
                !hit.is_false(),
                expect[v as usize],
                "trial {trial}: state {v} reachability"
            );
        }
    }
}

#[test]
fn tuple_count_matches_reachable_set_size() {
    let system = parse_system(REACH_SRC).unwrap();
    let mut solver = Solver::new(system).unwrap();
    // Chain 0 -> 1 -> 2 -> 3, init {0}: 4 reachable states.
    let ib = set_to_bdd(&mut solver, "Init", &[0]);
    solver.set_input("Init", ib).unwrap();
    let tb = edges_to_bdd(&mut solver, "Trans", &[(0, 1), (1, 2), (2, 3), (7, 8)]);
    solver.set_input("Trans", tb).unwrap();
    assert_eq!(solver.tuple_count("Reach").unwrap(), 4.0);
}

#[test]
fn mutual_recursion_even_odd() {
    // Even(n) over range 10 via mutual recursion with Odd.
    let system = parse_system(
        r#"
        type N = range 10;
        input Zero(n: N);
        input Succ(n: N, m: N);
        mu Even(n: N) :=
            Zero(n) | (exists m: N. Odd(m) & Succ(m, n));
        mu Odd(n: N) :=
            exists m: N. Even(m) & Succ(m, n);
        "#,
    )
    .unwrap();
    let mut solver = Solver::new(system).unwrap();
    let zb = set_to_bdd(&mut solver, "Zero", &[0]);
    solver.set_input("Zero", zb).unwrap();
    let edges: Vec<(u64, u64)> = (0..9).map(|i| (i, i + 1)).collect();
    let sb = edges_to_bdd(&mut solver, "Succ", &edges);
    solver.set_input("Succ", sb).unwrap();

    let even = solver.evaluate("Even").unwrap();
    let n_vars = solver.alloc().formal("Even", 0).all_vars();
    let m = solver.manager();
    for v in 0..10u64 {
        let point = eq_const(m, &n_vars, v);
        let hit = m.and(even, point);
        assert_eq!(!hit.is_false(), v % 2 == 0, "Even({v})");
    }
}

#[test]
fn duplicate_argument_application() {
    // Diag(u) := E(u, u) — exercises the scratch-column path.
    let system = parse_system(
        r#"
        type S = range 8;
        input E(a: S, b: S);
        mu Diag(u: S) := E(u, u);
        "#,
    )
    .unwrap();
    let mut solver = Solver::new(system).unwrap();
    let eb = edges_to_bdd(&mut solver, "E", &[(1, 1), (2, 3), (3, 3), (5, 4)]);
    solver.set_input("E", eb).unwrap();
    let diag = solver.evaluate("Diag").unwrap();
    let u_vars = solver.alloc().formal("Diag", 0).all_vars();
    let m = solver.manager();
    for v in 0..8u64 {
        let point = eq_const(m, &u_vars, v);
        let hit = m.and(diag, point);
        assert_eq!(!hit.is_false(), v == 1 || v == 3, "Diag({v})");
    }
}

#[test]
fn constant_arguments_and_comparisons() {
    let system = parse_system(
        r#"
        type K = range 8;
        input E(a: K, b: K);
        // Pairs reachable from (0, _) closing under edges on the first slot,
        // restricted to a < b, seeded from E(0, b).
        mu R(a: K, b: K) := (a = 0 & E(0, b)) | (E(a, b) & a < b & a != 5);
        query any := exists a: K, b: K. R(a, b);
        query none := exists a: K, b: K. R(a, b) & b <= a;
        "#,
    )
    .unwrap();
    let mut solver = Solver::new(system).unwrap();
    let eb = edges_to_bdd(&mut solver, "E", &[(1, 2), (5, 6), (4, 3), (0, 7)]);
    solver.set_input("E", eb).unwrap();
    assert!(solver.eval_query("any").unwrap());
    // R only holds pairs with a < b (or a = 0), so b <= a is only possible
    // for... a=0,b=7 has b>a; (1,2) a<b; (5,6) excluded by a!=5; (4,3)
    // excluded by a<b. Nothing with b <= a.
    assert!(!solver.eval_query("none").unwrap());
}

#[test]
fn nonmonotone_frontier_pattern_terminates() {
    // A miniature of the EFopt pattern: Step marks a frontier bit. The
    // relation is non-monotone (it reads its own complement) yet evaluation
    // stabilizes because the underlying reachable set grows monotonically.
    let system = parse_system(
        r#"
        type Fr = range 2;
        type S = range 8;
        input Init(s: S);
        input Trans(s: S, t: S);
        mu R(fr: Fr, s: S) :=
            (fr = 1 & Init(s))
          | R(1, s)
          | (fr = 1 & (exists x: S. Frontier(x) & Trans(x, s)))
          ;
        mu Frontier(s: S) := R(1, s) & !R(0, s);
        query hit := exists s: S. R(1, s) & s = 3;
        "#,
    )
    .unwrap();
    let mut solver = Solver::new(system).unwrap();
    let ib = set_to_bdd(&mut solver, "Init", &[0]);
    solver.set_input("Init", ib).unwrap();
    let tb = edges_to_bdd(&mut solver, "Trans", &[(0, 1), (1, 2), (2, 3)]);
    solver.set_input("Trans", tb).unwrap();
    let sys_not_positive = !solver.system().is_positive("Frontier");
    assert!(sys_not_positive, "Frontier must be detected as non-positive");
    assert!(solver.eval_query("hit").unwrap());
}

#[test]
fn forall_quantification() {
    let system = parse_system(
        r#"
        type S = range 4;
        input E(a: S, b: S);
        // Universal: states all of whose E-successors are even — expressed
        // with forall and implication.
        mu AllEven(a: S) := forall b: S. E(a, b) -> (b = 0 | b = 2);
        query q0 := exists a: S. AllEven(a) & a = 0;
        query q1 := exists a: S. AllEven(a) & a = 1;
        "#,
    )
    .unwrap();
    let mut solver = Solver::new(system).unwrap();
    let eb = edges_to_bdd(&mut solver, "E", &[(0, 2), (0, 0), (1, 3)]);
    solver.set_input("E", eb).unwrap();
    assert!(solver.eval_query("q0").unwrap(), "0's successors {{0,2}} are even");
    assert!(!solver.eval_query("q1").unwrap(), "1 has successor 3");
}

#[test]
fn stats_are_collected() {
    let system = parse_system(REACH_SRC).unwrap();
    let mut solver = Solver::new(system).unwrap();
    let ib = set_to_bdd(&mut solver, "Init", &[0]);
    solver.set_input("Init", ib).unwrap();
    let edges: Vec<(u64, u64)> = (0..15).map(|i| (i, i + 1)).collect();
    let tb = edges_to_bdd(&mut solver, "Trans", &edges);
    solver.set_input("Trans", tb).unwrap();
    solver.evaluate("Reach").unwrap();
    let stats = solver.stats();
    let reach = &stats.relations["Reach"];
    // A 16-chain takes 16 growth rounds + 1 to detect stability (+1 for the
    // empty start), so at least 16.
    assert!(reach.iterations >= 16, "iterations = {}", reach.iterations);
    assert!(reach.final_nodes > 0);
    assert!(solver.interpretation_nodes("Reach").is_some());
}

#[test]
fn divergence_detection() {
    use getafix_mucalc::{SolveError, SolveOptions, Strategy};
    // Flip(s) := !Flip(s) never stabilizes; the bound must catch it under
    // both strategies (the worklist engine routes the non-monotone
    // component to the nested semantics, which hits the same bound).
    for strategy in [Strategy::RoundRobin, Strategy::Worklist] {
        let system = parse_system(
            r#"
            type S = range 2;
            mu Flip(s: S) := !Flip(s);
            "#,
        )
        .unwrap();
        let mut solver = Solver::with_options(
            system,
            SolveOptions { max_iterations: 50, strategy, ..SolveOptions::new() },
        )
        .unwrap();
        let err = solver.evaluate("Flip").unwrap_err();
        assert!(matches!(err, SolveError::Diverged { .. }), "{strategy}: {err}");
    }
}

#[test]
fn zero_iteration_bound_rejected() {
    use getafix_mucalc::{SolveError, SolveOptions, Strategy};
    let system = parse_system(REACH_SRC).unwrap();
    let err = Solver::with_options(
        system,
        SolveOptions { max_iterations: 0, strategy: Strategy::Worklist, ..SolveOptions::new() },
    )
    .unwrap_err();
    assert!(matches!(err, SolveError::Options(_)), "{err}");
}

#[test]
fn programmatic_builder_equivalent_to_parsed() {
    // Build the REACH system via the builder API and check it prints to the
    // same normal form as the parsed version.
    let mut b = System::builder();
    b.declare_type("State", Type::Range(16)).unwrap();
    b.input("Init", vec![("s".into(), Type::named("State"))]);
    b.input("Trans", vec![("s".into(), Type::named("State")), ("t".into(), Type::named("State"))]);
    b.define(
        "Reach",
        vec![("u".into(), Type::named("State"))],
        Formula::or(vec![
            Formula::app("Init", vec![Term::var("u")]),
            Formula::exists(
                vec![("x".into(), Type::named("State"))],
                Formula::and(vec![
                    Formula::app("Reach", vec![Term::var("x")]),
                    Formula::app("Trans", vec![Term::var("x"), Term::var("u")]),
                ]),
            ),
        ]),
    );
    let built = b.build().unwrap();
    let parsed = parse_system(REACH_SRC).unwrap();
    assert_eq!(built.to_string(), parsed.to_string());
}

#[test]
fn inter_stratum_gc_preserves_results_and_reports_reclaim() {
    use getafix_mucalc::{SolveOptions, Strategy};
    // Two strata (Reach2 reads Reach), so the worklist engine crosses a
    // stratum boundary and a 0-node threshold forces a collection there.
    let src = r#"
        type State = range 16;
        input Init(s: State);
        input Trans(s: State, t: State);
        mu Reach(u: State) :=
            Init(u) | (exists x: State. Reach(x) & Trans(x, u));
        mu Reach2(u: State) :=
            Reach(u) | (exists x: State. Reach2(x) & Trans(x, u));
        query hit := exists u: State. Reach2(u) & u = 3;
    "#;
    let run = |gc_threshold: Option<usize>| {
        let system = parse_system(src).unwrap();
        let options = SolveOptions {
            strategy: Strategy::Worklist,
            record_provenance: true,
            gc_threshold,
            ..SolveOptions::new()
        };
        let mut solver = Solver::with_options(system, options).unwrap();
        let init = set_to_bdd(&mut solver, "Init", &[0]);
        solver.set_input("Init", init).unwrap();
        let trans = edges_to_bdd(&mut solver, "Trans", &[(0, 1), (1, 2), (2, 3)]);
        solver.set_input("Trans", trans).unwrap();
        let verdict = solver.eval_query("hit").unwrap();
        // Post-GC handles must still answer membership queries correctly.
        let vars = solver.alloc().formal("Reach2", 0).all_vars();
        let interp = solver.evaluate("Reach2").unwrap();
        let members: Vec<bool> = (0u64..16)
            .map(|v| {
                let mut env = vec![false; solver.manager_ref().var_count()];
                for (i, var) in vars.iter().enumerate() {
                    env[var.level() as usize] = (v >> i) & 1 == 1;
                }
                solver.manager_ref().eval(interp, &env)
            })
            .collect();
        let ranks = solver.provenance().rank_count("Reach2");
        let stats = solver.stats().clone();
        (verdict, members, ranks, stats)
    };
    let (v_gc, m_gc, r_gc, s_gc) = run(Some(0));
    let (v_no, m_no, r_no, s_no) = run(None);
    assert_eq!(v_gc, v_no);
    assert_eq!(m_gc, m_no);
    assert_eq!(r_gc, r_no, "provenance snapshots must survive collection");
    assert!(s_gc.gcs > 0, "a 0-node threshold must force collections");
    assert!(s_gc.gc_reclaimed_nodes > 0, "dead intermediates should be reclaimed");
    assert_eq!(s_no.gcs, 0);
    assert_eq!(s_no.gc_reclaimed_nodes, 0);
}

#[test]
fn mid_stratum_gc_preserves_results_in_a_long_monotone_scc() {
    use getafix_mucalc::{SolveOptions, Strategy};
    // A single monotone SCC that needs one worklist pass per chain link:
    // with a 0-node threshold, collections must fire *inside* the
    // stratum — once per pass — not just at the stratum boundary, while
    // the per-disjunct state (environment, accumulated values, domain
    // constraints) is remapped in place.
    let src = r#"
        type State = range 32;
        input Init(s: State);
        input Trans(s: State, t: State);
        mu Reach(u: State) :=
            Init(u) | (exists x: State. Reach(x) & Trans(x, u));
        query hit := exists u: State. Reach(u) & u = 31;
    "#;
    let chain: Vec<(u64, u64)> = (0..31).map(|i| (i, i + 1)).collect();
    let run = |gc_threshold: Option<usize>| {
        let system = parse_system(src).unwrap();
        let options = SolveOptions {
            strategy: Strategy::Worklist,
            record_provenance: true,
            gc_threshold,
            ..SolveOptions::new()
        };
        let mut solver = Solver::with_options(system, options).unwrap();
        let init = set_to_bdd(&mut solver, "Init", &[0]);
        solver.set_input("Init", init).unwrap();
        let trans = edges_to_bdd(&mut solver, "Trans", &chain);
        solver.set_input("Trans", trans).unwrap();
        let verdict = solver.eval_query("hit").unwrap();
        let vars = solver.alloc().formal("Reach", 0).all_vars();
        let interp = solver.evaluate("Reach").unwrap();
        let members: Vec<bool> = (0u64..32)
            .map(|v| {
                let mut env = vec![false; solver.manager_ref().var_count()];
                for (i, var) in vars.iter().enumerate() {
                    env[var.level() as usize] = (v >> i) & 1 == 1;
                }
                solver.manager_ref().eval(interp, &env)
            })
            .collect();
        let ranks = solver.provenance().rank_count("Reach");
        let stats = solver.stats().clone();
        (verdict, members, ranks, stats)
    };
    let (v_gc, m_gc, r_gc, s_gc) = run(Some(0));
    let (v_no, m_no, r_no, s_no) = run(None);
    assert!(v_gc, "state 31 is reachable along the chain");
    assert_eq!(v_gc, v_no);
    assert_eq!(m_gc, m_no, "interpretation must be bit-identical to the no-GC run");
    assert_eq!(r_gc, r_no, "provenance snapshots must survive mid-stratum collection");
    assert_eq!(
        s_gc.total_reevaluations(),
        s_no.total_reevaluations(),
        "collection must not change the schedule"
    );
    // The chain forces ~32 worklist passes in ONE stratum; a gc per pass
    // is far more than the handful of stratum boundaries in this system.
    assert!(
        s_gc.gcs > s_gc.sccs.len() + 2,
        "collections must fire mid-stratum, not only at boundaries (gcs = {}, sccs = {})",
        s_gc.gcs,
        s_gc.sccs.len()
    );
    assert!(s_gc.gc_reclaimed_nodes > 0);
    assert_eq!(s_no.gcs, 0);
}

#[test]
fn provenance_snapshots_are_increasing_and_end_at_fixpoint() {
    use getafix_mucalc::{SolveOptions, Strategy};
    for strategy in [Strategy::RoundRobin, Strategy::Worklist] {
        let system = parse_system(REACH_SRC).unwrap();
        let options = SolveOptions { strategy, record_provenance: true, ..SolveOptions::new() };
        let mut solver = Solver::with_options(system, options).unwrap();
        // Chain 0 -> 1 -> 2 -> 3: the fixpoint grows one state per round.
        let init = set_to_bdd(&mut solver, "Init", &[0]);
        solver.set_input("Init", init).unwrap();
        let trans = edges_to_bdd(&mut solver, "Trans", &[(0, 1), (1, 2), (2, 3)]);
        solver.set_input("Trans", trans).unwrap();
        let fixpoint = solver.evaluate("Reach").unwrap();
        let frontiers: Vec<_> = solver.provenance().snapshots("Reach").expect("recorded").to_vec();
        assert!(!frontiers.is_empty(), "{strategy}: no snapshots");
        assert_eq!(*frontiers.last().unwrap(), fixpoint, "{strategy}: last != final");
        // ⊆-increasing and strictly growing: f[i] ∧ ¬f[i+1] = ⊥, f[i] ≠ f[i+1].
        for w in frontiers.windows(2) {
            let outside = solver.manager().diff(w[0], w[1]);
            assert!(outside.is_false(), "{strategy}: snapshots not increasing");
            assert_ne!(w[0], w[1], "{strategy}: duplicate snapshot");
        }
        // The chain needs one discovery per state: 4 strictly-growing values.
        assert_eq!(frontiers.len(), 4, "{strategy}");
        assert_eq!(solver.provenance().rank_count("Reach"), 4, "{strategy}");
        // The provenance memory measure is populated and nonzero.
        assert!(solver.stats().provenance_nodes > 0, "{strategy}");
        // Rank queries agree with a linear scan.
        let vars = solver.alloc().formal("Reach", 0).all_vars();
        for state in 0u64..4 {
            let mut env = vec![false; solver.manager_ref().var_count()];
            for (i, v) in vars.iter().enumerate() {
                env[v.level() as usize] = (state >> i) & 1 == 1;
            }
            let rank = solver.provenance().rank_of(solver.manager_ref(), "Reach", &env);
            assert_eq!(rank, Some(state as usize), "{strategy}: state {state}");
            // `below` excludes the tuple at its own rank…
            let below = solver.provenance().below("Reach", state as usize);
            let m = solver.manager_ref();
            assert!(!m.eval(below, &env), "{strategy}: below({state}) contains the tuple");
        }
        // …and inputs invalidate everything.
        let init2 = set_to_bdd(&mut solver, "Init", &[1]);
        solver.set_input("Init", init2).unwrap();
        assert!(solver.provenance().is_empty(), "{strategy}: stale provenance survived");
    }
}
