//! The hand-rolled variable space and transfer relations for the PDS
//! baselines.
//!
//! Blocks (all interleaved bit-by-bit per kind so equalities and renames
//! stay linear):
//!
//! * `pc[0..4]` — program-counter copies,
//! * `l[0..4]`  — local-frame copies,
//! * `g[0..4]`  — global copies.
//!
//! A *summary element* lives over `(l[0], g[0], pc[1], l[1], g[1])`:
//! entry valuations (the entry pc is implied by `pc[1]`'s procedure) and
//! current state — the same shape as the paper's `Conf`.

use getafix_bdd::{Bdd, Manager, Var, VarMap};
use getafix_boolprog::{Cfg, Edge, Pc, VarRef};
use getafix_core::can_value;

/// Number of copies of each block kind.
pub const COPIES: usize = 5;

/// The allocated variable space plus the program's transfer relations.
pub struct Space {
    /// Node manager.
    pub m: Manager,
    /// `pc[i]` blocks, LSB first.
    pub pc: [Vec<Var>; COPIES],
    /// `l[i]` blocks.
    pub l: [Vec<Var>; COPIES],
    /// `g[i]` blocks.
    pub g: [Vec<Var>; COPIES],
    /// Internal transitions over `(pc1, l1, g1) → (pc2, l2, g2)`.
    pub int_rel: Bdd,
    /// Calls: `(pc1 = call site, l1, g1)` to callee entry locals in `l2`
    /// and entry pc in `pc2`.
    pub call_rel: Bdd,
    /// Call-site skip: `(pc1 = call, pc2 = return-to)`.
    pub skip_rel: Bdd,
    /// Return transfer: callee exit `(pc2 = exit, l2, g2)` with caller at
    /// call site `(pc1, l1)` yields post-return `(l3, g3)`.
    pub ret_rel: Bdd,
    /// pc → its procedure's entry pc, over `(pc1, pc2)`.
    pub proc_entry: Bdd,
    /// Target pcs over `pc1`.
    pub targets: Bdd,
    /// Initial configuration over `(pc1, l1, g1)`.
    pub init: Bdd,
}

fn eq_const(m: &mut Manager, bits: &[Var], value: u64) -> Bdd {
    let mut acc = Bdd::TRUE;
    for (i, &v) in bits.iter().enumerate() {
        let lit = m.literal(v, (value >> i) & 1 == 1);
        acc = m.and(acc, lit);
    }
    acc
}

fn eq_blocks(m: &mut Manager, a: &[Var], b: &[Var]) -> Bdd {
    let mut acc = Bdd::TRUE;
    for (&x, &y) in a.iter().zip(b) {
        let fx = m.var(x);
        let fy = m.var(y);
        let e = m.iff(fx, fy);
        acc = m.and(acc, e);
    }
    acc
}

fn eq_except(m: &mut Manager, a: &[Var], b: &[Var], except: &[usize]) -> Bdd {
    let mut acc = Bdd::TRUE;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        if except.contains(&i) {
            continue;
        }
        let fx = m.var(x);
        let fy = m.var(y);
        let e = m.iff(fx, fy);
        acc = m.and(acc, e);
    }
    acc
}

fn zero_above(m: &mut Manager, vars: &[Var], width: usize) -> Bdd {
    let mut acc = Bdd::TRUE;
    for &v in vars.iter().skip(width) {
        let nv = m.nvar(v);
        acc = m.and(acc, nv);
    }
    acc
}

fn assign_bit(
    m: &mut Manager,
    target: Var,
    e: &getafix_boolprog::LExpr,
    l: &[Var],
    g: &[Var],
) -> Bdd {
    let ct = can_value(m, e, l, g, true);
    let cf = can_value(m, e, l, g, false);
    let t = m.var(target);
    m.ite(t, ct, cf)
}

impl Space {
    /// Allocates the blocks and builds every transfer relation for `cfg`.
    pub fn build(cfg: &Cfg, target_pcs: &[Pc]) -> Space {
        let mut m = Manager::new();
        let pc_bits = 64 - (cfg.pc_count.max(2) as u64 - 1).leading_zeros() as usize;
        let l_bits = cfg.max_locals().max(1);
        let g_bits = cfg.globals.len().max(1);

        // Interleaved allocation per kind.
        let alloc = |m: &mut Manager, width: usize| -> [Vec<Var>; COPIES] {
            let block = m.new_vars(width * COPIES);
            std::array::from_fn(|c| (0..width).map(|b| block[b * COPIES + c]).collect())
        };
        let pc = alloc(&mut m, pc_bits);
        let l = alloc(&mut m, l_bits);
        let g = alloc(&mut m, g_bits);

        let n_globals = cfg.globals.len();

        // Internal transitions.
        let mut int_rel = Bdd::FALSE;
        for proc in &cfg.procs {
            let nl = proc.n_locals();
            let frame = {
                let a = zero_above(&mut m, &l[1], nl);
                let b = zero_above(&mut m, &l[2], nl);
                m.and(a, b)
            };
            for (&from, edges) in &proc.edges {
                for e in edges {
                    let Edge::Internal { to, guard, assigns } = e else { continue };
                    let mut b = eq_const(&mut m, &pc[1], from as u64);
                    let t = eq_const(&mut m, &pc[2], *to as u64);
                    b = m.and(b, t);
                    let gd = can_value(&mut m, guard, &l[1], &g[1], true);
                    b = m.and(b, gd);
                    let mut al = Vec::new();
                    let mut ag = Vec::new();
                    for (tv, ex) in assigns {
                        let tvar = match tv {
                            VarRef::Local(i) => {
                                al.push(*i);
                                l[2][*i]
                            }
                            VarRef::Global(i) => {
                                ag.push(*i);
                                g[2][*i]
                            }
                        };
                        let a = assign_bit(&mut m, tvar, ex, &l[1], &g[1]);
                        b = m.and(b, a);
                    }
                    let fl = eq_except(&mut m, &l[1][..nl], &l[2][..nl], &al);
                    b = m.and(b, fl);
                    let fg = eq_except(&mut m, &g[1][..n_globals], &g[2][..n_globals], &ag);
                    b = m.and(b, fg);
                    b = m.and(b, frame);
                    int_rel = m.or(int_rel, b);
                }
            }
        }

        // Calls, skips, returns.
        let mut call_rel = Bdd::FALSE;
        let mut skip_rel = Bdd::FALSE;
        let mut ret_rel = Bdd::FALSE;
        for proc in &cfg.procs {
            let caller_frame = zero_above(&mut m, &l[1], proc.n_locals());
            for (&from, edges) in &proc.edges {
                for e in edges {
                    let Edge::Call { callee, args, rets, ret_to } = e else { continue };
                    let q = &cfg.procs[*callee];
                    // call_rel
                    {
                        let mut b = eq_const(&mut m, &pc[1], from as u64);
                        let t = eq_const(&mut m, &pc[2], q.entry as u64);
                        b = m.and(b, t);
                        for (i, arg) in args.iter().enumerate() {
                            let a = assign_bit(&mut m, l[2][i], arg, &l[1], &g[1]);
                            b = m.and(b, a);
                        }
                        let rest = zero_above(&mut m, &l[2], args.len());
                        b = m.and(b, rest);
                        b = m.and(b, caller_frame);
                        call_rel = m.or(call_rel, b);
                    }
                    // skip_rel
                    {
                        let a = eq_const(&mut m, &pc[1], from as u64);
                        let b = eq_const(&mut m, &pc[2], *ret_to as u64);
                        let both = m.and(a, b);
                        skip_rel = m.or(skip_rel, both);
                    }
                    // ret_rel: caller (pc1 = call, l1) + callee exit
                    // (pc2, l2, g2) → post-return (l3, g3).
                    {
                        let local_targets: Vec<usize> = rets
                            .iter()
                            .filter_map(|r| match r {
                                VarRef::Local(i) => Some(*i),
                                _ => None,
                            })
                            .collect();
                        let global_targets: Vec<usize> = rets
                            .iter()
                            .filter_map(|r| match r {
                                VarRef::Global(i) => Some(*i),
                                _ => None,
                            })
                            .collect();
                        for exit in &q.exits {
                            let mut b = eq_const(&mut m, &pc[1], from as u64);
                            let x = eq_const(&mut m, &pc[2], exit.pc as u64);
                            b = m.and(b, x);
                            for (tv, ex) in rets.iter().zip(&exit.ret_exprs) {
                                let tvar = match tv {
                                    VarRef::Local(i) => l[3][*i],
                                    VarRef::Global(i) => g[3][*i],
                                };
                                let a = assign_bit(&mut m, tvar, ex, &l[2], &g[2]);
                                b = m.and(b, a);
                            }
                            let keep_l = eq_except(
                                &mut m,
                                &l[1][..proc.n_locals()],
                                &l[3][..proc.n_locals()],
                                &local_targets,
                            );
                            b = m.and(b, keep_l);
                            let keep_g = eq_except(
                                &mut m,
                                &g[2][..n_globals],
                                &g[3][..n_globals],
                                &global_targets,
                            );
                            b = m.and(b, keep_g);
                            let fu = zero_above(&mut m, &l[2], q.n_locals());
                            b = m.and(b, fu);
                            let fs = zero_above(&mut m, &l[3], proc.n_locals());
                            b = m.and(b, fs);
                            b = m.and(b, caller_frame);
                            ret_rel = m.or(ret_rel, b);
                        }
                    }
                }
            }
        }

        // pc → proc entry; targets; init.
        let mut proc_entry = Bdd::FALSE;
        for proc in &cfg.procs {
            let e = eq_const(&mut m, &pc[2], proc.entry as u64);
            for p in proc.pc_range.0..proc.pc_range.1 {
                let a = eq_const(&mut m, &pc[1], p as u64);
                let both = m.and(a, e);
                proc_entry = m.or(proc_entry, both);
            }
        }
        let mut targets = Bdd::FALSE;
        for &t in target_pcs {
            let b = eq_const(&mut m, &pc[1], t as u64);
            targets = m.or(targets, b);
        }
        let init = {
            let mut b = eq_const(&mut m, &pc[1], cfg.procs[cfg.main].entry as u64);
            let zl = eq_const(&mut m, &l[1], 0);
            b = m.and(b, zl);
            let zg = eq_const(&mut m, &g[1], 0);
            m.and(b, zg)
        };

        Space { m, pc, l, g, int_rel, call_rel, skip_rel, ret_rel, proc_entry, targets, init }
    }

    /// Renames blocks: all (pc, l, g) triples `(from_i → to_i)`.
    pub fn rename_blocks(&mut self, f: Bdd, moves: &[(usize, usize)]) -> Bdd {
        self.rename_parts(f, moves, moves, moves)
    }

    /// Renames per-kind blocks independently.
    pub fn rename_parts(
        &mut self,
        f: Bdd,
        pc_moves: &[(usize, usize)],
        l_moves: &[(usize, usize)],
        g_moves: &[(usize, usize)],
    ) -> Bdd {
        let mut pairs = Vec::new();
        for &(a, b) in pc_moves {
            pairs.extend(self.pc[a].iter().copied().zip(self.pc[b].iter().copied()));
        }
        for &(a, b) in l_moves {
            pairs.extend(self.l[a].iter().copied().zip(self.l[b].iter().copied()));
        }
        for &(a, b) in g_moves {
            pairs.extend(self.g[a].iter().copied().zip(self.g[b].iter().copied()));
        }
        let map = VarMap::new(pairs);
        self.m.rename(f, &map)
    }

    /// Cube over selected kinds of blocks.
    pub fn cube_parts(&mut self, pcs: &[usize], ls: &[usize], gs: &[usize]) -> Bdd {
        let mut vars = Vec::new();
        for &i in pcs {
            vars.extend(self.pc[i].iter().copied());
        }
        for &i in ls {
            vars.extend(self.l[i].iter().copied());
        }
        for &i in gs {
            vars.extend(self.g[i].iter().copied());
        }
        self.m.cube(&vars)
    }

    /// Equality of the g blocks `a` and `b`.
    pub fn eq_g(&mut self, a: usize, b: usize) -> Bdd {
        eq_blocks(&mut self.m, &self.g[a].clone(), &self.g[b].clone())
    }

    /// Equality of the l blocks `a` and `b`.
    pub fn eq_l(&mut self, a: usize, b: usize) -> Bdd {
        eq_blocks(&mut self.m, &self.l[a].clone(), &self.l[b].clone())
    }
}
