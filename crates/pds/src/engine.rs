//! The saturation engines: eager forward summaries (post*) and backward
//! reachability (pre*), hand-written over the raw variable space.

use crate::space::Space;
use getafix_bdd::Bdd;
use getafix_boolprog::{Cfg, Pc};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from the PDS engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdsError {
    /// Saturation failed to stabilize within the round bound.
    Diverged(usize),
}

impl fmt::Display for PdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdsError::Diverged(n) => write!(f, "saturation exceeded {n} rounds"),
        }
    }
}

impl std::error::Error for PdsError {}

/// Verdict and statistics of a PDS run.
#[derive(Debug, Clone)]
pub struct PdsResult {
    /// Is a target pc reachable?
    pub reachable: bool,
    /// Node count of the final summary (post*) or backward (pre*) set.
    pub set_nodes: usize,
    /// Saturation rounds.
    pub iterations: usize,
    /// Wall-clock time of the whole run (encoding + saturation).
    pub time: Duration,
}

const MAX_ROUNDS: usize = 1_000_000;

/// Summaries of every procedure from **every** entry valuation — the eager
/// exploration both engines share. The result lives over
/// `(l0, g0, pc1, l1, g1)`.
fn eager_summaries(sp: &mut Space, cfg: &Cfg) -> Result<(Bdd, usize), PdsError> {
    // Seed: each procedure's entry, any valuation, entry = current, local
    // frame zeroed above the procedure's width.
    let mut seed = Bdd::FALSE;
    for proc in &cfg.procs {
        let mut b = {
            let pcs = sp.pc[1].clone();
            crate_eq_const(sp, &pcs, proc.entry as u64)
        };
        let el = sp.eq_l(0, 1);
        b = sp.m.and(b, el);
        let eg = sp.eq_g(0, 1);
        b = sp.m.and(b, eg);
        let frame = zero_above_l(sp, 1, proc.n_locals());
        b = sp.m.and(b, frame);
        seed = sp.m.or(seed, b);
    }

    let cube_cur = sp.cube_parts(&[1], &[1], &[1]);
    let mut s = seed;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(PdsError::Diverged(MAX_ROUNDS));
        }
        // Internal image: ∃(pc1,l1,g1). S ∧ Int, then (2) → (1).
        let int_rel = sp.int_rel;
        let img = sp.m.and_exists(s, int_rel, cube_cur);
        let int_img = sp.rename_blocks(img, &[(2, 1)]);

        // Return image.
        let ret_img = return_image(sp, s, s);

        let mut next = sp.m.or(s, int_img);
        next = sp.m.or(next, ret_img);
        next = sp.m.or(next, seed);
        if next == s {
            break;
        }
        s = next;
    }
    Ok((s, rounds))
}

/// One application of the call-return composition: callers from `callers`,
/// callee summaries from `summaries`; result in caller summary space.
fn return_image(sp: &mut Space, callers: Bdd, summaries: Bdd) -> Bdd {
    // Callee summaries moved out of the caller's blocks:
    // entry (l0,g0) → (l4,g4); current (pc1,l1,g1) → (pc2,l2,g2).
    let callee = sp.rename_parts(summaries, &[(1, 2)], &[(0, 4), (1, 2)], &[(0, 4), (1, 2)]);
    // Args: callee entry locals (as l4) from the caller state; the callee
    // entry pc is dropped (the call site determines the callee, and
    // ret_rel re-ties call site to exit).
    let call_args = {
        let cube = sp.cube_parts(&[2], &[], &[]);
        let cr = sp.call_rel;
        let dropped = sp.m.exists(cr, cube);
        sp.rename_parts(dropped, &[], &[(2, 4)], &[])
    };
    // Callee entry globals = caller current globals.
    let link_g = sp.eq_g(4, 1);
    // Return-site pc: skip_rel over (pc1, pc3).
    let skip = {
        let sk = sp.skip_rel;
        sp.rename_parts(sk, &[(2, 3)], &[], &[])
    };

    let mut conj = sp.m.and(callers, callee);
    conj = sp.m.and(conj, call_args);
    conj = sp.m.and(conj, link_g);
    let ret_rel = sp.ret_rel;
    conj = sp.m.and(conj, ret_rel);
    conj = sp.m.and(conj, skip);

    // Quantify everything but (l0, g0) entry and the post-return state
    // (pc3, l3, g3); then move 3 → 1.
    let cube = sp.cube_parts(&[1, 2], &[1, 2, 4], &[1, 2, 4]);
    let projected = sp.m.exists(conj, cube);
    sp.rename_blocks(projected, &[(3, 1)])
}

/// Reachable entry configurations `(pc1, l1, g1)`, given the summary set.
fn entry_reach(sp: &mut Space, summaries: Bdd) -> Result<(Bdd, usize), PdsError> {
    let init = sp.init;
    let mut er = init;
    // Relations used each round.
    // proc_entry over (pc1, pc3): entry pc of the summary's procedure.
    let pe = {
        let p = sp.proc_entry;
        sp.rename_parts(p, &[(2, 3)], &[], &[])
    };
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(PdsError::Diverged(MAX_ROUNDS));
        }
        // ER of the summary's own entry: (pc3, l0, g0).
        let er_entry = sp.rename_parts(er, &[(1, 3)], &[(1, 0)], &[(1, 0)]);
        let mut conj = sp.m.and(summaries, er_entry);
        conj = sp.m.and(conj, pe);
        let call_rel = sp.call_rel;
        conj = sp.m.and(conj, call_rel);
        // Result: callee entry (pc2, l2) with globals g1.
        let cube = sp.cube_parts(&[1, 3], &[0, 1], &[0]);
        let img = sp.m.exists(conj, cube);
        let new_entries = sp.rename_parts(img, &[(2, 1)], &[(2, 1)], &[]);
        let mut next = sp.m.or(er, new_entries);
        next = sp.m.or(next, init);
        if next == er {
            break;
        }
        er = next;
    }
    Ok((er, rounds))
}

/// Forward saturation (MOPED 1 stand-in): eager summaries for every
/// procedure, then a reachable-entries filter for the verdict.
///
/// # Errors
///
/// Returns [`PdsError::Diverged`] if saturation exceeds the round bound.
pub fn poststar(cfg: &Cfg, targets: &[Pc]) -> Result<PdsResult, PdsError> {
    let t0 = Instant::now();
    let mut sp = Space::build(cfg, targets);
    let (summaries, it1) = eager_summaries(&mut sp, cfg)?;
    let (er, it2) = entry_reach(&mut sp, summaries)?;
    // Verdict: a summary at a target pc whose entry is reachable.
    let pe = {
        let p = sp.proc_entry;
        sp.rename_parts(p, &[(2, 3)], &[], &[])
    };
    let er_entry = sp.rename_parts(er, &[(1, 3)], &[(1, 0)], &[(1, 0)]);
    let tg = sp.targets;
    let mut hit = sp.m.and(summaries, tg);
    hit = sp.m.and(hit, pe);
    hit = sp.m.and(hit, er_entry);
    Ok(PdsResult {
        reachable: !hit.is_false(),
        set_nodes: sp.m.node_count(summaries),
        iterations: it1 + it2,
        time: t0.elapsed(),
    })
}

/// Backward saturation (MOPED 2 stand-in): the set of frame configurations
/// that can reach a target, stepping backward and skipping calls through
/// the eager summaries; verdict by membership of the initial configuration.
///
/// # Errors
///
/// Returns [`PdsError::Diverged`] if saturation exceeds the round bound.
pub fn prestar(cfg: &Cfg, targets: &[Pc]) -> Result<PdsResult, PdsError> {
    let t0 = Instant::now();
    let mut sp = Space::build(cfg, targets);
    let (summaries, it1) = eager_summaries(&mut sp, cfg)?;

    // W over (pc1, l1, g1): can reach a target in this frame or deeper.
    let mut w = sp.targets;
    let mut rounds = 0usize;
    // Pre-rename static relations.
    let skip = {
        let sk = sp.skip_rel;
        sp.rename_parts(sk, &[(2, 3)], &[], &[])
    };
    let call_args = {
        let cube = sp.cube_parts(&[2], &[], &[]);
        let cr = sp.call_rel;
        let dropped = sp.m.exists(cr, cube);
        sp.rename_parts(dropped, &[], &[(2, 4)], &[])
    };
    let callee_sum = sp.rename_parts(summaries, &[(1, 2)], &[(0, 4), (1, 2)], &[(0, 4), (1, 2)]);
    let link_g = sp.eq_g(4, 1);
    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(PdsError::Diverged(MAX_ROUNDS));
        }
        // Backward internal: ∃(pc2,l2,g2). Int ∧ W[1→2].
        let w2 = sp.rename_blocks(w, &[(1, 2)]);
        let cube2 = sp.cube_parts(&[2], &[2], &[2]);
        let int_rel = sp.int_rel;
        let back_int = sp.m.and_exists(int_rel, w2, cube2);

        // Backward into a call: the callee's entry state is in W.
        let w_entry = sp.rename_blocks(w, &[(1, 2)]);
        let geq = sp.eq_g(2, 1);
        let callee_w = sp.m.and(w_entry, geq);
        let call_rel = sp.call_rel;
        let back_call = sp.m.and_exists(call_rel, callee_w, cube2);

        // Backward across a call: the post-return state is in W.
        let w_after = sp.rename_blocks(w, &[(1, 3)]);
        let mut conj = sp.m.and(callee_sum, call_args);
        conj = sp.m.and(conj, link_g);
        let ret_rel = sp.ret_rel;
        conj = sp.m.and(conj, ret_rel);
        conj = sp.m.and(conj, skip);
        conj = sp.m.and(conj, w_after);
        let cube = sp.cube_parts(&[2, 3], &[2, 3, 4], &[2, 3, 4]);
        let back_skip = sp.m.exists(conj, cube);

        let mut next = sp.m.or(w, back_int);
        next = sp.m.or(next, back_call);
        next = sp.m.or(next, back_skip);
        if next == w {
            break;
        }
        w = next;
    }

    let init = sp.init;
    let hit = sp.m.and(init, w);
    Ok(PdsResult {
        reachable: !hit.is_false(),
        set_nodes: sp.m.node_count(w),
        iterations: it1 + rounds,
        time: t0.elapsed(),
    })
}

fn crate_eq_const(sp: &mut Space, bits: &[getafix_bdd::Var], value: u64) -> Bdd {
    let mut acc = Bdd::TRUE;
    for (i, &v) in bits.iter().enumerate() {
        let lit = sp.m.literal(v, (value >> i) & 1 == 1);
        acc = sp.m.and(acc, lit);
    }
    acc
}

fn zero_above_l(sp: &mut Space, block: usize, width: usize) -> Bdd {
    let vars = sp.l[block].clone();
    let mut acc = Bdd::TRUE;
    for &v in vars.iter().skip(width) {
        let nv = sp.m.nvar(v);
        acc = sp.m.and(acc, nv);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::{explicit_reachable, parse_program, Cfg};

    fn both_agree_with_oracle(src: &str, label: &str) {
        let cfg = Cfg::build(&parse_program(src).unwrap()).unwrap();
        let pc = cfg.label(label).unwrap();
        let oracle = explicit_reachable(&cfg, &[pc], 5_000_000).unwrap().reachable;
        let fwd = poststar(&cfg, &[pc]).unwrap();
        assert_eq!(fwd.reachable, oracle, "poststar vs oracle\n{src}");
        let bwd = prestar(&cfg, &[pc]).unwrap();
        assert_eq!(bwd.reachable, oracle, "prestar vs oracle\n{src}");
    }

    #[test]
    fn straight_line() {
        both_agree_with_oracle(
            r#"
            decl g;
            main() begin
              g := T;
              if (g) then HIT: skip; fi;
            end
            "#,
            "HIT",
        );
        both_agree_with_oracle(
            r#"
            decl g;
            main() begin
              g := F;
              if (g) then HIT: skip; fi;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn calls_and_returns() {
        both_agree_with_oracle(
            r#"
            decl g;
            main() begin
              decl x;
              x := f(T);
              if (x) then HIT: skip; fi;
            end
            f(a) returns 1 begin
              return !a;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn recursion() {
        both_agree_with_oracle(
            r#"
            decl g;
            main() begin
              call rec();
              if (g) then HIT: skip; fi;
            end
            rec() begin
              if (*) then
                g := !g;
                call rec();
              fi;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn unreachable_callee_summary_is_explored_eagerly() {
        // `never` is never called; the eager engines still summarize it —
        // that is the point of the §4.1-vs-§4.2 contrast. The verdict must
        // still be correct.
        both_agree_with_oracle(
            r#"
            decl g;
            main() begin
              g := F;
              if (g) then HIT: skip; fi;
            end
            never() begin
              g := T;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn target_inside_callee() {
        both_agree_with_oracle(
            r#"
            decl g;
            main() begin
              call f(T);
            end
            f(a) begin
              if (a) then HIT: skip; fi;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn target_unreachable_inside_callee() {
        both_agree_with_oracle(
            r#"
            decl g;
            main() begin
              call f(F);
            end
            f(a) begin
              if (a) then HIT: skip; fi;
            end
            "#,
            "HIT",
        );
    }
}
