//! Symbolic pushdown-system baselines, in the spirit of MOPED.
//!
//! The paper's evaluation (Figure 2) compares GETAFIX against MOPED's
//! forward and backward engines. This crate reimplements both as
//! *hand-coded* BDD algorithms — the low-level style the paper argues
//! against writing by hand:
//!
//! * [`poststar`] — forward saturation ("MOPED 1"). Like Moped's forward
//!   automaton construction, it grows procedure summaries from **every**
//!   entry (the eager exploration of the saturation approach) and then
//!   filters through reachable entries.
//! * [`prestar`] — backward saturation ("MOPED 2"). Computes the set of
//!   frame configurations that can reach the target, stepping backward
//!   through internal edges and skipping calls via the eagerly computed
//!   summaries. Backward search "can discover unreachable states" (§related
//!   work) — the inefficiency these baselines exhibit on some suites.
//!
//! Both engines share a private symbolic encoding over raw variable blocks
//! (`mod space`); there is no fixed-point calculus here, only manual image
//! computation, renaming and quantification — several hundred lines where
//! the formula in `getafix-core` is forty.

mod engine;
mod space;

pub use engine::{poststar, prestar, PdsError, PdsResult};
