//! A hand-coded per-program-point summary worklist engine, standing in for
//! BEBOP (Ball–Rajamani, SPIN 2000).
//!
//! Where the Getafix formulation keeps one monolithic BDD with a *symbolic*
//! program counter, Bebop partitions path edges by explicit program point
//! and drives a worklist: when the set at a point grows, its outgoing edges
//! are reprocessed. Summaries are the sets at exit points; discovering a
//! new exit state resumes every recorded call site. This is the classical
//! RHS functional approach — lazy like the entry-forward algorithm, but
//! implemented as several hundred lines of explicit BDD plumbing instead of
//! a page of formulae.

use getafix_bdd::{Bdd, Manager, Var, VarMap};
use getafix_boolprog::{Cfg, Edge, LExpr, Pc, ProcId, VarRef};
use getafix_core::can_value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BebopError {
    /// The worklist failed to drain within the step bound.
    Diverged(usize),
}

impl fmt::Display for BebopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BebopError::Diverged(n) => write!(f, "worklist exceeded {n} steps"),
        }
    }
}

impl std::error::Error for BebopError {}

/// Verdict and statistics.
#[derive(Debug, Clone)]
pub struct BebopResult {
    /// Is a target pc reachable?
    pub reachable: bool,
    /// Total DAG nodes across all per-point path-edge BDDs at the end.
    pub set_nodes: usize,
    /// Worklist steps processed.
    pub iterations: usize,
    /// Wall-clock time (encoding + solving).
    pub time: Duration,
}

const MAX_STEPS: usize = 10_000_000;

/// Variable blocks: entry (l0,g0), current (l1,g1), next/callee-exit
/// (l2,g2), post-return (l3,g3), callee-entry scratch (l4,g4).
struct Blocks {
    l: [Vec<Var>; 5],
    g: [Vec<Var>; 5],
}

struct Engine<'a> {
    cfg: &'a Cfg,
    m: Manager,
    b: Blocks,
    /// Path edges per pc, over (l0, g0, l1, g1).
    sets: BTreeMap<Pc, Bdd>,
    /// Call sites waiting on summaries of a procedure.
    callers: BTreeMap<ProcId, BTreeSet<(ProcId, Pc, usize)>>,
    work: VecDeque<Pc>,
    queued: BTreeSet<Pc>,
}

fn eq_blocks(m: &mut Manager, a: &[Var], b: &[Var]) -> Bdd {
    let mut acc = Bdd::TRUE;
    for (&x, &y) in a.iter().zip(b) {
        let fx = m.var(x);
        let fy = m.var(y);
        let e = m.iff(fx, fy);
        acc = m.and(acc, e);
    }
    acc
}

fn eq_except(m: &mut Manager, a: &[Var], b: &[Var], except: &[usize]) -> Bdd {
    let mut acc = Bdd::TRUE;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        if except.contains(&i) {
            continue;
        }
        let fx = m.var(x);
        let fy = m.var(y);
        let e = m.iff(fx, fy);
        acc = m.and(acc, e);
    }
    acc
}

fn zero_above(m: &mut Manager, vars: &[Var], width: usize) -> Bdd {
    let mut acc = Bdd::TRUE;
    for &v in vars.iter().skip(width) {
        let nv = m.nvar(v);
        acc = m.and(acc, nv);
    }
    acc
}

fn assign_bit(m: &mut Manager, target: Var, e: &LExpr, l: &[Var], g: &[Var]) -> Bdd {
    let ct = can_value(m, e, l, g, true);
    let cf = can_value(m, e, l, g, false);
    let t = m.var(target);
    m.ite(t, ct, cf)
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a Cfg) -> Engine<'a> {
        let mut m = Manager::new();
        let l_bits = cfg.max_locals().max(1);
        let g_bits = cfg.globals.len().max(1);
        const COPIES: usize = 5;
        let alloc = |m: &mut Manager, width: usize| -> [Vec<Var>; COPIES] {
            let block = m.new_vars(width * COPIES);
            std::array::from_fn(|c| (0..width).map(|b| block[b * COPIES + c]).collect())
        };
        let l = alloc(&mut m, l_bits);
        let g = alloc(&mut m, g_bits);
        Engine {
            cfg,
            m,
            b: Blocks { l, g },
            sets: BTreeMap::new(),
            callers: BTreeMap::new(),
            work: VecDeque::new(),
            queued: BTreeSet::new(),
        }
    }

    fn set_at(&self, pc: Pc) -> Bdd {
        self.sets.get(&pc).copied().unwrap_or(Bdd::FALSE)
    }

    fn add(&mut self, pc: Pc, states: Bdd) -> bool {
        let old = self.set_at(pc);
        let new = self.m.or(old, states);
        if new == old {
            return false;
        }
        self.sets.insert(pc, new);
        if self.queued.insert(pc) {
            self.work.push_back(pc);
        }
        true
    }

    fn rename(&mut self, f: Bdd, l_moves: &[(usize, usize)], g_moves: &[(usize, usize)]) -> Bdd {
        let mut pairs = Vec::new();
        for &(a, b) in l_moves {
            pairs.extend(self.b.l[a].iter().copied().zip(self.b.l[b].iter().copied()));
        }
        for &(a, b) in g_moves {
            pairs.extend(self.b.g[a].iter().copied().zip(self.b.g[b].iter().copied()));
        }
        let map = VarMap::new(pairs);
        self.m.rename(f, &map)
    }

    fn cube(&mut self, ls: &[usize], gs: &[usize]) -> Bdd {
        let mut vars = Vec::new();
        for &i in ls {
            vars.extend(self.b.l[i].iter().copied());
        }
        for &i in gs {
            vars.extend(self.b.g[i].iter().copied());
        }
        self.m.cube(&vars)
    }

    /// Transfer relation of an internal edge over (l1,g1) → (l2,g2).
    fn internal_transfer(
        &mut self,
        proc: &getafix_boolprog::ProcCfg,
        guard: &LExpr,
        assigns: &[(VarRef, LExpr)],
    ) -> Bdd {
        let (l1, g1) = (self.b.l[1].clone(), self.b.g[1].clone());
        let (l2, g2) = (self.b.l[2].clone(), self.b.g[2].clone());
        let m = &mut self.m;
        let mut t = can_value(m, guard, &l1, &g1, true);
        let mut al = Vec::new();
        let mut ag = Vec::new();
        for (tv, ex) in assigns {
            let tvar = match tv {
                VarRef::Local(i) => {
                    al.push(*i);
                    l2[*i]
                }
                VarRef::Global(i) => {
                    ag.push(*i);
                    g2[*i]
                }
            };
            let a = assign_bit(m, tvar, ex, &l1, &g1);
            t = m.and(t, a);
        }
        let nl = proc.n_locals();
        let ng = self.cfg.globals.len();
        let fl = eq_except(m, &l1[..nl], &l2[..nl], &al);
        t = m.and(t, fl);
        let fg = eq_except(m, &g1[..ng], &g2[..ng], &ag);
        t = m.and(t, fg);
        let za = zero_above(m, &l1, nl);
        t = m.and(t, za);
        let zb = zero_above(m, &l2, nl);
        m.and(t, zb)
    }

    fn process(&mut self, pc: Pc) -> Result<(), BebopError> {
        let proc = self.cfg.proc_of(pc).clone();
        let states = self.set_at(pc);
        if states.is_false() {
            return Ok(());
        }

        // Exit point: resume recorded callers.
        if proc.is_exit(pc) {
            let waiting: Vec<(ProcId, Pc, usize)> =
                self.callers.get(&proc.id).map(|s| s.iter().copied().collect()).unwrap_or_default();
            for (caller_proc, call_pc, edge_idx) in waiting {
                self.apply_return(caller_proc, call_pc, edge_idx, proc.id, pc)?;
            }
        }

        let edges = proc.edges.get(&pc).cloned().unwrap_or_default();
        for (edge_idx, edge) in edges.iter().enumerate() {
            match edge {
                Edge::Internal { to, guard, assigns } => {
                    let t = self.internal_transfer(&proc, guard, assigns);
                    let cube = self.cube(&[1], &[1]);
                    let img = self.m.and_exists(states, t, cube);
                    let moved = self.rename(img, &[(2, 1)], &[(2, 1)]);
                    self.add(*to, moved);
                }
                Edge::Call { callee, args, .. } => {
                    // Seed the callee entry.
                    let q = self.cfg.procs[*callee].clone();
                    let (l1, g1) = (self.b.l[1].clone(), self.b.g[1].clone());
                    let l2 = self.b.l[2].clone();
                    let mut argrel = Bdd::TRUE;
                    {
                        let m = &mut self.m;
                        for (i, a) in args.iter().enumerate() {
                            let ab = assign_bit(m, l2[i], a, &l1, &g1);
                            argrel = m.and(argrel, ab);
                        }
                        let rest = zero_above(m, &l2, args.len());
                        argrel = m.and(argrel, rest);
                    }
                    let cube = self.cube(&[0, 1], &[0]);
                    let entry_half = self.m.and_exists(states, argrel, cube);
                    // entry_half over (g1, l2): build (l0,g0,l1,g1) with
                    // l1 := l2, l0 = l1, g0 = g1.
                    let moved = self.rename(entry_half, &[(2, 1)], &[]);
                    let el = eq_blocks(&mut self.m, &self.b.l[0].clone(), &self.b.l[1].clone());
                    let eg = eq_blocks(&mut self.m, &self.b.g[0].clone(), &self.b.g[1].clone());
                    let mut seed = self.m.and(moved, el);
                    seed = self.m.and(seed, eg);
                    self.add(q.entry, seed);
                    // Record the call site and apply existing summaries.
                    self.callers.entry(*callee).or_default().insert((proc.id, pc, edge_idx));
                    let exits: Vec<Pc> = q.exits.iter().map(|e| e.pc).collect();
                    for x in exits {
                        self.apply_return(proc.id, pc, edge_idx, *callee, x)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Composes the caller set at `call_pc` with the callee summary at exit
    /// `exit_pc`; adds the result at the return site.
    fn apply_return(
        &mut self,
        caller_proc: ProcId,
        call_pc: Pc,
        edge_idx: usize,
        callee: ProcId,
        exit_pc: Pc,
    ) -> Result<bool, BebopError> {
        let caller_states = self.set_at(call_pc);
        let summary = self.set_at(exit_pc);
        if caller_states.is_false() || summary.is_false() {
            return Ok(false);
        }
        let cp = self.cfg.procs[caller_proc].clone();
        let q = self.cfg.procs[callee].clone();
        let Edge::Call { args, rets, ret_to, .. } = cp.edges[&call_pc][edge_idx].clone() else {
            return Ok(false);
        };
        let exit = q.exits.iter().find(|e| e.pc == exit_pc).expect("exit point").clone();

        // Callee summary: entry (l0,g0) → (l4,g4); exit (l1,g1) → (l2,g2).
        let callee_sum = self.rename(summary, &[(0, 4), (1, 2)], &[(0, 4), (1, 2)]);
        // Link: callee entry globals g4 = caller g1; entry locals l4 = args.
        let link_g = eq_blocks(&mut self.m, &self.b.g[4].clone(), &self.b.g[1].clone());
        let (l1, g1) = (self.b.l[1].clone(), self.b.g[1].clone());
        let l4 = self.b.l[4].clone();
        let mut argrel = Bdd::TRUE;
        {
            let m = &mut self.m;
            for (i, a) in args.iter().enumerate() {
                let ab = assign_bit(m, l4[i], a, &l1, &g1);
                argrel = m.and(argrel, ab);
            }
            let rest = zero_above(m, &l4, args.len());
            argrel = m.and(argrel, rest);
        }
        // Return transfer: post state (l3, g3) from exit (l2, g2) and
        // caller locals l1.
        let (l2, g2) = (self.b.l[2].clone(), self.b.g[2].clone());
        let (l3, g3) = (self.b.l[3].clone(), self.b.g[3].clone());
        let mut retrel = Bdd::TRUE;
        {
            let m = &mut self.m;
            let mut al = Vec::new();
            let mut ag = Vec::new();
            for (tv, ex) in rets.iter().zip(&exit.ret_exprs) {
                let tvar = match tv {
                    VarRef::Local(i) => {
                        al.push(*i);
                        l3[*i]
                    }
                    VarRef::Global(i) => {
                        ag.push(*i);
                        g3[*i]
                    }
                };
                let ab = assign_bit(m, tvar, ex, &l2, &g2);
                retrel = m.and(retrel, ab);
            }
            let nl = cp.n_locals();
            let ng = self.cfg.globals.len();
            let keep_l = eq_except(m, &l1[..nl], &l3[..nl], &al);
            retrel = m.and(retrel, keep_l);
            let keep_g = eq_except(m, &g2[..ng], &g3[..ng], &ag);
            retrel = m.and(retrel, keep_g);
            let z = zero_above(m, &l3, nl);
            retrel = m.and(retrel, z);
        }

        let mut conj = self.m.and(caller_states, callee_sum);
        conj = self.m.and(conj, link_g);
        conj = self.m.and(conj, argrel);
        conj = self.m.and(conj, retrel);
        let cube = self.cube(&[1, 2, 4], &[1, 2, 4]);
        let projected = self.m.exists(conj, cube);
        let moved = self.rename(projected, &[(3, 1)], &[(3, 1)]);
        Ok(self.add(ret_to, moved))
    }
}

/// Runs the worklist engine; reachability of any pc in `targets`.
///
/// # Errors
///
/// Returns [`BebopError::Diverged`] if the worklist exceeds the step bound.
pub fn bebop_reachable(cfg: &Cfg, targets: &[Pc]) -> Result<BebopResult, BebopError> {
    let t0 = Instant::now();
    let mut e = Engine::new(cfg);
    let target_set: BTreeSet<Pc> = targets.iter().copied().collect();

    // Seed: main entry, everything false, entry = current.
    let main = &cfg.procs[cfg.main];
    let seed = {
        let blocks: Vec<Vec<Var>> =
            vec![e.b.l[0].clone(), e.b.l[1].clone(), e.b.g[0].clone(), e.b.g[1].clone()];
        let m = &mut e.m;
        let mut b = Bdd::TRUE;
        for blk in &blocks {
            for &v in blk.iter() {
                let nv = m.nvar(v);
                b = m.and(b, nv);
            }
        }
        b
    };
    e.add(main.entry, seed);

    let mut steps = 0usize;
    while let Some(pc) = e.work.pop_front() {
        e.queued.remove(&pc);
        steps += 1;
        if steps > MAX_STEPS {
            return Err(BebopError::Diverged(MAX_STEPS));
        }
        // Early exit: target discovered.
        if target_set.iter().any(|t| !e.set_at(*t).is_false()) {
            break;
        }
        e.process(pc)?;
    }

    let reachable = target_set.iter().any(|t| !e.set_at(*t).is_false());
    let set_nodes = e.sets.values().map(|&b| e.m.node_count(b)).sum();
    Ok(BebopResult { reachable, set_nodes, iterations: steps, time: t0.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::{explicit_reachable, parse_program};

    fn agree(src: &str, label: &str) {
        let cfg = Cfg::build(&parse_program(src).unwrap()).unwrap();
        let pc = cfg.label(label).unwrap();
        let oracle = explicit_reachable(&cfg, &[pc], 5_000_000).unwrap().reachable;
        let got = bebop_reachable(&cfg, &[pc]).unwrap();
        assert_eq!(got.reachable, oracle, "bebop vs oracle\n{src}");
    }

    #[test]
    fn basics() {
        agree(
            r#"
            decl g;
            main() begin
              g := T;
              if (g) then HIT: skip; fi;
            end
            "#,
            "HIT",
        );
        agree(
            r#"
            decl g;
            main() begin
              g := F;
              if (g) then HIT: skip; fi;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn call_chain() {
        agree(
            r#"
            decl g;
            main() begin
              decl x;
              x := f(T);
              if (x) then HIT: skip; fi;
            end
            f(a) returns 1 begin
              decl y;
              y := h(a);
              return y;
            end
            h(b) returns 1 begin
              return !b;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn recursion() {
        agree(
            r#"
            decl g;
            main() begin
              call rec();
              if (g) then HIT: skip; fi;
            end
            rec() begin
              if (*) then
                g := !g;
                call rec();
              fi;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn summary_applied_to_later_callers() {
        agree(
            r#"
            decl g;
            main() begin
              decl x, y;
              x := f(F);
              y := f(T);
              if (x & y) then HIT: skip; fi;
            end
            f(a) returns 1 begin
              return a | g;
            end
            "#,
            "HIT",
        );
    }

    #[test]
    fn unreachable_proc_not_summarized() {
        agree(
            r#"
            decl g;
            main() begin
              g := F;
              if (g) then HIT: skip; fi;
            end
            never() begin
              g := T;
            end
            "#,
            "HIT",
        );
    }
}
