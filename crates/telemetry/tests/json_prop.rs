//! Property tests of the JSON escaping path and the exporters under
//! hostile names.
//!
//! Relation and procedure names come straight from user programs, so the
//! Chrome exporter, the folded-stack exporter and every `--stats-json`
//! document must survive quotes, backslashes, control characters and
//! non-ASCII text in them. The oracle is the crate's own parser — the
//! same one the bench reporter and trace tests consume — so a failure
//! here is a real tooling break, not a stylistic one.

use getafix_telemetry::json::{escape, parse, JsonWriter, Value};
use getafix_telemetry::{parse_folded, AttrValue, Phase, SpanRecord, TraceData};
use proptest::prelude::*;

/// Characters deliberately chosen to stress the escaper: JSON structural
/// characters, every escape shorthand, raw control chars, DEL, the
/// JavaScript line separators, multi-byte scripts and an astral-plane
/// emoji.
const POOL: [char; 24] = [
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{8}', '\u{c}',
    '\u{1b}', '\u{1f}', '\u{7f}', '\u{2028}', '\u{2029}', 'é', 'λ', '中', '🔥', ';',
];

/// An arbitrary hostile string drawn from [`POOL`].
fn hostile_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..POOL.len(), 0..24)
        .prop_map(|idx| idx.into_iter().map(|i| POOL[i]).collect())
}

/// A span named `reeval` carrying `s` as its `relation` attribute.
fn reeval_span(s: &str, start: u64, end: u64) -> SpanRecord {
    SpanRecord {
        phase: Phase::Solve,
        name: "reeval",
        t_start_us: start,
        t_end_us: end,
        depth: 0,
        tid: 1,
        attrs: vec![("relation", AttrValue::Str(s.to_string()))],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `escape` → `parse` is the identity on arbitrary hostile strings.
    #[test]
    fn escape_round_trips_through_parse(s in hostile_string()) {
        let doc = format!("\"{}\"", escape(&s));
        let parsed = parse(&doc).expect("escaped string parses");
        prop_assert_eq!(parsed, Value::Str(s.clone()));
    }

    /// A whole document written through `JsonWriter` with hostile keys and
    /// values parses back to the exact strings.
    #[test]
    fn writer_documents_round_trip(key in hostile_string(), val in hostile_string()) {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", &key);
        w.key("values");
        w.begin_array();
        w.value_str(&val);
        w.value_str(&key);
        w.end_array();
        w.end_object();
        let v = parse(&w.finish()).expect("writer output parses");
        prop_assert_eq!(v.get("name").and_then(Value::as_str), Some(key.as_str()));
        let arr = v.get("values").and_then(Value::as_array).expect("values array");
        prop_assert_eq!(arr[0].as_str(), Some(val.as_str()));
        prop_assert_eq!(arr[1].as_str(), Some(key.as_str()));
    }

    /// The Chrome exporter stays valid JSON under hostile span attributes
    /// and event names, and the attribute value survives verbatim.
    #[test]
    fn chrome_export_survives_hostile_attrs(rel in hostile_string()) {
        let data = TraceData {
            spans: vec![reeval_span(&rel, 10, 20)],
            ..TraceData::default()
        };
        let v = parse(&data.chrome_trace_json()).expect("chrome trace parses");
        let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        let hit = events.iter().find_map(|e| {
            e.get("args").and_then(|a| a.get("relation")).and_then(Value::as_str)
        });
        prop_assert_eq!(hit, Some(rel.as_str()));
    }

    /// The folded exporter always emits structurally valid lines — every
    /// frame free of `;` and whitespace, every weight a `u64` — no matter
    /// what the relation was called, and total weight still partitions
    /// the root span.
    #[test]
    fn folded_export_survives_hostile_relations(rel in hostile_string()) {
        let mut inner = reeval_span(&rel, 10, 40);
        inner.depth = 1;
        let root = SpanRecord {
            phase: Phase::Solve,
            name: "evaluate",
            t_start_us: 0,
            t_end_us: 100,
            depth: 0,
            tid: 1,
            attrs: Vec::new(),
        };
        let data = TraceData { spans: vec![inner, root], ..TraceData::default() };
        let folded = data.folded_stacks();
        let rows = parse_folded(&folded).expect("folded output is structurally valid");
        let total: u64 = rows.iter().map(|(_, w)| w).sum();
        prop_assert_eq!(total, 100);
    }
}
