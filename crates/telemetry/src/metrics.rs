//! The live metrics registry: named monotonic counters, gauges and
//! timestamped time series.
//!
//! [`Registry`] is a plain value type, deliberately independent of the
//! thread-local collector: the `getafix serve` mode and per-worker
//! parallel solving will own registries directly and publish snapshots
//! from them, while today's CLI reaches the same registry through the
//! collector's free functions ([`crate::counter_add`], [`crate::sample`],
//! …). A snapshot is one [`Registry::to_json`] call — the export surface
//! a scrape endpoint will serve verbatim.
//!
//! Time series are what turn the solver's end-of-run aggregates into
//! trajectories: the solver samples [`ManagerStats`]-derived values at
//! every stratum boundary, so a long ef-opt run shows cache hit rate and
//! arena growth *over time* instead of one terminal ratio.
//!
//! [`ManagerStats`]: https://docs.rs/getafix-bdd

use crate::json::JsonWriter;
use std::collections::BTreeMap;

/// One `(t_us, value)` time-series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Microseconds since the owning collector/registry epoch.
    pub t_us: u64,
    pub value: f64,
}

/// A named-metrics registry: counters, gauges and time series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    series: BTreeMap<&'static str, Vec<Sample>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named monotonic counter (creating it at 0).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Appends a time-series point with an explicit timestamp.
    pub fn sample_at(&mut self, name: &'static str, t_us: u64, value: f64) {
        self.series.entry(name).or_default().push(Sample { t_us, value });
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The recorded points of a time series (empty if never sampled).
    pub fn series(&self, name: &str) -> &[Sample] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates all time series, name-ordered.
    pub fn all_series(&self) -> impl Iterator<Item = (&'static str, &[Sample])> {
        self.series.iter().map(|(&n, s)| (n, s.as_slice()))
    }

    /// Merges another registry into this one: counters add, gauges
    /// overwrite (last writer wins), series extend with the other's
    /// points appended. This is the wave-join operation of parallel
    /// solving — per-worker registries fold into the coordinator's so
    /// heartbeats and `--stats-json` report fleet-wide totals.
    pub fn absorb(&mut self, other: &Registry) {
        for (&name, &v) in &other.counters {
            self.counter_add(name, v);
        }
        for (&name, &v) in &other.gauges {
            self.gauge_set(name, v);
        }
        for (&name, samples) in &other.series {
            self.series.entry(name).or_default().extend_from_slice(samples);
        }
    }

    /// Is there nothing recorded at all?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.series.is_empty()
    }

    /// Serializes the whole registry as a self-contained JSON object:
    /// `{ "counters": {…}, "gauges": {…}, "series": { name: [{"t_us":…,
    /// "value":…}, …] } }`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes the registry object into an existing [`JsonWriter`] (so the
    /// trace exporter can embed it in a larger document).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, v) in &self.counters {
            w.field_u64(name, *v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, v) in &self.gauges {
            w.field_f64(name, *v);
        }
        w.end_object();
        w.key("series");
        w.begin_object();
        for (name, samples) in &self.series {
            w.key(name);
            w.begin_array();
            for s in samples {
                w.begin_object();
                w.field_u64("t_us", s.t_us);
                w.field_f64("value", s.value);
                w.end_object();
            }
            w.end_array();
        }
        w.end_object();
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn counters_gauges_series() {
        let mut r = Registry::new();
        r.counter_add("reevals", 3);
        r.counter_add("reevals", 4);
        r.gauge_set("arena_nodes", 128.0);
        r.sample_at("hit_rate", 10, 0.5);
        r.sample_at("hit_rate", 20, 0.75);
        assert_eq!(r.counter("reevals"), 7);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("arena_nodes"), Some(128.0));
        assert_eq!(r.series("hit_rate").len(), 2);
        assert!(!r.is_empty());

        let v = parse(&r.to_json()).expect("registry JSON parses");
        assert_eq!(
            v.get("counters").and_then(|c| c.get("reevals")).and_then(Value::as_f64),
            Some(7.0)
        );
        let series = v
            .get("series")
            .and_then(|s| s.get("hit_rate"))
            .and_then(Value::as_array)
            .expect("series array");
        assert_eq!(series[1].get("value").and_then(Value::as_f64), Some(0.75));
    }
}
