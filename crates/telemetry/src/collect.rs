//! The thread-local collector: RAII spans, instant events and the metrics
//! registry behind one `enabled` branch.
//!
//! # Cost model
//!
//! Instrumentation points are compiled into the solver's hottest loops, so
//! the disabled path must be a **single thread-local flag test**: every
//! entry point ([`span`], [`event`], [`counter_add`], [`gauge_set`],
//! [`sample`]) first reads a `Cell<bool>` and returns before touching any
//! argument that would allocate. Dynamic attribute values therefore travel
//! as closures ([`event`]) or post-hoc [`Span::attr`] calls — never as
//! eagerly built strings.
//!
//! # Why thread-local
//!
//! The solver is single-threaded today, but the ROADMAP's parallel
//! stratified solving shards work across per-worker BDD managers. A
//! thread-local collector per worker needs no locks, and per-thread span
//! streams are exactly what the Chrome trace format wants (`tid` per
//! worker). [`install`]/[`take`] operate on the calling thread only.

use crate::metrics::Registry;
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Which pipeline stage a span or event belongs to — the `cat` field of
/// the exported Chrome trace events, and the grouping key of the
/// `--profile` summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Reading and parsing source programs.
    Parse,
    /// Formula generation + template installation (sequential and merged).
    Encode,
    /// Concurrent program merging.
    Merge,
    /// Fixed-point evaluation (strata, rounds, re-evaluations).
    Solve,
    /// Witness extraction, refinement and replay.
    Witness,
    /// BDD kernel events: GC, unique-table rehash, cache generations.
    Bdd,
}

impl Phase {
    /// The stable lower-case name (used as the Chrome `cat`).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Encode => "encode",
            Phase::Merge => "merge",
            Phase::Solve => "solve",
            Phase::Witness => "witness",
            Phase::Bdd => "bdd",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Int(i64),
    UInt(u64),
    Float(f64),
    Bool(bool),
    Str(String),
}

macro_rules! attr_from {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for AttrValue {
            fn from(v: $t) -> AttrValue {
                AttrValue::$variant(v as $conv)
            }
        }
    )*};
}
attr_from!(i64 => Int as i64, i32 => Int as i64, u64 => UInt as u64, u32 => UInt as u64,
           usize => UInt as u64, f64 => Float as f64);

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

/// Attribute list of one span or event.
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// One completed span: a `(phase, name, t_start, t_end, attrs)` record.
/// `depth` is the span-stack depth at entry (0 = top level), which the
/// well-formedness checks and self-time computation key on.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub phase: Phase,
    pub name: &'static str,
    /// Microseconds since the collector was installed.
    pub t_start_us: u64,
    pub t_end_us: u64,
    pub depth: usize,
    /// Logical thread id of the recording collector: `1` for the main
    /// collector, `2 + worker index` for per-worker collectors (see
    /// [`install_worker`]). The Chrome trace export renders one track per
    /// distinct tid.
    pub tid: u64,
    pub attrs: Attrs,
}

impl SpanRecord {
    /// The span's wall-clock duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.t_end_us - self.t_start_us
    }
}

/// One instantaneous event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub phase: Phase,
    pub name: &'static str,
    /// Microseconds since the collector was installed.
    pub t_us: u64,
    /// Logical thread id (see [`SpanRecord::tid`]).
    pub tid: u64,
    pub attrs: Attrs,
}

/// Everything one collector recorded, in emission order. Spans appear in
/// **completion** order (a parent closes after its children); events and
/// metric samples are timestamped independently.
#[derive(Debug, Default)]
pub struct TraceData {
    pub spans: Vec<SpanRecord>,
    pub events: Vec<EventRecord>,
    pub metrics: Registry,
}

/// A throttled live-progress sink: called with a rendered heartbeat line
/// at most once per `interval_us` of collector time, from instrumentation
/// points as they fire.
struct Progress {
    interval_us: u64,
    last_us: Option<u64>,
    sink: Box<dyn FnMut(&str)>,
}

/// The per-thread recording state.
struct Collector {
    epoch: Instant,
    /// Logical thread id stamped on every record this collector emits.
    tid: u64,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    depth: usize,
    metrics: Registry,
    progress: Option<Progress>,
}

impl Collector {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Emits a heartbeat if a progress sink is attached and due. Called
    /// from the recording (enabled-only) paths, never the disabled path.
    fn tick_progress(&mut self) {
        let now = self.now_us();
        let Some(p) = &mut self.progress else { return };
        // Nothing to report yet (parse/encode) — hold the first beat, and
        // the throttle window, until a solve metric exists.
        if !crate::progress::has_signal(&self.metrics) {
            return;
        }
        let due = p.last_us.is_none_or(|last| now.saturating_sub(last) >= p.interval_us);
        if !due {
            return;
        }
        p.last_us = Some(now);
        let line = crate::progress::heartbeat(now, &self.metrics);
        (p.sink)(&line);
    }
}

thread_local! {
    /// Fast path: is a collector installed on this thread?
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Is a collector installed on the calling thread? One `Cell` read — the
/// branch every disabled instrumentation point reduces to.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Installs a fresh collector on the calling thread (replacing any
/// previous one and discarding its records). Timestamps are relative to
/// this moment.
pub fn install() {
    install_with(1, Instant::now());
}

/// Installs a collector on a worker thread, stamping `tid` on every record
/// and measuring time from the coordinator's `epoch` (obtain it via
/// [`epoch`] on the main thread) so worker spans line up with the main
/// track in the exported trace. Use tids `2 + worker_index`; tid `1` is
/// the main collector.
pub fn install_worker(tid: u64, epoch: Instant) {
    install_with(tid, epoch);
}

fn install_with(tid: u64, epoch: Instant) {
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(Collector {
            epoch,
            tid,
            spans: Vec::new(),
            events: Vec::new(),
            depth: 0,
            metrics: Registry::default(),
            progress: None,
        });
    });
    ENABLED.with(|e| e.set(true));
}

/// The installed collector's epoch (the instant timestamps count from), or
/// `None` when no collector is installed. Workers pass this to
/// [`install_worker`] so all tracks share one clock.
pub fn epoch() -> Option<Instant> {
    with_collector(|c| c.epoch)
}

/// Merges a worker's [`TraceData`] into the calling thread's collector:
/// spans and events are appended as-is (they carry their own `tid`),
/// counters add, gauges overwrite, series extend. The progress heartbeat
/// sees the merged totals, so aggregate counters like `solve.reevals`
/// reflect every worker after a join. No-op when no collector is
/// installed.
pub fn absorb(data: TraceData) {
    with_collector(|c| {
        c.spans.extend(data.spans);
        c.events.extend(data.events);
        c.metrics.absorb(&data.metrics);
        c.tick_progress();
    });
}

/// Attaches a live-progress sink to the calling thread's collector: from
/// now on, instrumentation points render a heartbeat line (see
/// [`crate::progress::heartbeat`]) into `sink` at most once per
/// `interval`. Replaces any previous sink. Returns `false` (and does
/// nothing) when no collector is installed — progress is a feature of an
/// active collector, never of the disabled fast path.
pub fn attach_progress(interval: std::time::Duration, sink: impl FnMut(&str) + 'static) -> bool {
    with_collector(|c| {
        c.progress = Some(Progress {
            interval_us: interval.as_micros() as u64,
            last_us: None,
            sink: Box::new(sink),
        });
    })
    .is_some()
}

/// A snapshot of the installed collector's metrics registry, without
/// uninstalling it. `None` when no collector is installed. This is how
/// `--stats-json` embeds live metrics mid-run.
pub fn metrics_snapshot() -> Option<Registry> {
    with_collector(|c| c.metrics.clone())
}

/// Uninstalls the calling thread's collector and returns everything it
/// recorded. `None` if no collector was installed. Open spans guards that
/// outlive the take record nothing.
pub fn take() -> Option<TraceData> {
    ENABLED.with(|e| e.set(false));
    COLLECTOR.with(|c| c.borrow_mut().take()).map(|c| TraceData {
        spans: c.spans,
        events: c.events,
        metrics: c.metrics,
    })
}

/// Runs `f` with the installed collector, if any.
#[inline]
fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    COLLECTOR.with(|c| c.borrow_mut().as_mut().map(f))
}

/// An RAII span guard: records a [`SpanRecord`] from creation to drop.
/// When no collector is installed the guard is inert — creating and
/// dropping it is a flag test each.
#[derive(Debug)]
pub struct Span(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    phase: Phase,
    name: &'static str,
    t_start_us: u64,
    depth: usize,
    attrs: Attrs,
}

/// Opens a span. `name` must be a static label — dynamic values belong in
/// [`Span::attr`], which is free when disabled (the hot paths pass
/// integers, never formatted strings).
#[inline]
pub fn span(phase: Phase, name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    Span(with_collector(|c| {
        c.depth += 1;
        SpanInner { phase, name, t_start_us: c.now_us(), depth: c.depth - 1, attrs: Vec::new() }
    }))
}

impl Span {
    /// Attaches an attribute (no-op when the guard is inert).
    #[inline]
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(inner) = &mut self.0 {
            inner.attrs.push((key, value.into()));
        }
    }

    /// Is this guard actually recording?
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        with_collector(|c| {
            c.depth = c.depth.saturating_sub(1);
            let t_end_us = c.now_us().max(inner.t_start_us);
            c.spans.push(SpanRecord {
                phase: inner.phase,
                name: inner.name,
                t_start_us: inner.t_start_us,
                t_end_us,
                depth: inner.depth,
                tid: c.tid,
                attrs: inner.attrs,
            });
            c.tick_progress();
        });
    }
}

/// Records an instantaneous event. The attribute closure only runs when a
/// collector is installed, so hot call sites pay one flag test when
/// disabled.
#[inline]
pub fn event(phase: Phase, name: &'static str, attrs: impl FnOnce() -> Attrs) {
    if !enabled() {
        return;
    }
    with_collector(|c| {
        let t_us = c.now_us();
        let attrs = attrs();
        c.events.push(EventRecord { phase, name, t_us, tid: c.tid, attrs });
        c.tick_progress();
    });
}

/// Adds to a named monotonic counter in the installed registry.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_collector(|c| {
        c.metrics.counter_add(name, delta);
        c.tick_progress();
    });
}

/// Sets a named gauge in the installed registry.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_collector(|c| {
        c.metrics.gauge_set(name, value);
        c.tick_progress();
    });
}

/// Appends a point to a named time series in the installed registry,
/// timestamped now.
#[inline]
pub fn sample(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_collector(|c| {
        let t = c.now_us();
        c.metrics.sample_at(name, t, value);
        c.tick_progress();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_is_inert() {
        assert!(!enabled());
        let mut s = span(Phase::Solve, "noop");
        assert!(!s.is_recording());
        s.attr("k", 1u64);
        drop(s);
        event(Phase::Bdd, "never", || panic!("attrs closure must not run when disabled"));
        counter_add("c", 1);
        sample("s", 1.0);
        assert!(take().is_none());
    }

    #[test]
    fn spans_nest_and_balance() {
        install();
        {
            let mut outer = span(Phase::Solve, "outer");
            outer.attr("x", 7u64);
            {
                let _inner = span(Phase::Solve, "inner");
            }
            event(Phase::Bdd, "tick", || vec![("n", 3u64.into())]);
        }
        let data = take().expect("collector installed");
        assert_eq!(data.spans.len(), 2);
        // Completion order: inner closes first.
        assert_eq!(data.spans[0].name, "inner");
        assert_eq!(data.spans[0].depth, 1);
        assert_eq!(data.spans[1].name, "outer");
        assert_eq!(data.spans[1].depth, 0);
        assert!(data.spans[1].t_start_us <= data.spans[0].t_start_us);
        assert!(data.spans[1].t_end_us >= data.spans[0].t_end_us);
        assert_eq!(data.spans[1].attrs, vec![("x", AttrValue::UInt(7))]);
        assert_eq!(data.events.len(), 1);
        assert!(!enabled());
    }

    #[test]
    fn progress_sink_fires_throttled_and_needs_a_collector() {
        use std::rc::Rc;

        assert!(
            !attach_progress(std::time::Duration::ZERO, |_| {}),
            "no collector, nothing to attach to"
        );

        install();
        let lines: Rc<RefCell<Vec<String>>> = Rc::default();
        let sink = Rc::clone(&lines);
        assert!(attach_progress(std::time::Duration::ZERO, move |l| {
            sink.borrow_mut().push(l.to_string());
        }));
        counter_add("solve.reevals", 3);
        gauge_set("bdd.arena_bytes", 2.0 * 1024.0 * 1024.0);
        assert!(take().is_some());
        let lines = lines.borrow();
        assert_eq!(lines.len(), 2, "zero interval beats on every point: {lines:?}");
        assert!(lines[1].contains("3 re-evals"), "{lines:?}");
        assert!(lines[1].contains("arena 2.0 MiB"), "{lines:?}");

        // A long interval lets only the first beat through.
        install();
        let count = Rc::new(Cell::new(0usize));
        let sink = Rc::clone(&count);
        attach_progress(std::time::Duration::from_secs(3600), move |_| {
            sink.set(sink.get() + 1);
        });
        for _ in 0..10 {
            counter_add("solve.reevals", 1);
        }
        assert!(take().is_some());
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn metrics_snapshot_reads_without_uninstalling() {
        assert!(metrics_snapshot().is_none());
        install();
        counter_add("solve.reevals", 7);
        let snap = metrics_snapshot().expect("collector installed");
        assert_eq!(snap.counter("solve.reevals"), 7);
        // Still installed and still accumulating.
        counter_add("solve.reevals", 1);
        let data = take().expect("still installed");
        assert_eq!(data.metrics.counter("solve.reevals"), 8);
    }

    #[test]
    fn reinstall_resets() {
        install();
        let _ = span(Phase::Parse, "first");
        install();
        drop(span(Phase::Parse, "second"));
        let data = take().expect("collector installed");
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].name, "second");
    }
}
