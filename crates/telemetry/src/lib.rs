//! **getafix-telemetry** — zero-dependency tracing, metrics and JSON
//! plumbing for the Getafix pipeline.
//!
//! The fixed-point calculus is an inherently *phased* computation — parse
//! → encode → strata → SCC rounds → disjunct recompilations → witness —
//! and this crate maps that structure onto three observability surfaces:
//!
//! 1. **Spans and events** ([`span`], [`event`]): a thread-local collector
//!    with RAII span guards. Every instrumentation point in the solver and
//!    BDD kernel compiles to one thread-local flag test when disabled (the
//!    default) — see the cost model in [`collect`].
//! 2. **Export** ([`TraceData::chrome_trace_json`],
//!    [`TraceData::folded_stacks`], [`TraceData::profile_summary`]):
//!    Chrome trace-event JSON loadable in Perfetto / `about:tracing`
//!    (`getafix check … --trace-out out.json`), folded stacks for
//!    inferno/speedscope flamegraphs, plus a human top-spans/self-time
//!    summary (`--profile`).
//! 3. **Metrics** ([`Registry`]): named monotonic counters, gauges and
//!    timestamped time series — the publication surface a future
//!    `getafix serve` and per-worker parallel solvers will snapshot from.
//!    [`attach_progress`] taps the same registry for a throttled live
//!    heartbeat (`--progress`), and [`metrics_snapshot`] clones it mid-run
//!    for `--stats-json`.
//!
//! [`json`] is the shared JSON emitter/parser the exporters, the bench
//! reporter and `SolveStats::to_json` are all built on (this workspace
//! builds offline, without serde).
//!
//! # Capturing a trace
//!
//! ```
//! use getafix_telemetry::{self as telemetry, Phase};
//!
//! telemetry::install();
//! {
//!     let mut solve = telemetry::span(Phase::Solve, "evaluate");
//!     solve.attr("relation", "Reach");
//!     telemetry::event(Phase::Bdd, "gc", || vec![("reclaimed", 1024u64.into())]);
//!     telemetry::sample("arena_nodes", 4096.0);
//! }
//! let data = telemetry::take().expect("installed above");
//! data.check_well_formed()?;
//! let perfetto_json = data.chrome_trace_json();
//! assert!(perfetto_json.contains("traceEvents"));
//! # Ok::<(), String>(())
//! ```

pub mod collect;
pub mod folded;
pub mod json;
pub mod metrics;
pub mod progress;

mod chrome;
mod profile;

pub use collect::{
    absorb, attach_progress, counter_add, enabled, epoch, event, gauge_set, install,
    install_worker, metrics_snapshot, sample, span, take, AttrValue, Attrs, EventRecord, Phase,
    Span, SpanRecord, TraceData,
};
pub use folded::{parse_folded, rooted_weight};
pub use metrics::{Registry, Sample};
