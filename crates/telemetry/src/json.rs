//! A small shared JSON emitter and checker.
//!
//! The workspace builds offline — no serde — yet four different tools emit
//! JSON (`--stats-json`, `--trace-out`, the bench reporter, the kernel
//! microbenches) and two need to *check* it (trace well-formedness tests,
//! the stats roundtrip property). This module is the one implementation
//! they all share:
//!
//! * [`JsonWriter`] — a push-style emitter with automatic comma/indent
//!   handling, so callers never hand-roll `if i + 1 < len { "," }` again.
//! * [`parse`] — a minimal recursive-descent parser into [`Value`], enough
//!   to validate and introspect everything this workspace emits (it is a
//!   test/validation aid, not a general-purpose JSON library).
//! * [`escape`] / [`rate_per_sec`] — the shared string-escaping and
//!   division-guard helpers the emitters kept duplicating.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `count / secs`, guarded against zero (and denormal) durations: a rate
/// computed over an unmeasurably short interval reports `0.0` instead of
/// `inf`/`NaN` — which would not even be valid JSON.
pub fn rate_per_sec(count: f64, secs: f64) -> f64 {
    if secs > 0.0 && secs.is_finite() {
        count / secs
    } else {
        0.0
    }
}

/// Renders `v` as a JSON number: non-finite values (which JSON cannot
/// represent) degrade to `0`, and finite values use Rust's
/// shortest-roundtrip `Display` (always a valid JSON number).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// What the writer is in the middle of, for comma placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// Inside an object, `true` once a member has been written.
    Object(bool),
    /// Inside an array, `true` once an element has been written.
    Array(bool),
}

/// A push-style JSON emitter with automatic commas and two-space
/// indentation (the pretty style the committed bench reports use).
///
/// ```
/// use getafix_telemetry::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_str("name", "fig2");
/// w.key("walls");
/// w.begin_array();
/// w.value_f64(1.5);
/// w.value_u64(2);
/// w.end_array();
/// w.end_object();
/// let s = w.finish();
/// assert!(getafix_telemetry::json::parse(&s).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Ctx>,
    /// Set between [`JsonWriter::key`] and the value it introduces.
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// The finished document.
    ///
    /// # Panics
    ///
    /// Panics if an object or array is still open — an unbalanced emitter
    /// is a bug at the call site, not a runtime condition.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "JsonWriter: unclosed object/array");
        assert!(!self.pending_key, "JsonWriter: key without a value");
        self.out
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Positions the cursor for the next value: emits the separating comma
    /// and newline/indent inside containers (unless a key was just
    /// written, in which case the value continues its line).
    fn pre_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        match self.stack.last_mut() {
            Some(Ctx::Object(_)) => panic!("JsonWriter: object member without a key"),
            Some(Ctx::Array(started)) => {
                let sep = *started;
                *started = true;
                if sep {
                    self.out.push(',');
                }
                self.out.push('\n');
                self.indent();
            }
            None => {}
        }
    }

    /// Introduces an object member; must be followed by exactly one value.
    pub fn key(&mut self, k: &str) {
        let Some(Ctx::Object(started)) = self.stack.last_mut() else {
            panic!("JsonWriter: key() outside an object");
        };
        let sep = *started;
        *started = true;
        assert!(!self.pending_key, "JsonWriter: two keys in a row");
        if sep {
            self.out.push(',');
        }
        self.out.push('\n');
        self.indent();
        let _ = write!(self.out, "\"{}\": ", escape(k));
        self.pending_key = true;
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.stack.push(Ctx::Object(false));
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        match self.stack.pop() {
            Some(Ctx::Object(started)) => {
                if started {
                    self.out.push('\n');
                    self.indent();
                }
                self.out.push('}');
            }
            _ => panic!("JsonWriter: end_object() without begin_object()"),
        }
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.stack.push(Ctx::Array(false));
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        match self.stack.pop() {
            Some(Ctx::Array(started)) => {
                if started {
                    self.out.push('\n');
                    self.indent();
                }
                self.out.push(']');
            }
            _ => panic!("JsonWriter: end_array() without begin_array()"),
        }
    }

    /// A string value.
    pub fn value_str(&mut self, v: &str) {
        self.pre_value();
        let _ = write!(self.out, "\"{}\"", escape(v));
    }

    /// An unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// A signed integer value.
    pub fn value_i64(&mut self, v: i64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// A float value, shortest-roundtrip (non-finite degrades to `0`).
    pub fn value_f64(&mut self, v: f64) {
        self.pre_value();
        self.out.push_str(&number(v));
    }

    /// A float value with fixed decimal places (non-finite degrades to `0`).
    pub fn value_f64_prec(&mut self, v: f64, decimals: usize) {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v:.decimals$}");
        } else {
            self.out.push('0');
        }
    }

    /// A boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// `null`.
    pub fn value_null(&mut self) {
        self.pre_value();
        self.out.push_str("null");
    }

    /// A pre-rendered JSON value, embedded verbatim (re-indented one line at
    /// a time so nested documents keep the surrounding indentation) — how
    /// the bench reporter embeds [`SolveStats::to_json`] objects it did not
    /// produce itself.
    ///
    /// [`SolveStats::to_json`]: https://docs.rs/getafix-mucalc
    pub fn value_raw(&mut self, v: &str) {
        self.pre_value();
        let mut lines = v.lines();
        if let Some(first) = lines.next() {
            self.out.push_str(first);
        }
        for line in lines {
            self.out.push('\n');
            self.indent();
            self.out.push_str(line);
        }
    }

    /// `key(k)` + [`JsonWriter::value_str`].
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
    }

    /// `key(k)` + [`JsonWriter::value_u64`].
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
    }

    /// `key(k)` + [`JsonWriter::value_f64`].
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
    }

    /// `key(k)` + [`JsonWriter::value_f64_prec`].
    pub fn field_f64_prec(&mut self, k: &str, v: f64, decimals: usize) {
        self.key(k);
        self.value_f64_prec(v, decimals);
    }

    /// `key(k)` + [`JsonWriter::value_bool`].
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.value_bool(v);
    }

    /// `key(k)` + [`JsonWriter::value_raw`].
    pub fn field_raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_raw(v);
    }
}

/// A parsed JSON value (see [`parse`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64` — exact for the integer counters
    /// this workspace emits up to 2⁵³, which is far beyond any of them.
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A byte offset and message on malformed input or trailing junk.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "bad utf-8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not emitted by this workspace;
                        // replace lone surrogates rather than erroring.
                        let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let v = parse_value(b, pos)?;
        map.insert(key, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_nested_roundtrip() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "a \"quoted\"\nname");
        w.field_u64("count", 42);
        w.field_f64("rate", 1.5);
        w.field_bool("ok", true);
        w.key("null_member");
        w.value_null();
        w.key("items");
        w.begin_array();
        w.begin_object();
        w.field_f64_prec("ms", 1.23456, 3);
        w.end_object();
        w.value_str("tail");
        w.end_array();
        w.key("empty_obj");
        w.begin_object();
        w.end_object();
        w.key("empty_arr");
        w.begin_array();
        w.end_array();
        w.end_object();
        let s = w.finish();
        let v = parse(&s).expect("writer output parses");
        assert_eq!(v.get("count").and_then(Value::as_f64), Some(42.0));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("a \"quoted\"\nname"));
        assert_eq!(v.get("null_member"), Some(&Value::Null));
        let items = v.get("items").and_then(Value::as_array).expect("array");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("ms").and_then(Value::as_f64), Some(1.235));
    }

    #[test]
    fn raw_embedding_reindents() {
        let mut inner = JsonWriter::new();
        inner.begin_object();
        inner.field_u64("x", 1);
        inner.end_object();
        let inner = inner.finish();

        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("wrapped");
        w.value_raw(&inner);
        w.end_object();
        let s = w.finish();
        let v = parse(&s).expect("embedded raw JSON parses");
        assert_eq!(v.get("wrapped").and_then(|w| w.get("x")).and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn non_finite_degrades_to_zero() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_f64(f64::NAN);
        w.value_f64_prec(f64::INFINITY, 2);
        w.end_array();
        let s = w.finish();
        assert_eq!(parse(&s).unwrap(), Value::Array(vec![Value::Num(0.0), Value::Num(0.0)]));
    }

    #[test]
    fn rate_guard() {
        assert_eq!(rate_per_sec(100.0, 0.0), 0.0);
        assert_eq!(rate_per_sec(100.0, -1.0), 0.0);
        assert_eq!(rate_per_sec(100.0, 2.0), 50.0);
        assert_eq!(rate_per_sec(100.0, f64::NAN), 0.0);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(parse("{").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_escapes() {
        let v = parse(r#"{"s": "aA\n\"b\""}"#).expect("parses");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA\n\"b\""));
    }
}
