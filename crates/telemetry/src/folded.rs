//! Folded-stack flamegraph export.
//!
//! Folds the recorded span forest into the line-per-stack format that
//! `inferno`, `flamegraph.pl` and speedscope all consume:
//!
//! ```text
//! evaluate;stratum;reeval:Reach 1543
//! ```
//!
//! Each line is a `;`-separated stack of frame labels followed by a
//! weight. Weights are **self time** in microseconds (a span's duration
//! minus its direct children), so the per-stack weights of a subtree sum
//! exactly to the root span's duration — the property the "folded stacks
//! cover ≥ 95% of the `evaluate` span" acceptance check keys on.
//!
//! Frame labels are the span name with the `relation` / `anchor` / `query`
//! string attribute appended as `name:value` when present, so per-relation
//! work separates into its own flame. Labels are sanitized: `;` and
//! whitespace (both structural in the format) are replaced by `_`.

use crate::collect::{AttrValue, SpanRecord, TraceData};
use std::collections::BTreeMap;

/// Attribute keys promoted into the frame label, in priority order.
const LABEL_ATTRS: [&str; 3] = ["relation", "anchor", "query"];

/// The frame label of one span: `name` or `name:attr`, sanitized for the
/// folded format (no `;`, no whitespace).
fn frame_label(span: &SpanRecord) -> String {
    let mut label = span.name.to_string();
    for key in LABEL_ATTRS {
        let hit = span.attrs.iter().find_map(|(k, v)| match v {
            AttrValue::Str(s) if *k == key => Some(s.as_str()),
            _ => None,
        });
        if let Some(value) = hit {
            label.push(':');
            label.push_str(value);
            break;
        }
    }
    label
        .chars()
        .map(|c| if c == ';' || c.is_whitespace() || c.is_control() { '_' } else { c })
        .collect()
}

impl TraceData {
    /// Renders the span forest as folded stacks, self-time weighted.
    ///
    /// Reconstructs parent/child structure the same way
    /// [`TraceData::check_well_formed`] does — sort by
    /// `(t_start, Reverse(t_end))` and replay containment against a stack —
    /// so any trace that passes the well-formedness check folds cleanly.
    /// Equal stacks are aggregated; zero-self-time stacks are dropped; the
    /// output is sorted by stack string, hence deterministic for a fixed
    /// trace.
    pub fn folded_stacks(&self) -> String {
        let mut sorted: Vec<&SpanRecord> = self.spans.iter().collect();
        // As in `check_well_formed`, plus `depth` so a child sharing its
        // parent's exact µs interval still folds under it.
        sorted.sort_by_key(|s| (s.t_start_us, std::cmp::Reverse(s.t_end_us), s.depth));

        let mut weights: BTreeMap<String, u64> = BTreeMap::new();
        // (span, direct-children µs) for every currently-open ancestor.
        let mut stack: Vec<(&SpanRecord, u64)> = Vec::new();
        let mut frames: Vec<String> = Vec::new();

        fn pop(
            stack: &mut Vec<(&SpanRecord, u64)>,
            frames: &mut Vec<String>,
            weights: &mut BTreeMap<String, u64>,
        ) {
            let Some((span, children_us)) = stack.pop() else { return };
            let self_us = span.dur_us().saturating_sub(children_us);
            if self_us > 0 {
                *weights.entry(frames.join(";")).or_default() += self_us;
            }
            frames.pop();
            if let Some((_, parent_children)) = stack.last_mut() {
                *parent_children += span.dur_us();
            }
        }

        for s in sorted {
            while let Some((top, _)) = stack.last() {
                if s.t_start_us >= top.t_end_us {
                    pop(&mut stack, &mut frames, &mut weights);
                } else {
                    break;
                }
            }
            frames.push(frame_label(s));
            stack.push((s, 0));
        }
        while !stack.is_empty() {
            pop(&mut stack, &mut frames, &mut weights);
        }

        let mut out = String::new();
        for (stack, weight) in &weights {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

/// Parses a folded-stacks document back into `(frames, weight)` rows.
///
/// The structural validator the tests and CI schema check share: every
/// non-empty line must be `frame(;frame)* weight` with a `u64` weight and
/// frames free of `;` and whitespace.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no weight separator: {line:?}", i + 1))?;
        let weight: u64 =
            weight.parse().map_err(|e| format!("line {}: bad weight {weight:?}: {e}", i + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        for f in &frames {
            if f.is_empty() {
                return Err(format!("line {}: empty frame in {stack:?}", i + 1));
            }
            if f.contains(char::is_whitespace) {
                return Err(format!("line {}: whitespace inside frame {f:?}", i + 1));
            }
        }
        rows.push((frames, weight));
    }
    Ok(rows)
}

/// Total weight of stacks passing through a frame matching `root` — the
/// bare name or a `name:attr` elaboration of it, at any stack depth. Each
/// stack is counted once, and self-time weighting partitions durations
/// across stacks, so this is exactly the wall time spent inside `root`
/// subtrees — the folded-file counterpart of [`TraceData::coverage_of`]'s
/// numerator.
pub fn rooted_weight(text: &str, root: &str) -> u64 {
    let matches =
        |f: &String| f == root || f.strip_prefix(root).is_some_and(|rest| rest.starts_with(':'));
    parse_folded(text)
        .map(|rows| {
            rows.iter().filter(|(frames, _)| frames.iter().any(matches)).map(|(_, w)| w).sum()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Phase;

    fn span(name: &'static str, start: u64, end: u64, depth: usize) -> SpanRecord {
        SpanRecord {
            phase: Phase::Solve,
            name,
            t_start_us: start,
            t_end_us: end,
            depth,
            tid: 1,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn self_times_partition_the_root() {
        let mut reeval = span("reeval", 10, 40, 1);
        reeval.attrs.push(("relation", AttrValue::Str("Reach".into())));
        let data = TraceData {
            spans: vec![
                span("leaf", 15, 25, 2),
                reeval,
                span("stratum", 50, 90, 1),
                span("evaluate", 0, 100, 0),
            ],
            ..TraceData::default()
        };
        let folded = data.folded_stacks();
        let rows = parse_folded(&folded).expect("well-formed folded output");
        let total: u64 = rows.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 100, "self times partition the root:\n{folded}");
        assert_eq!(rooted_weight(&folded, "evaluate"), 100);
        assert!(folded.contains("evaluate;reeval:Reach;leaf 10"), "{folded}");
        assert!(folded.contains("evaluate;reeval:Reach 20"), "{folded}");
        assert!(folded.contains("evaluate;stratum 40"), "{folded}");
        assert!(folded.contains("evaluate 30"), "{folded}");
    }

    #[test]
    fn sibling_roots_and_aggregation() {
        let data = TraceData {
            spans: vec![
                span("work", 0, 10, 1),
                span("evaluate", 0, 10, 0),
                span("work", 20, 30, 1),
                span("evaluate", 20, 40, 0),
            ],
            ..TraceData::default()
        };
        let folded = data.folded_stacks();
        assert!(folded.contains("evaluate;work 20"), "aggregated: {folded}");
        assert_eq!(rooted_weight(&folded, "evaluate"), 30);
    }

    #[test]
    fn hostile_names_are_sanitized() {
        let mut s = span("reeval", 0, 5, 0);
        s.attrs.push(("relation", AttrValue::Str("a b;c\nd".into())));
        let data = TraceData { spans: vec![s], ..TraceData::default() };
        let folded = data.folded_stacks();
        parse_folded(&folded).expect("sanitized output stays parseable");
        assert!(folded.contains("reeval:a_b_c_d 5"), "{folded}");
    }

    #[test]
    fn parse_folded_rejects_garbage() {
        assert!(parse_folded("no-weight\n").is_err());
        assert!(parse_folded("stack notanumber\n").is_err());
        assert!(parse_folded(" 5\n").is_err());
        assert!(parse_folded("a;;b 5\n").is_err());
        assert!(parse_folded("").unwrap().is_empty());
    }
}
