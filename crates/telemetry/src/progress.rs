//! Heartbeat rendering for `--progress`.
//!
//! The solver publishes its position through the ordinary metrics registry
//! (`solve.stratum` / `solve.strata_total` gauges, the `solve.reevals`
//! counter, `bdd.arena_bytes` and GC gauges); this module turns a registry
//! snapshot into the one-line heartbeat that
//! [`attach_progress`](crate::collect::attach_progress) sinks receive.
//! Keeping the renderer out of the solver means a future `getafix serve`
//! can publish the same metrics over a socket without new plumbing.

use crate::metrics::Registry;
use std::fmt::Write as _;

/// Renders the heartbeat line for a registry snapshot at collector time
/// `t_us`. Sections appear only once their metrics exist, so early beats
/// (during parse/encode) are short and solve-phase beats are full:
///
/// ```text
/// [  12.4s] stratum 3/7 · 1842 re-evals · arena 12.5 MiB · gc 2 (0.8 ms)
/// ```
/// Does the registry hold anything the heartbeat would show? Beats are
/// suppressed until it does, so `--progress` stays silent through the
/// (fast, metric-free) parse/encode phases instead of printing bare
/// timestamps.
pub fn has_signal(metrics: &Registry) -> bool {
    metrics.gauge("solve.stratum").is_some()
        || metrics.counter("solve.reevals") > 0
        || metrics.gauge("bdd.arena_bytes").is_some()
        || metrics.counter("solve.gcs") > 0
}

pub fn heartbeat(t_us: u64, metrics: &Registry) -> String {
    let mut out = format!("[{:6.1}s]", t_us as f64 / 1e6);
    if let (Some(k), Some(n)) =
        (metrics.gauge("solve.stratum"), metrics.gauge("solve.strata_total"))
    {
        let _ = write!(out, " stratum {}/{}", k as u64, n as u64);
    }
    let reevals = metrics.counter("solve.reevals");
    if reevals > 0 {
        let _ = write!(out, " · {reevals} re-evals");
    }
    if let Some(bytes) = metrics.gauge("bdd.arena_bytes") {
        let _ = write!(out, " · arena {:.1} MiB", bytes / (1024.0 * 1024.0));
    }
    let gcs = metrics.counter("solve.gcs");
    if gcs > 0 {
        let _ = write!(out, " · gc {gcs}");
        if let Some(pause) = metrics.gauge("solve.gc_pause_ms") {
            let _ = write!(out, " ({pause:.1} ms)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_grows_with_available_metrics() {
        let mut m = Registry::new();
        assert_eq!(heartbeat(1_500_000, &m), "[   1.5s]");
        assert!(!has_signal(&m), "an empty registry is not worth a beat");

        m.gauge_set("solve.stratum", 3.0);
        m.gauge_set("solve.strata_total", 7.0);
        m.counter_add("solve.reevals", 1842);
        m.gauge_set("bdd.arena_bytes", 12.5 * 1024.0 * 1024.0);
        m.counter_add("solve.gcs", 2);
        m.gauge_set("solve.gc_pause_ms", 0.8);
        assert!(has_signal(&m));
        let line = heartbeat(12_400_000, &m);
        assert_eq!(line, "[  12.4s] stratum 3/7 · 1842 re-evals · arena 12.5 MiB · gc 2 (0.8 ms)");
    }
}
