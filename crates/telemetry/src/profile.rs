//! Trace analysis: well-formedness checks, span-tree coverage and the
//! human `--profile` summary.
//!
//! Everything here consumes a finished [`TraceData`]; nothing is on the
//! recording path. The checks double as the telemetry test oracle: a trace
//! that passes [`TraceData::check_well_formed`] renders to a Chrome trace
//! whose spans nest properly in Perfetto.

use crate::collect::{AttrValue, SpanRecord, TraceData};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Duration buckets of the re-evaluation latency histogram, in µs
/// (upper bounds; the last bucket is open).
const HIST_BOUNDS_US: [u64; 5] = [10, 100, 1_000, 10_000, 100_000];

/// Aggregate of one `(phase, name)` span group.
#[derive(Debug, Default, Clone)]
struct Group {
    count: usize,
    total_us: u64,
    self_us: u64,
}

impl TraceData {
    /// Checks the structural invariants the exporter and viewers rely on:
    /// every span has `t_start ≤ t_end`, and the spans form a proper
    /// forest — for any two spans, their intervals are either disjoint or
    /// one contains the other, with containment matching the recorded
    /// depths (a child is strictly deeper than the span containing it).
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for s in &self.spans {
            if s.t_end_us < s.t_start_us {
                return Err(format!("span `{}` ends before it starts", s.name));
            }
        }
        // Completion order is LIFO per nesting: replay it against a stack.
        // A span closed at position i must contain every span closed
        // earlier that starts after it.
        let mut sorted: Vec<&SpanRecord> = self.spans.iter().collect();
        sorted.sort_by_key(|s| (s.t_start_us, std::cmp::Reverse(s.t_end_us)));
        let mut stack: Vec<&SpanRecord> = Vec::new();
        for s in sorted {
            while let Some(top) = stack.last() {
                if s.t_start_us >= top.t_end_us {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if s.t_end_us > top.t_end_us {
                    return Err(format!(
                        "span `{}` [{}, {}] overlaps `{}` [{}, {}] without nesting",
                        s.name, s.t_start_us, s.t_end_us, top.name, top.t_start_us, top.t_end_us
                    ));
                }
                if s.depth <= top.depth {
                    return Err(format!(
                        "span `{}` (depth {}) nests inside `{}` (depth {}) but is not deeper",
                        s.name, s.depth, top.name, top.depth
                    ));
                }
            } else if s.depth != 0 {
                return Err(format!(
                    "span `{}` has depth {} but no enclosing span",
                    s.name, s.depth
                ));
            }
            stack.push(s);
        }
        for e in &self.events {
            let _ = e;
        }
        Ok(())
    }

    /// Fraction of the *longest* span named `root` that is covered by its
    /// direct children — the "span tree covers ≥ N% of solve wall time"
    /// acceptance measure. `None` when no span has that name.
    pub fn coverage_of(&self, root: &str) -> Option<f64> {
        let root_span = self.spans.iter().filter(|s| s.name == root).max_by_key(|s| s.dur_us())?;
        if root_span.dur_us() == 0 {
            return Some(1.0);
        }
        let covered: u64 = self
            .spans
            .iter()
            .filter(|s| {
                s.depth == root_span.depth + 1
                    && s.t_start_us >= root_span.t_start_us
                    && s.t_end_us <= root_span.t_end_us
            })
            .map(|s| s.dur_us())
            .sum();
        Some(covered as f64 / root_span.dur_us() as f64)
    }

    /// Per-`(phase, name)` totals with self time (duration minus direct
    /// children), sorted by descending self time.
    fn span_groups(&self) -> Vec<(String, Group)> {
        // Direct-children total per span: match children by containment at
        // depth + 1. Spans are completion-ordered; index them by start.
        let mut groups: BTreeMap<String, Group> = BTreeMap::new();
        for s in &self.spans {
            let child_us: u64 = self
                .spans
                .iter()
                .filter(|c| {
                    c.depth == s.depth + 1
                        && c.t_start_us >= s.t_start_us
                        && c.t_end_us <= s.t_end_us
                })
                .map(|c| c.dur_us())
                .sum();
            let g = groups.entry(format!("{}/{}", s.phase, s.name)).or_default();
            g.count += 1;
            g.total_us += s.dur_us();
            g.self_us += s.dur_us().saturating_sub(child_us);
        }
        let mut out: Vec<(String, Group)> = groups.into_iter().collect();
        out.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The human `--profile` summary: top-`top_n` span groups by self
    /// time, the re-evaluation latency histogram per relation (spans named
    /// `reeval` with a `relation` attribute), and one line per recorded
    /// event kind.
    pub fn profile_summary(&self, top_n: usize) -> String {
        let mut out = String::new();
        let groups = self.span_groups();
        let total_self: u64 = groups.iter().map(|(_, g)| g.self_us).sum();
        let _ = writeln!(
            out,
            "profile: {} spans, {} events, {:.3} ms total self time",
            self.spans.len(),
            self.events.len(),
            total_self as f64 / 1e3
        );
        // Column widths follow the content (clamped to a floor), so long
        // relation names never shear the table out of alignment and two
        // runs over the same trace render byte-identically.
        let name_w =
            groups.iter().take(top_n).map(|(name, _)| name.len()).chain([28]).max().unwrap_or(28);
        let _ = writeln!(
            out,
            "{:<name_w$} {:>7} {:>12} {:>12} {:>6}",
            "span", "count", "self ms", "total ms", "self%"
        );
        for (name, g) in groups.iter().take(top_n) {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>7} {:>12.3} {:>12.3} {:>5.1}%",
                name,
                g.count,
                g.self_us as f64 / 1e3,
                g.total_us as f64 / 1e3,
                if total_self == 0 { 0.0 } else { 100.0 * g.self_us as f64 / total_self as f64 }
            );
        }

        // Re-evaluation latency histogram, per relation.
        let mut hist: BTreeMap<&str, [usize; HIST_BOUNDS_US.len() + 1]> = BTreeMap::new();
        for s in self.spans.iter().filter(|s| s.name == "reeval") {
            let Some(rel) = s.attrs.iter().find_map(|(k, v)| match (k, v) {
                (&"relation", AttrValue::Str(r)) => Some(r.as_str()),
                _ => None,
            }) else {
                continue;
            };
            let bucket =
                HIST_BOUNDS_US.iter().position(|&b| s.dur_us() < b).unwrap_or(HIST_BOUNDS_US.len());
            hist.entry(rel).or_default()[bucket] += 1;
        }
        if !hist.is_empty() {
            let rel_w = hist.keys().map(|r| r.len()).chain([20]).max().unwrap_or(20);
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<rel_w$} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
                "re-eval latency", "<10us", "<100us", "<1ms", "<10ms", "<100ms", "more"
            );
            for (rel, buckets) in &hist {
                let _ = writeln!(
                    out,
                    "{:<rel_w$} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
                    rel, buckets[0], buckets[1], buckets[2], buckets[3], buckets[4], buckets[5]
                );
            }
        }

        let mut event_counts: BTreeMap<String, usize> = BTreeMap::new();
        for e in &self.events {
            *event_counts.entry(format!("{}/{}", e.phase, e.name)).or_default() += 1;
        }
        if !event_counts.is_empty() {
            let _ = writeln!(out);
            for (name, count) in &event_counts {
                let _ = writeln!(out, "event {name}: {count}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{EventRecord, Phase};

    fn span(name: &'static str, start: u64, end: u64, depth: usize) -> SpanRecord {
        SpanRecord {
            phase: Phase::Solve,
            name,
            t_start_us: start,
            t_end_us: end,
            depth,
            tid: 1,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn well_formed_accepts_proper_nesting() {
        let data = TraceData {
            spans: vec![
                span("inner", 10, 20, 1),
                span("outer", 0, 30, 0),
                span("later", 40, 50, 0),
            ],
            events: vec![EventRecord {
                phase: Phase::Bdd,
                name: "gc",
                t_us: 15,
                tid: 1,
                attrs: Vec::new(),
            }],
            ..TraceData::default()
        };
        data.check_well_formed().expect("proper nesting");
    }

    #[test]
    fn well_formed_rejects_overlap_and_bad_depth() {
        let overlap = TraceData {
            spans: vec![span("a", 0, 20, 0), span("b", 10, 30, 0)],
            ..TraceData::default()
        };
        assert!(overlap.check_well_formed().is_err());

        let bad_depth = TraceData {
            spans: vec![span("inner", 10, 20, 0), span("outer", 0, 30, 0)],
            ..TraceData::default()
        };
        assert!(bad_depth.check_well_formed().is_err());

        let reversed = TraceData { spans: vec![span("r", 20, 10, 0)], ..TraceData::default() };
        assert!(reversed.check_well_formed().is_err());
    }

    #[test]
    fn coverage_counts_direct_children_only() {
        let data = TraceData {
            spans: vec![
                span("grandchild", 2, 4, 2),
                span("child", 0, 50, 1),
                span("child", 60, 100, 1),
                span("solve", 0, 100, 0),
            ],
            ..TraceData::default()
        };
        // Children cover 50 + 40 of 100; the grandchild must not double-count.
        let cov = data.coverage_of("solve").expect("root exists");
        assert!((cov - 0.9).abs() < 1e-9, "coverage {cov}");
        assert_eq!(data.coverage_of("absent"), None);
    }

    #[test]
    fn profile_summary_is_deterministic_under_ties_and_long_names() {
        // Three groups with identical self time must order by name, and a
        // relation name longer than any fixed column width must not shear
        // the table: every body row stays as wide as its header.
        let mut long = span("reeval", 200, 220, 0);
        long.attrs
            .push(("relation", AttrValue::Str("AVeryLongRelationNameThatOverflowsColumns".into())));
        let data = TraceData {
            spans: vec![span("beta", 0, 20, 0), span("alpha", 40, 60, 0), long],
            ..TraceData::default()
        };
        let a = data.profile_summary(10);
        let b = data.profile_summary(10);
        assert_eq!(a, b);
        let alpha = a.find("solve/alpha").expect("alpha listed");
        let beta = a.find("solve/beta").expect("beta listed");
        let reeval = a.find("solve/reeval").expect("reeval listed");
        assert!(alpha < beta && beta < reeval, "ties break by name:\n{a}");

        let lines: Vec<&str> = a.lines().collect();
        let header = lines.iter().position(|l| l.starts_with("span")).expect("table header");
        let header_len = lines[header].len();
        for row in &lines[header + 1..header + 4] {
            assert_eq!(row.len(), header_len, "misaligned row {row:?} in:\n{a}");
        }
        let hist_header =
            lines.iter().find(|l| l.starts_with("re-eval latency")).expect("histogram header");
        let hist_row = lines
            .iter()
            .find(|l| l.starts_with("AVeryLongRelationName"))
            .expect("histogram row for the long relation");
        assert_eq!(hist_row.len(), hist_header.len(), "histogram misaligned:\n{a}");
    }

    #[test]
    fn profile_summary_self_time() {
        let mut inner = span("reeval", 10, 30, 1);
        inner.attrs.push(("relation", AttrValue::Str("Reach".into())));
        let data =
            TraceData { spans: vec![inner, span("stratum", 0, 100, 0)], ..TraceData::default() };
        let summary = data.profile_summary(10);
        // stratum self time = 100 - 20 = 80us; reeval = 20us.
        assert!(summary.contains("solve/stratum"), "{summary}");
        assert!(summary.contains("solve/reeval"), "{summary}");
        assert!(summary.contains("re-eval latency"), "{summary}");
        assert!(summary.contains("Reach"), "{summary}");
    }
}
