//! Chrome trace-event export: one [`TraceData`] becomes a JSON document
//! loadable in Perfetto (<https://ui.perfetto.dev>) or `about:tracing`.
//!
//! The mapping uses the simplest portable subset of the format:
//!
//! * every span is a **complete** event (`"ph": "X"`) with `ts`/`dur` in
//!   microseconds — nesting is reconstructed by the viewer from the
//!   timestamps, which the collector's LIFO guards guarantee are properly
//!   bracketed;
//! * every instant event is `"ph": "i"` with thread scope;
//! * every metrics time series becomes a **counter** track (`"ph": "C"`),
//!   which Perfetto renders as a stepped graph — cache hit rates and arena
//!   growth over the run, next to the span tree that caused them;
//! * span/event attributes land in `args`, phases in `cat`.

use crate::collect::{AttrValue, Attrs, TraceData};
use crate::json::JsonWriter;

fn write_attrs(w: &mut JsonWriter, attrs: &Attrs) {
    w.begin_object();
    for (k, v) in attrs {
        match v {
            AttrValue::Int(i) => {
                w.key(k);
                w.value_i64(*i);
            }
            AttrValue::UInt(u) => w.field_u64(k, *u),
            AttrValue::Float(f) => w.field_f64(k, *f),
            AttrValue::Bool(b) => w.field_bool(k, *b),
            AttrValue::Str(s) => w.field_str(k, s),
        }
    }
    w.end_object();
}

impl TraceData {
    /// Renders the trace as a Chrome trace-event JSON document.
    ///
    /// `pid` is fixed at 1; `tid` is each record's own logical thread id
    /// (1 = the coordinator, `2 + worker_index` for solve workers), so a
    /// parallel run renders one track per worker. Counter samples stay on
    /// tid 1 — the coordinator's registry absorbs worker metrics at wave
    /// joins.
    pub fn chrome_trace_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("traceEvents");
        w.begin_array();
        for s in &self.spans {
            w.begin_object();
            w.field_str("name", s.name);
            w.field_str("cat", s.phase.name());
            w.field_str("ph", "X");
            w.field_u64("ts", s.t_start_us);
            w.field_u64("dur", s.dur_us());
            w.field_u64("pid", 1);
            w.field_u64("tid", s.tid);
            if !s.attrs.is_empty() {
                w.key("args");
                write_attrs(&mut w, &s.attrs);
            }
            w.end_object();
        }
        for e in &self.events {
            w.begin_object();
            w.field_str("name", e.name);
            w.field_str("cat", e.phase.name());
            w.field_str("ph", "i");
            w.field_str("s", "t");
            w.field_u64("ts", e.t_us);
            w.field_u64("pid", 1);
            w.field_u64("tid", e.tid);
            if !e.attrs.is_empty() {
                w.key("args");
                write_attrs(&mut w, &e.attrs);
            }
            w.end_object();
        }
        for (name, samples) in self.metrics.all_series() {
            for s in samples {
                w.begin_object();
                w.field_str("name", name);
                w.field_str("cat", "metrics");
                w.field_str("ph", "C");
                w.field_u64("ts", s.t_us);
                w.field_u64("pid", 1);
                w.key("args");
                w.begin_object();
                w.field_f64("value", s.value);
                w.end_object();
                w.end_object();
            }
        }
        w.end_array();
        w.field_str("displayTimeUnit", "ms");
        if !self.metrics.is_empty() {
            // Counters/gauges have no timeline of their own; ship the full
            // registry snapshot in the documented side-channel field.
            w.key("otherData");
            w.begin_object();
            w.field_raw("metrics", &self.metrics.to_json());
            w.end_object();
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::collect::{self, Phase};
    use crate::json::{parse, Value};

    #[test]
    fn chrome_export_is_valid_and_complete() {
        collect::install();
        {
            let mut outer = collect::span(Phase::Solve, "evaluate");
            outer.attr("relation", "Reach");
            let _inner = collect::span(Phase::Solve, "stratum");
            collect::event(Phase::Bdd, "gc", || vec![("reclaimed", 12u64.into())]);
            collect::sample("arena_nodes", 42.0);
        }
        let data = collect::take().expect("collector installed");
        let doc = data.chrome_trace_json();
        let v = parse(&doc).expect("chrome trace parses as JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        // 2 spans + 1 instant + 1 counter sample.
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("name").is_some() && e.get("ph").is_some() && e.get("ts").is_some());
        }
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Value::as_str)).collect();
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "C").count(), 1);
        let metrics = v.get("otherData").and_then(|o| o.get("metrics")).expect("metrics snapshot");
        assert!(metrics.get("series").and_then(|s| s.get("arena_nodes")).is_some());
    }
}
