//! Symbolic encoding of a Boolean program: building the template relations
//! of §4 as BDDs over the solver's input-relation formals.
//!
//! The templates form the interface between "the program" and "the
//! algorithm" (Figure 1 of the paper): the fixed-point formulae only ever
//! mention these relations, so the encoding and the algorithms evolve
//! independently.
//!
//! # Deviations from the paper's template signatures
//!
//! * Program counters are **globally unique** across procedures (the CFG
//!   hands them out densely), so the `mod` component of a configuration is
//!   derivable from `pc` and is dropped; a configuration is
//!   `Conf = { pc, cl, cg, ecl, ecg }`.
//! * Call sites determine their return-target variables, so `SetReturn1`
//!   needs only the call pc, and `SetReturn2` only the (call pc, exit pc)
//!   pair — the pairing also ties an exit to *the procedure called at that
//!   site*, subsuming the appendix's explicit module equalities.
//! * All variables initialize to `false` (see `getafix_boolprog::cfg`), so
//!   `Init` is a single configuration.
//!
//! # Nondeterminism
//!
//! Expressions may contain `*` and `schoose`; they compile to a pair of
//! BDDs `can_true`/`can_false` over the state variables (each choice
//! occurrence independent), and an assignment `v' := e` becomes
//! `ite(v', can_true(e), can_false(e))` — exactly the relation the explicit
//! oracle's `value_set` induces pointwise.

use getafix_bdd::{Bdd, Manager, Var};
use getafix_boolprog::{Cfg, Edge, LExpr, Pc, VarRef};
use getafix_mucalc::{eq_const, Instance, SolveError, Solver};

/// Errors raised while encoding a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The solver rejected an input (internal wiring bug).
    Solve(String),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::Solve(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for EncodeError {}

impl From<SolveError> for EncodeError {
    fn from(e: SolveError) -> Self {
        EncodeError::Solve(e.to_string())
    }
}

/// The variable blocks of one relation formal of `Conf` type.
struct ConfVars {
    pc: Vec<Var>,
    cl: Vec<Var>,
    cg: Vec<Var>,
    ecl: Vec<Var>,
    ecg: Vec<Var>,
}

fn conf_vars(inst: &Instance) -> ConfVars {
    let leaf = |name: &str| -> Vec<Var> {
        inst.leaves_under(&[name.to_string()])
            .first()
            .unwrap_or_else(|| panic!("Conf field `{name}` missing"))
            .vars
            .clone()
    };
    ConfVars { pc: leaf("pc"), cl: leaf("cl"), cg: leaf("cg"), ecl: leaf("ecl"), ecg: leaf("ecg") }
}

fn scalar_vars(inst: &Instance) -> Vec<Var> {
    inst.all_vars()
}

/// `can_true` / `can_false` compilation of an [`LExpr`] over the given
/// local/global variable blocks.
pub fn can_value(
    m: &mut Manager,
    e: &LExpr,
    locals: &[Var],
    globals: &[Var],
    want_true: bool,
) -> Bdd {
    match e {
        LExpr::Const(b) => m.constant(*b == want_true),
        LExpr::Nondet => Bdd::TRUE,
        LExpr::Var(v) => {
            let var = match v {
                VarRef::Local(i) => locals[*i],
                VarRef::Global(i) => globals[*i],
            };
            m.literal(var, want_true)
        }
        LExpr::Not(a) => can_value(m, a, locals, globals, !want_true),
        LExpr::And(a, b) => {
            if want_true {
                let x = can_value(m, a, locals, globals, true);
                let y = can_value(m, b, locals, globals, true);
                m.and(x, y)
            } else {
                let x = can_value(m, a, locals, globals, false);
                let y = can_value(m, b, locals, globals, false);
                m.or(x, y)
            }
        }
        LExpr::Or(a, b) => {
            if want_true {
                let x = can_value(m, a, locals, globals, true);
                let y = can_value(m, b, locals, globals, true);
                m.or(x, y)
            } else {
                let x = can_value(m, a, locals, globals, false);
                let y = can_value(m, b, locals, globals, false);
                m.and(x, y)
            }
        }
        LExpr::Eq(a, b) => {
            let at = can_value(m, a, locals, globals, true);
            let af = can_value(m, a, locals, globals, false);
            let bt = can_value(m, b, locals, globals, true);
            let bf = can_value(m, b, locals, globals, false);
            if want_true {
                let tt = m.and(at, bt);
                let ff = m.and(af, bf);
                m.or(tt, ff)
            } else {
                let tf = m.and(at, bf);
                let ft = m.and(af, bt);
                m.or(tf, ft)
            }
        }
        LExpr::Ne(a, b) => can_value(m, &flip_ne(a, b), locals, globals, want_true),
        LExpr::Schoose(p, n) => {
            let pt = can_value(m, p, locals, globals, true);
            let pf = can_value(m, p, locals, globals, false);
            if want_true {
                // T when pos holds; free when neither constrains.
                let nf = can_value(m, n, locals, globals, false);
                let free = m.and(pf, nf);
                m.or(pt, free)
            } else {
                // F requires pos to possibly fail, and then neg decides or
                // is free.
                let nt = can_value(m, n, locals, globals, true);
                let nf = can_value(m, n, locals, globals, false);
                let any = m.or(nt, nf);
                m.and(pf, any)
            }
        }
    }
}

fn flip_ne(a: &LExpr, b: &LExpr) -> LExpr {
    LExpr::Not(Box::new(LExpr::Eq(Box::new(a.clone()), Box::new(b.clone()))))
}

/// The relation `target := e(state)` for a single target bit.
fn assign_bit(m: &mut Manager, target: Var, e: &LExpr, locals: &[Var], globals: &[Var]) -> Bdd {
    let ct = can_value(m, e, locals, globals, true);
    let cf = can_value(m, e, locals, globals, false);
    let t = m.var(target);
    m.ite(t, ct, cf)
}

/// Equality of two equal-length variable blocks, skipping indices in `except`.
fn eq_except(m: &mut Manager, a: &[Var], b: &[Var], except: &[usize]) -> Bdd {
    let mut acc = Bdd::TRUE;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        if except.contains(&i) {
            continue;
        }
        let fx = m.var(x);
        let fy = m.var(y);
        let eq = m.iff(fx, fy);
        acc = m.and(acc, eq);
    }
    acc
}

/// Constrains the bits of `vars` at positions `width..` to `false` — the
/// frame discipline for local vectors narrower than the widest frame.
fn zero_above(m: &mut Manager, vars: &[Var], width: usize) -> Bdd {
    let mut acc = Bdd::TRUE;
    for &v in vars.iter().skip(width) {
        let nv = m.nvar(v);
        acc = m.and(acc, nv);
    }
    acc
}

/// Builds and installs every template relation for `cfg` into `solver`.
///
/// The solver must have been created from one of the systems in
/// [`crate::systems`] (they all declare the same input signatures).
///
/// # Errors
///
/// Returns an error if an input relation is missing from the system — a
/// sign the system and the encoder have drifted apart.
pub fn install_templates(
    solver: &mut Solver,
    cfg: &Cfg,
    targets: &[Pc],
) -> Result<(), EncodeError> {
    let n_globals = cfg.globals.len();

    // --- Init(s: Conf): the single all-false configuration at main entry.
    {
        let s = solver.alloc().formal("Init", 0).clone();
        let v = conf_vars(&s);
        let m = solver.manager();
        let main_entry = cfg.procs[cfg.main].entry as u64;
        let mut b = eq_const(m, &v.pc, main_entry);
        for blk in [&v.cl, &v.cg, &v.ecl, &v.ecg] {
            let z = eq_const(m, blk, 0);
            b = m.and(b, z);
        }
        solver.set_input("Init", b)?;
    }

    // --- EntryOf(p), ExitOf(p), Target(p): pc point sets.
    let point_set = |solver: &mut Solver, rel: &str, pcs: &[Pc]| -> Result<(), EncodeError> {
        let inst = solver.alloc().formal(rel, 0).clone();
        let vars = scalar_vars(&inst);
        let m = solver.manager();
        let mut b = Bdd::FALSE;
        for &pc in pcs {
            let p = eq_const(m, &vars, pc as u64);
            b = m.or(b, p);
        }
        solver.set_input(rel, b)?;
        Ok(())
    };
    let entries: Vec<Pc> = cfg.procs.iter().map(|p| p.entry).collect();
    let exits: Vec<Pc> = cfg.procs.iter().flat_map(|p| p.exits.iter().map(|e| e.pc)).collect();
    point_set(solver, "EntryOf", &entries)?;
    point_set(solver, "ExitOf", &exits)?;
    point_set(solver, "Target", targets)?;

    // --- ProgramInt(from, to, l, l2, g, g2).
    {
        let from_i = solver.alloc().formal("ProgramInt", 0).clone();
        let to_i = solver.alloc().formal("ProgramInt", 1).clone();
        let l_i = solver.alloc().formal("ProgramInt", 2).clone();
        let l2_i = solver.alloc().formal("ProgramInt", 3).clone();
        let g_i = solver.alloc().formal("ProgramInt", 4).clone();
        let g2_i = solver.alloc().formal("ProgramInt", 5).clone();
        let (from_v, to_v) = (scalar_vars(&from_i), scalar_vars(&to_i));
        let (l_v, l2_v) = (scalar_vars(&l_i), scalar_vars(&l2_i));
        let (g_v, g2_v) = (scalar_vars(&g_i), scalar_vars(&g2_i));
        let m = solver.manager();
        let mut rel = Bdd::FALSE;
        for proc in &cfg.procs {
            let nl = proc.n_locals();
            let frame = {
                let a = zero_above(m, &l_v, nl);
                let b = zero_above(m, &l2_v, nl);
                m.and(a, b)
            };
            for (&pc, edges) in &proc.edges {
                for e in edges {
                    let Edge::Internal { to, guard, assigns } = e else { continue };
                    let mut b = eq_const(m, &from_v, pc as u64);
                    let tob = eq_const(m, &to_v, *to as u64);
                    b = m.and(b, tob);
                    let gd = can_value(m, guard, &l_v, &g_v, true);
                    b = m.and(b, gd);
                    let mut assigned_locals = Vec::new();
                    let mut assigned_globals = Vec::new();
                    for (tv, expr) in assigns {
                        let target = match tv {
                            VarRef::Local(i) => {
                                assigned_locals.push(*i);
                                l2_v[*i]
                            }
                            VarRef::Global(i) => {
                                assigned_globals.push(*i);
                                g2_v[*i]
                            }
                        };
                        let a = assign_bit(m, target, expr, &l_v, &g_v);
                        b = m.and(b, a);
                    }
                    // Frame: unassigned variables keep their values.
                    let fl = eq_except(m, &l_v[..nl], &l2_v[..nl], &assigned_locals);
                    b = m.and(b, fl);
                    let fg = eq_except(m, &g_v[..n_globals], &g2_v[..n_globals], &assigned_globals);
                    b = m.and(b, fg);
                    b = m.and(b, frame);
                    rel = m.or(rel, b);
                }
            }
        }
        solver.set_input("ProgramInt", rel)?;
    }

    // --- ProgramCall(call, entry, cl, el, g): parameter passing.
    {
        let call_i = solver.alloc().formal("ProgramCall", 0).clone();
        let entry_i = solver.alloc().formal("ProgramCall", 1).clone();
        let cl_i = solver.alloc().formal("ProgramCall", 2).clone();
        let el_i = solver.alloc().formal("ProgramCall", 3).clone();
        let g_i = solver.alloc().formal("ProgramCall", 4).clone();
        let call_v = scalar_vars(&call_i);
        let entry_v = scalar_vars(&entry_i);
        let cl_v = scalar_vars(&cl_i);
        let el_v = scalar_vars(&el_i);
        let g_v = scalar_vars(&g_i);
        let m = solver.manager();
        let mut rel = Bdd::FALSE;
        for proc in &cfg.procs {
            let caller_frame = zero_above(m, &cl_v, proc.n_locals());
            for (&pc, edges) in &proc.edges {
                for e in edges {
                    let Edge::Call { callee, args, .. } = e else { continue };
                    let q = &cfg.procs[*callee];
                    let mut b = eq_const(m, &call_v, pc as u64);
                    let eb = eq_const(m, &entry_v, q.entry as u64);
                    b = m.and(b, eb);
                    // Parameters from arguments; remaining callee locals F.
                    for (i, arg) in args.iter().enumerate() {
                        let a = assign_bit(m, el_v[i], arg, &cl_v, &g_v);
                        b = m.and(b, a);
                    }
                    let rest = zero_above(m, &el_v, args.len());
                    b = m.and(b, rest);
                    b = m.and(b, caller_frame);
                    rel = m.or(rel, b);
                }
            }
        }
        solver.set_input("ProgramCall", rel)?;
    }

    // --- SkipCall(call, ret): the `Across` relation.
    {
        let call_i = solver.alloc().formal("SkipCall", 0).clone();
        let ret_i = solver.alloc().formal("SkipCall", 1).clone();
        let call_v = scalar_vars(&call_i);
        let ret_v = scalar_vars(&ret_i);
        let m = solver.manager();
        let mut rel = Bdd::FALSE;
        for proc in &cfg.procs {
            for (&pc, edges) in &proc.edges {
                for e in edges {
                    let Edge::Call { ret_to, .. } = e else { continue };
                    let a = eq_const(m, &call_v, pc as u64);
                    let b = eq_const(m, &ret_v, *ret_to as u64);
                    let both = m.and(a, b);
                    rel = m.or(rel, both);
                }
            }
        }
        solver.set_input("SkipCall", rel)?;
    }

    // --- ProcEntry(p, e): every pc maps to the entry pc of its procedure.
    {
        let p_i = solver.alloc().formal("ProcEntry", 0).clone();
        let e_i = solver.alloc().formal("ProcEntry", 1).clone();
        let p_v = scalar_vars(&p_i);
        let e_v = scalar_vars(&e_i);
        let m = solver.manager();
        let mut rel = Bdd::FALSE;
        for proc in &cfg.procs {
            let entry = eq_const(m, &e_v, proc.entry as u64);
            for pc in proc.pc_range.0..proc.pc_range.1 {
                let a = eq_const(m, &p_v, pc as u64);
                let both = m.and(a, entry);
                rel = m.or(rel, both);
            }
        }
        solver.set_input("ProcEntry", rel)?;
    }

    // --- SetReturn1(call, lcall, lret): caller locals preserved except
    //     return-value targets.
    {
        let call_i = solver.alloc().formal("SetReturn1", 0).clone();
        let lc_i = solver.alloc().formal("SetReturn1", 1).clone();
        let lr_i = solver.alloc().formal("SetReturn1", 2).clone();
        let call_v = scalar_vars(&call_i);
        let lc_v = scalar_vars(&lc_i);
        let lr_v = scalar_vars(&lr_i);
        let m = solver.manager();
        let mut rel = Bdd::FALSE;
        for proc in &cfg.procs {
            let nl = proc.n_locals();
            for (&pc, edges) in &proc.edges {
                for e in edges {
                    let Edge::Call { rets, .. } = e else { continue };
                    let local_targets: Vec<usize> = rets
                        .iter()
                        .filter_map(|r| match r {
                            VarRef::Local(i) => Some(*i),
                            VarRef::Global(_) => None,
                        })
                        .collect();
                    let mut b = eq_const(m, &call_v, pc as u64);
                    let keep = eq_except(m, &lc_v[..nl], &lr_v[..nl], &local_targets);
                    b = m.and(b, keep);
                    let fa = zero_above(m, &lc_v, nl);
                    let fb = zero_above(m, &lr_v, nl);
                    b = m.and(b, fa);
                    b = m.and(b, fb);
                    rel = m.or(rel, b);
                }
            }
        }
        solver.set_input("SetReturn1", rel)?;
    }

    // --- SetReturn2(call, exit, ucl, scl, ucg, scg): return-value transfer.
    //     Pairs each call site with the exit points of its callee, ties the
    //     exit state (ucl, ucg) to the post-return state (scl, scg).
    {
        let call_i = solver.alloc().formal("SetReturn2", 0).clone();
        let exit_i = solver.alloc().formal("SetReturn2", 1).clone();
        let ucl_i = solver.alloc().formal("SetReturn2", 2).clone();
        let scl_i = solver.alloc().formal("SetReturn2", 3).clone();
        let ucg_i = solver.alloc().formal("SetReturn2", 4).clone();
        let scg_i = solver.alloc().formal("SetReturn2", 5).clone();
        let call_v = scalar_vars(&call_i);
        let exit_v = scalar_vars(&exit_i);
        let ucl_v = scalar_vars(&ucl_i);
        let scl_v = scalar_vars(&scl_i);
        let ucg_v = scalar_vars(&ucg_i);
        let scg_v = scalar_vars(&scg_i);
        let m = solver.manager();
        let mut rel = Bdd::FALSE;
        for proc in &cfg.procs {
            for (&pc, edges) in &proc.edges {
                for e in edges {
                    let Edge::Call { callee, rets, .. } = e else { continue };
                    let q = &cfg.procs[*callee];
                    let global_targets: Vec<usize> = rets
                        .iter()
                        .filter_map(|r| match r {
                            VarRef::Global(i) => Some(*i),
                            VarRef::Local(_) => None,
                        })
                        .collect();
                    for exit in &q.exits {
                        let mut b = eq_const(m, &call_v, pc as u64);
                        let eb = eq_const(m, &exit_v, exit.pc as u64);
                        b = m.and(b, eb);
                        // Return values: i-th target receives i-th expr,
                        // evaluated in the exit state (ucl, ucg).
                        for (target, expr) in rets.iter().zip(&exit.ret_exprs) {
                            let tv = match target {
                                VarRef::Local(i) => scl_v[*i],
                                VarRef::Global(i) => scg_v[*i],
                            };
                            let a = assign_bit(m, tv, expr, &ucl_v, &ucg_v);
                            b = m.and(b, a);
                        }
                        // Globals not overwritten come from the exit state.
                        let keep =
                            eq_except(m, &ucg_v[..n_globals], &scg_v[..n_globals], &global_targets);
                        b = m.and(b, keep);
                        // Frames: exit locals within the callee's width.
                        let fu = zero_above(m, &ucl_v, q.n_locals());
                        b = m.and(b, fu);
                        let fs = zero_above(m, &scl_v, proc.n_locals());
                        b = m.and(b, fs);
                        rel = m.or(rel, b);
                    }
                }
            }
        }
        solver.set_input("SetReturn2", rel)?;
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_bdd::Manager;

    #[test]
    fn can_value_matches_value_set() {
        // Exhaustively compare can_true/can_false against LExpr::value_set
        // over all states for a few expressions.
        let exprs = [
            LExpr::Nondet,
            LExpr::Var(VarRef::Local(0)),
            LExpr::And(Box::new(LExpr::Var(VarRef::Local(0))), Box::new(LExpr::Nondet)),
            LExpr::Or(
                Box::new(LExpr::Not(Box::new(LExpr::Var(VarRef::Global(0))))),
                Box::new(LExpr::Var(VarRef::Local(1))),
            ),
            LExpr::Eq(Box::new(LExpr::Var(VarRef::Local(0))), Box::new(LExpr::Nondet)),
            LExpr::Ne(
                Box::new(LExpr::Var(VarRef::Local(0))),
                Box::new(LExpr::Var(VarRef::Global(0))),
            ),
            LExpr::Schoose(
                Box::new(LExpr::Var(VarRef::Local(0))),
                Box::new(LExpr::Var(VarRef::Global(0))),
            ),
            LExpr::Schoose(Box::new(LExpr::Const(false)), Box::new(LExpr::Const(false))),
        ];
        for e in &exprs {
            let mut m = Manager::new();
            let locals = m.new_vars(2);
            let globals = m.new_vars(1);
            let ct = can_value(&mut m, e, &locals, &globals, true);
            let cf = can_value(&mut m, e, &locals, &globals, false);
            for bits in 0..8u32 {
                let l0 = bits & 1 == 1;
                let l1 = bits & 2 == 2;
                let g0 = bits & 4 == 4;
                let lbits: u64 = (l0 as u64) | ((l1 as u64) << 1);
                let gbits: u64 = g0 as u64;
                let read = |v: VarRef| match v {
                    VarRef::Local(i) => (lbits >> i) & 1 == 1,
                    VarRef::Global(i) => (gbits >> i) & 1 == 1,
                };
                let (want_t, want_f) = e.value_set(&read);
                let env = vec![l0, l1, g0];
                assert_eq!(m.eval(ct, &env), want_t, "{e:?} can_true at {bits:03b}");
                assert_eq!(m.eval(cf, &env), want_f, "{e:?} can_false at {bits:03b}");
            }
        }
    }

    #[test]
    fn assign_bit_is_functional_for_deterministic_exprs() {
        let mut m = Manager::new();
        let locals = m.new_vars(2);
        let globals = m.new_vars(0);
        let target = m.new_var();
        let e = LExpr::And(
            Box::new(LExpr::Var(VarRef::Local(0))),
            Box::new(LExpr::Var(VarRef::Local(1))),
        );
        let rel = assign_bit(&mut m, target, &e, &locals, &globals);
        // Exactly one target value per state.
        for bits in 0..4u32 {
            let l0 = bits & 1 == 1;
            let l1 = bits & 2 == 2;
            let t_true = m.eval(rel, &[l0, l1, true]);
            let t_false = m.eval(rel, &[l0, l1, false]);
            assert_eq!(t_true, l0 && l1);
            assert_eq!(t_false, !(l0 && l1));
        }
    }

    #[test]
    fn zero_above_constrains_tail() {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let f = zero_above(&mut m, &vars, 2);
        assert!(m.eval(f, &[true, true, false, false]));
        assert!(!m.eval(f, &[false, false, true, false]));
    }
}
