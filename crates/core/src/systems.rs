//! The reachability algorithms of §4, *written as fixed-point formulae* —
//! the heart of the paper. Each function returns a [`System`] whose input
//! relations are the templates `encode.rs` installs; solving the system's
//! `reach` query answers the reachability question.
//!
//! Three algorithms, in increasing sophistication:
//!
//! * [`system_simple`] — the classical summary algorithm (§4.1): seeds
//!   *every* entry of every procedure, reachable or not;
//! * [`system_ef`] — the entry-forward algorithm (§4.2), in both the naive
//!   form (one big conjunction in the return clause) and the *split* form
//!   the appendix gives, which rearranges the return clause so the two
//!   summary sets are each first shrunk by small relations before their
//!   conjunction — the rewrite §4.2 motivates with BDD-size arguments;
//! * [`system_efopt`] — the optimized entry-forward algorithm (§4.3), with
//!   the frontier bit `fr`, the pc-projected `Relevant` set (a
//!   **non-monotone** equation — only the operational semantics of §3 gives
//!   it meaning), and the `New1`/`New2` helper fixpoints that close internal
//!   transitions eagerly but discover calls/returns one round at a time.

use getafix_boolprog::Cfg;
use getafix_mucalc::{Formula, System, SystemBuilder, SystemError, Term, Type};

/// Conf field names (shared with `encode.rs`).
const FIELDS: [&str; 5] = ["pc", "cl", "cg", "ecl", "ecg"];

fn conf_type() -> Type {
    Type::Struct(
        FIELDS
            .iter()
            .map(|&f| {
                let ty = match f {
                    "pc" => Type::named("PC"),
                    "cl" | "ecl" => Type::named("Local"),
                    _ => Type::named("Global"),
                };
                (f.to_string(), ty)
            })
            .collect(),
    )
}

/// Declares the shared types and input-relation signatures used by every
/// algorithm (sequential and concurrent — `getafix-conc` builds on this).
pub fn base_builder(cfg: &Cfg) -> Result<SystemBuilder, SystemError> {
    let mut b = System::builder();
    b.declare_type("PC", Type::Range(cfg.pc_count.max(1) as u64))?;
    b.declare_type("Local", Type::Bits(cfg.max_locals().max(1) as u32))?;
    b.declare_type("Global", Type::Bits(cfg.globals.len().max(1) as u32))?;
    b.declare_type("Conf", conf_type())?;
    let pc = || Type::named("PC");
    let local = || Type::named("Local");
    let global = || Type::named("Global");
    let conf = || Type::named("Conf");
    b.input("Init", vec![("s".into(), conf())]);
    b.input("EntryOf", vec![("p".into(), pc())]);
    b.input("ExitOf", vec![("p".into(), pc())]);
    b.input("Target", vec![("p".into(), pc())]);
    b.input(
        "ProgramInt",
        vec![
            ("from".into(), pc()),
            ("to".into(), pc()),
            ("l".into(), local()),
            ("l2".into(), local()),
            ("g".into(), global()),
            ("g2".into(), global()),
        ],
    );
    b.input(
        "ProgramCall",
        vec![
            ("call".into(), pc()),
            ("entry".into(), pc()),
            ("cl".into(), local()),
            ("el".into(), local()),
            ("g".into(), global()),
        ],
    );
    b.input("SkipCall", vec![("call".into(), pc()), ("ret".into(), pc())]);
    b.input("ProcEntry", vec![("p".into(), pc()), ("e".into(), pc())]);
    b.input(
        "SetReturn1",
        vec![("call".into(), pc()), ("lcall".into(), local()), ("lret".into(), local())],
    );
    b.input(
        "SetReturn2",
        vec![
            ("call".into(), pc()),
            ("exit".into(), pc()),
            ("ucl".into(), local()),
            ("scl".into(), local()),
            ("ucg".into(), global()),
            ("scg".into(), global()),
        ],
    );
    Ok(b)
}

// Shorthand constructors.
fn v(name: &str) -> Term {
    Term::var(name)
}

fn fld(name: &str, f: &str) -> Term {
    Term::field(name, f)
}

fn app(name: &str, args: Vec<Term>) -> Formula {
    Formula::app(name, args)
}

fn eq(a: Term, b: Term) -> Formula {
    Formula::eq(a, b)
}

fn conf() -> Type {
    Type::named("Conf")
}

/// `x`'s entry fields match `s`'s ("the entry state does not change").
fn same_entry(x: &str, s: &str) -> Formula {
    Formula::and(vec![eq(fld(x, "ecl"), fld(s, "ecl")), eq(fld(x, "ecg"), fld(s, "ecg"))])
}

/// Internal-step clause: `∃t. R(t) ∧ t,s same entry ∧ ProgramInt(t → s)`.
fn clause_internal(rel: &str, rel_args: impl Fn(&str) -> Vec<Term>) -> Formula {
    Formula::exists(
        vec![("t".into(), conf())],
        Formula::and(vec![
            app(rel, rel_args("t")),
            same_entry("t", "s"),
            app(
                "ProgramInt",
                vec![
                    fld("t", "pc"),
                    fld("s", "pc"),
                    fld("t", "cl"),
                    fld("s", "cl"),
                    fld("t", "cg"),
                    fld("s", "cg"),
                ],
            ),
        ]),
    )
}

/// Call clause: `s` is a freshly-entered procedure configuration discovered
/// from a reachable caller `t`. `guard` restricts the caller (used by EFopt
/// to require a relevant call site).
fn clause_call(rel: &str, rel_args: impl Fn(&str) -> Vec<Term>, guard: Option<Formula>) -> Formula {
    let mut caller = vec![
        app(rel, rel_args("t")),
        eq(fld("t", "cg"), fld("s", "cg")),
        app(
            "ProgramCall",
            vec![fld("t", "pc"), fld("s", "pc"), fld("t", "cl"), fld("s", "cl"), fld("s", "cg")],
        ),
    ];
    if let Some(g) = guard {
        caller.push(g);
    }
    Formula::and(vec![
        app("EntryOf", vec![fld("s", "pc")]),
        eq(fld("s", "ecl"), fld("s", "cl")),
        eq(fld("s", "ecg"), fld("s", "cg")),
        Formula::exists(vec![("t".into(), conf())], Formula::and(caller)),
    ])
}

/// The *naive* return clause of §4.2: both summary sets conjoined inside a
/// single quantifier block — the BDD-product bottleneck the paper rewrites
/// away.
fn clause_return_naive(
    rel: &str,
    rel_args: impl Fn(&str) -> Vec<Term>,
    relevance: Option<Formula>,
) -> Formula {
    let mut parts = vec![
        app(rel, rel_args("t")),
        app(rel, rel_args("u")),
        same_entry("t", "s"),
        app("SkipCall", vec![fld("t", "pc"), fld("s", "pc")]),
        // The callee's entry is induced by the call site.
        Formula::exists(
            vec![("epc".into(), Type::named("PC"))],
            app(
                "ProgramCall",
                vec![fld("t", "pc"), v("epc"), fld("t", "cl"), fld("u", "ecl"), fld("t", "cg")],
            ),
        ),
        eq(fld("u", "ecg"), fld("t", "cg")),
        app("ExitOf", vec![fld("u", "pc")]),
        app("SetReturn1", vec![fld("t", "pc"), fld("t", "cl"), fld("s", "cl")]),
        app(
            "SetReturn2",
            vec![
                fld("t", "pc"),
                fld("u", "pc"),
                fld("u", "cl"),
                fld("s", "cl"),
                fld("u", "cg"),
                fld("s", "cg"),
            ],
        ),
    ];
    if let Some(g) = relevance {
        parts.push(g);
    }
    Formula::exists(vec![("t".into(), conf()), ("u".into(), conf())], Formula::and(parts))
}

/// The *split* return clause from the appendix: extract `tpc`, `tcg`,
/// `uecl`, quantify the caller and the callee summary separately, and only
/// then conjoin the two (now much smaller) sets.
fn clause_return_split(
    rel: &str,
    rel_args: impl Fn(&str) -> Vec<Term>,
    relevance: Option<Formula>,
) -> Formula {
    let caller_part = Formula::exists(
        vec![("t".into(), conf())],
        Formula::and(vec![
            app(rel, rel_args("t")),
            eq(fld("t", "pc"), v("tpc")),
            eq(fld("t", "cg"), v("tcg")),
            same_entry("t", "s"),
            app("SkipCall", vec![fld("t", "pc"), fld("s", "pc")]),
            app("SetReturn1", vec![fld("t", "pc"), fld("t", "cl"), fld("s", "cl")]),
            Formula::exists(
                vec![("epc".into(), Type::named("PC"))],
                app(
                    "ProgramCall",
                    vec![fld("t", "pc"), v("epc"), fld("t", "cl"), v("uecl"), fld("t", "cg")],
                ),
            ),
        ]),
    );
    let mut callee_parts = vec![
        app(rel, rel_args("u")),
        eq(fld("u", "ecl"), v("uecl")),
        eq(fld("u", "ecg"), v("tcg")),
        app("ExitOf", vec![fld("u", "pc")]),
        app(
            "SetReturn2",
            vec![
                v("tpc"),
                fld("u", "pc"),
                fld("u", "cl"),
                fld("s", "cl"),
                fld("u", "cg"),
                fld("s", "cg"),
            ],
        ),
    ];
    if let Some(g) = relevance {
        callee_parts.push(g);
    }
    let callee_part = Formula::exists(vec![("u".into(), conf())], Formula::and(callee_parts));
    Formula::exists(
        vec![
            ("tpc".into(), Type::named("PC")),
            ("tcg".into(), Type::named("Global")),
            ("uecl".into(), Type::named("Local")),
        ],
        Formula::and(vec![caller_part, callee_part]),
    )
}

/// The reachability query shared by all systems: a target pc occurs in the
/// computed relation.
fn reach_query(rel: &str, args: Vec<Term>) -> Formula {
    Formula::exists(
        vec![("s".into(), conf())],
        Formula::and(vec![app(rel, args), app("Target", vec![fld("s", "pc")])]),
    )
}

/// §4.1 — the simple summary algorithm. `Summary` seeds **all** entries of
/// all procedures (with every entry valuation), so it explores unreachable
/// parts of the state space; the query then filters through `EntryReach`,
/// an auxiliary fixpoint computing which entry configurations are actually
/// reachable from `Init`.
///
/// # Errors
///
/// Propagates [`SystemError`]s (none expected for a well-formed CFG).
pub fn system_simple(cfg: &Cfg) -> Result<System, SystemError> {
    let mut b = base_builder(cfg)?;
    let args = |x: &str| vec![v(x)];
    // Summary(s): s ranges over summaries of every procedure, entry
    // unconstrained (the all-entries seeding of §4.1).
    b.define(
        "Summary",
        vec![("s".into(), conf())],
        Formula::or(vec![
            // Every entry of every procedure, any valuation.
            Formula::and(vec![
                app("EntryOf", vec![fld("s", "pc")]),
                eq(fld("s", "cl"), fld("s", "ecl")),
                eq(fld("s", "cg"), fld("s", "ecg")),
            ]),
            clause_internal("Summary", args),
            clause_return_naive("Summary", args, None),
        ]),
    );
    // EntryReach(p, l, g): the entry configuration (pc = p, locals = l,
    // globals = g) is reachable from Init, chaining call edges through the
    // (eagerly computed) summaries. A summary's own entry pc is recovered
    // through the ProcEntry template (pc ↦ entry pc of its procedure).
    let entry_params = vec![
        ("p".to_string(), Type::named("PC")),
        ("l".to_string(), Type::named("Local")),
        ("g".to_string(), Type::named("Global")),
    ];
    b.define(
        "EntryReach",
        entry_params,
        Formula::or(vec![
            Formula::exists(
                vec![("s".into(), conf())],
                Formula::and(vec![
                    app("Init", vec![v("s")]),
                    eq(fld("s", "pc"), v("p")),
                    eq(fld("s", "cl"), v("l")),
                    eq(fld("s", "cg"), v("g")),
                ]),
            ),
            Formula::and(vec![
                app("EntryOf", vec![v("p")]),
                Formula::exists(
                    vec![("t".into(), conf()), ("te".into(), Type::named("PC"))],
                    Formula::and(vec![
                        app("Summary", vec![v("t")]),
                        app("ProcEntry", vec![fld("t", "pc"), v("te")]),
                        app("EntryReach", vec![v("te"), fld("t", "ecl"), fld("t", "ecg")]),
                        eq(fld("t", "cg"), v("g")),
                        app(
                            "ProgramCall",
                            vec![fld("t", "pc"), v("p"), fld("t", "cl"), v("l"), v("g")],
                        ),
                    ]),
                ),
            ]),
        ]),
    );
    b.query(
        "reach",
        Formula::exists(
            vec![("s".into(), conf()), ("te".into(), Type::named("PC"))],
            Formula::and(vec![
                app("Summary", vec![v("s")]),
                app("Target", vec![fld("s", "pc")]),
                app("ProcEntry", vec![fld("s", "pc"), v("te")]),
                app("EntryReach", vec![v("te"), fld("s", "ecl"), fld("s", "ecg")]),
            ]),
        ),
    );
    b.build()
}

/// §4.2 — the entry-forward algorithm.
///
/// With `split_return = true` this is the appendix formula (the tuned form
/// used in the evaluation); with `false` it is the direct transcription
/// whose return clause conjoins two full summary sets (the E7 ablation).
///
/// # Errors
///
/// Propagates [`SystemError`]s (none expected for a well-formed CFG).
pub fn system_ef(cfg: &Cfg, split_return: bool) -> Result<System, SystemError> {
    build_ef(cfg, split_return, true)
}

/// The entry-forward system *without* the early-termination disjunct: the
/// fixpoint of `Reachable` is then exactly the entry-annotated reachable
/// set. (With early termination, the relation saturates to the whole
/// `Conf` domain the moment a target is found — correct for the Boolean
/// verdict, useless as a provenance structure.)
///
/// # Errors
///
/// Propagates [`SystemError`]s (none expected for a well-formed CFG).
pub fn system_ef_trace(cfg: &Cfg, split_return: bool) -> Result<System, SystemError> {
    build_ef(cfg, split_return, false)
}

/// The historical dedicated witness system: split-return entry-forward
/// without early termination. **Demoted to a test oracle** — production
/// trace extraction peels the *verdict solver's* provenance
/// ([`crate::emit_trace_system`] + `getafix-witness`), performing exactly
/// one solve; this second system survives so the differential suites can
/// cross-check that path against an independent solve.
///
/// # Errors
///
/// Propagates [`SystemError`]s (none expected for a well-formed CFG).
pub fn system_ef_witness(cfg: &Cfg) -> Result<System, SystemError> {
    system_ef_trace(cfg, true)
}

fn build_ef(cfg: &Cfg, split_return: bool, early_exit: bool) -> Result<System, SystemError> {
    let mut b = base_builder(cfg)?;
    let args = |x: &str| vec![v(x)];
    let ret_clause = if split_return {
        clause_return_split("Reachable", args, None)
    } else {
        clause_return_naive("Reachable", args, None)
    };
    let mut clauses = Vec::new();
    if early_exit {
        // Early termination (appendix): once a target is reachable the
        // relation saturates and the iteration stops immediately.
        clauses.push(Formula::exists(
            vec![("t".into(), conf())],
            Formula::and(vec![app("Target", vec![fld("t", "pc")]), app("Reachable", vec![v("t")])]),
        ));
    }
    clauses.extend([
        app("Init", vec![v("s")]),
        clause_internal("Reachable", args),
        clause_call("Reachable", args, None),
        ret_clause,
    ]);
    b.define("Reachable", vec![("s".into(), conf())], Formula::or(clauses));
    b.query("reach", reach_query("Reachable", vec![v("s")]));
    b.build()
}

/// §4.3 — the optimized entry-forward algorithm, with the frontier bit and
/// the `Relevant` pc projection. `Relevant` reads the *complement* of
/// `SummaryEFopt(0, ·)`, making the system non-monotone; evaluation is
/// meaningful (and terminating) under the §3 operational semantics.
///
/// # Errors
///
/// Propagates [`SystemError`]s (none expected for a well-formed CFG).
pub fn system_efopt(cfg: &Cfg) -> Result<System, SystemError> {
    let mut b = base_builder(cfg)?;
    b.declare_type("Fr", Type::Range(2))?;
    let args1 = |x: &str| vec![Term::int(1), v(x)];

    b.define(
        "SummaryEFopt",
        vec![("fr".into(), Type::named("Fr")), ("s".into(), conf())],
        Formula::or(vec![
            // [1] initial configurations, marked fresh.
            Formula::and(vec![eq(v("fr"), Term::int(1)), app("Init", vec![v("s")])]),
            // [2] every (1, s) also enters as (0, s) and persists as (1, s).
            app("SummaryEFopt", vec![Term::int(1), v("s")]),
            // [3] newly discovered configurations, marked fresh.
            Formula::and(vec![
                eq(v("fr"), Term::int(1)),
                Formula::or(vec![app("New1", vec![v("s")]), app("New2", vec![v("s")])]),
            ]),
        ]),
    );

    // [4] the pc projection of the tuples discovered last round. The
    // negation makes this non-monotone in SummaryEFopt.
    b.define(
        "Relevant",
        vec![("p".into(), Type::named("PC"))],
        Formula::exists(
            vec![("s".into(), conf())],
            Formula::and(vec![
                app("SummaryEFopt", vec![Term::int(1), v("s")]),
                Formula::not(app("SummaryEFopt", vec![Term::int(0), v("s")])),
                eq(fld("s", "pc"), v("p")),
            ]),
        ),
    );

    // [5-6] image-closure of the relevant set under internal transitions.
    b.define(
        "New1",
        vec![("s".into(), conf())],
        Formula::or(vec![
            Formula::and(vec![
                app("SummaryEFopt", vec![Term::int(1), v("s")]),
                app("Relevant", vec![fld("s", "pc")]),
            ]),
            clause_internal("New1", |x| vec![v(x)]),
        ]),
    );

    // [7-11] one round of calls and returns from relevant configurations.
    b.define(
        "New2",
        vec![("s".into(), conf())],
        Formula::or(vec![
            // [7] calls from relevant call sites.
            clause_call("SummaryEFopt", args1, Some(app("Relevant", vec![fld("t", "pc")]))),
            // [8-11] returns where the caller or the exit is relevant —
            // requiring both would miss pairs discovered in different
            // rounds (the paper's clause-11 subtlety).
            clause_return_split(
                "SummaryEFopt",
                args1,
                Some(Formula::or(vec![
                    app("Relevant", vec![v("tpc")]),
                    app("Relevant", vec![fld("u", "pc")]),
                ])),
            ),
        ]),
    );

    b.query("reach", reach_query("SummaryEFopt", vec![Term::int(1), v("s")]));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::parse_program;

    fn cfg() -> Cfg {
        Cfg::build(
            &parse_program(
                r#"
                decl g;
                main() begin
                  decl x;
                  x := *;
                  g := f(x);
                  if (g) then HIT: skip; fi;
                end
                f(a) returns 1 begin
                  return !a;
                end
                "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn systems_build_and_typecheck() {
        let cfg = cfg();
        let simple = system_simple(&cfg).unwrap();
        assert!(simple.relation("Summary").is_some());
        let ef = system_ef(&cfg, true).unwrap();
        assert!(ef.relation("Reachable").is_some());
        let ef_naive = system_ef(&cfg, false).unwrap();
        assert!(ef_naive.relation("Reachable").is_some());
        let efopt = system_efopt(&cfg).unwrap();
        assert!(efopt.relation("SummaryEFopt").is_some());
        assert!(efopt.relation("Relevant").is_some());
    }

    #[test]
    fn ef_is_positive_but_efopt_is_not() {
        let cfg = cfg();
        let ef = system_ef(&cfg, true).unwrap();
        assert!(ef.is_positive("Reachable"), "EF is a plain least fixpoint");
        let efopt = system_efopt(&cfg).unwrap();
        assert!(
            !efopt.is_positive("Relevant"),
            "Relevant reads a complement — the non-monotone operator §4.3 needs"
        );
    }

    #[test]
    fn systems_pretty_print_one_page() {
        // The paper's headline: each algorithm is a page of formulae.
        let cfg = cfg();
        let ef = system_ef(&cfg, true).unwrap();
        let text = ef.to_string();
        assert!(text.lines().count() < 80, "EF fits on a page:\n{text}");
        let efopt = system_efopt(&cfg).unwrap();
        assert!(efopt.to_string().lines().count() < 120);
    }
}
