//! The core of the Getafix reproduction: symbolic reachability for
//! recursive Boolean programs, with the model-checking algorithms *written
//! as fixed-point formulae* (PLDI 2009, La Torre–Madhusudan–Parlato).
//!
//! The pipeline mirrors Figure 1 of the paper:
//!
//! 1. a Boolean program is lowered to a CFG (`getafix-boolprog`);
//! 2. [`encode`] compiles the program into the seven *template relations*
//!    of §4 (`Init`, `ProgramInt`, `ProgramCall`, `SkipCall`, `SetReturn1`,
//!    `SetReturn2`, `Entry`/`Exit`/`Target` point sets) as BDDs;
//! 3. [`systems`] states a reachability algorithm as a one-page equation
//!    system in the fixed-point calculus (`getafix-mucalc`);
//! 4. the generic solver evaluates the system — no algorithm-specific BDD
//!    code anywhere.
//!
//! # Example
//!
//! ```
//! use getafix_boolprog::{parse_program, Cfg};
//! use getafix_core::{check_label, Algorithm};
//!
//! let program = parse_program(r#"
//!     decl g;
//!     main() begin
//!       decl x;
//!       x := *;
//!       g := f(x);
//!       if (g) then HIT: skip; fi;
//!     end
//!     f(a) returns 1 begin
//!       return !a;
//!     end
//! "#)?;
//! let cfg = Cfg::build(&program)?;
//! let result = check_label(&cfg, "HIT", Algorithm::EntryForwardOpt)?;
//! assert!(result.reachable);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod encode;
pub mod systems;

mod analysis;

pub use analysis::{
    build_solver, build_solver_with, build_trace_solver_with, check_label, check_reachability,
    check_reachability_with, emit_system, emit_trace_system, Algorithm, AnalysisError,
    AnalysisResult,
};
pub use encode::{can_value, install_templates, EncodeError};
pub use systems::{system_ef, system_ef_trace, system_ef_witness, system_efopt, system_simple};
