//! The public analysis driver: pick an algorithm, point it at a program,
//! get a reachability verdict plus the statistics Figure 2 reports.

use crate::encode::{install_templates, EncodeError};
use crate::systems::{system_ef, system_ef_trace, system_efopt, system_simple};
use getafix_boolprog::{Cfg, Pc};
use getafix_mucalc::{
    LimitReport, SolveError, SolveOptions, SolveStats, Solver, System, SystemError,
};
use getafix_telemetry::{self as telemetry, Phase};
use std::fmt;
use std::time::{Duration, Instant};

/// The reachability algorithms of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// §4.1 — classical summaries seeded at *every* entry (explores
    /// unreachable space; the E8 ablation baseline).
    SummarySimple,
    /// §4.2 — entry-forward summaries, return clause as one conjunction
    /// (the pre-rewrite form; the E7 ablation baseline).
    EntryForwardNaive,
    /// §4.2 — entry-forward summaries with the appendix's split return
    /// clause (the `EF` column of Figure 2).
    EntryForward,
    /// §4.3 — the optimized entry-forward algorithm with frontier bit and
    /// `Relevant` pc projection (the `EF opt` column of Figure 2).
    EntryForwardOpt,
}

impl Algorithm {
    /// All algorithms, for sweeps.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::SummarySimple,
        Algorithm::EntryForwardNaive,
        Algorithm::EntryForward,
        Algorithm::EntryForwardOpt,
    ];

    /// The relation whose fixpoint the algorithm computes.
    pub fn main_relation(self) -> &'static str {
        match self {
            Algorithm::SummarySimple => "Summary",
            Algorithm::EntryForwardNaive | Algorithm::EntryForward => "Reachable",
            Algorithm::EntryForwardOpt => "SummaryEFopt",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Algorithm::SummarySimple => "summary-simple",
            Algorithm::EntryForwardNaive => "ef-naive",
            Algorithm::EntryForward => "ef",
            Algorithm::EntryForwardOpt => "ef-opt",
        };
        write!(f, "{s}")
    }
}

/// Errors from the analysis driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Formula generation failed.
    System(String),
    /// Template encoding failed.
    Encode(String),
    /// Fixpoint evaluation failed.
    Solve(String),
    /// A resource bound tripped (deadline, node budget, step budget or an
    /// external cancellation). Kept structured — unlike
    /// [`AnalysisError::Solve`]'s stringified surface — so the CLI can
    /// print the partial statistics and exit with the dedicated resource
    /// code. Equality compares the limit kind only.
    ResourceLimit(Box<LimitReport>),
    /// A solver pool worker panicked; the fault was isolated at the worker
    /// boundary and peers were cancelled.
    WorkerPanicked {
        /// Pool worker index (0-based).
        worker: usize,
        /// SCC stratum index the worker was solving.
        stratum: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// No pc matches the requested target.
    NoSuchTarget(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::System(m) => write!(f, "system: {m}"),
            AnalysisError::Encode(m) => write!(f, "encode: {m}"),
            AnalysisError::Solve(m) => write!(f, "solve: {m}"),
            AnalysisError::ResourceLimit(report) => write!(f, "solve: {report}"),
            AnalysisError::WorkerPanicked { worker, stratum, message } => {
                write!(
                    f,
                    "solve: worker {worker} panicked while solving stratum {stratum}: {message}"
                )
            }
            AnalysisError::NoSuchTarget(l) => write!(f, "no label `{l}` in the program"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<SystemError> for AnalysisError {
    fn from(e: SystemError) -> Self {
        AnalysisError::System(e.to_string())
    }
}

impl From<EncodeError> for AnalysisError {
    fn from(e: EncodeError) -> Self {
        AnalysisError::Encode(e.to_string())
    }
}

impl From<SolveError> for AnalysisError {
    fn from(e: SolveError) -> Self {
        match e {
            // Keep the resource errors structured: stringifying would
            // discard the partial statistics the CLI reports on exit 3.
            SolveError::LimitExceeded(report) => AnalysisError::ResourceLimit(report),
            SolveError::WorkerPanicked { worker, stratum, message } => {
                AnalysisError::WorkerPanicked { worker, stratum, message }
            }
            other => AnalysisError::Solve(other.to_string()),
        }
    }
}

/// The verdict and statistics of one reachability run.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Is any target pc reachable?
    pub reachable: bool,
    /// DAG node count of the final summary/reachable-set BDD — the
    /// `#Nodes in BDD` column of Figure 2.
    pub summary_nodes: usize,
    /// Outer fixpoint iterations of the main relation.
    pub iterations: usize,
    /// Total relation re-evaluations (body compilations) across the whole
    /// system — the scheduling-quality measure the worklist strategy
    /// minimizes.
    pub reevaluations: usize,
    /// Wall-clock time of evaluation (excluding parsing/encoding).
    pub solve_time: Duration,
    /// Wall-clock time of template encoding.
    pub encode_time: Duration,
    /// The algorithm used.
    pub algorithm: Algorithm,
    /// Full per-relation / per-SCC solver statistics.
    pub stats: SolveStats,
}

/// Generates the equation system for `algorithm` over `cfg` (exposed so
/// callers can pretty-print "the page of formulae").
///
/// # Errors
///
/// Propagates formula-generation errors.
pub fn emit_system(cfg: &Cfg, algorithm: Algorithm) -> Result<System, AnalysisError> {
    Ok(match algorithm {
        Algorithm::SummarySimple => system_simple(cfg)?,
        Algorithm::EntryForwardNaive => system_ef(cfg, false)?,
        Algorithm::EntryForward => system_ef(cfg, true)?,
        Algorithm::EntryForwardOpt => system_efopt(cfg)?,
    })
}

/// The *trace-capable* variant of an algorithm's system: one whose main
/// relation, solved with provenance recording, can be onion-peeled into a
/// concrete witness by `getafix-witness` — so a `--trace` run performs
/// exactly **one** solve for verdict and evidence.
///
/// * `ef-opt` is trace-capable as-is: the frontier-bit construction has no
///   early-termination clause, so `SummaryEFopt(1, ·)` at the fixpoint is
///   the precise entry-annotated reachable set.
/// * `ef` / `ef-naive` drop their early-termination disjunct
///   ([`system_ef_trace`]): same verdict, a few more rounds, and a
///   `Reachable` fixpoint that *is* the provenance structure.
/// * `simple` returns `None`: its all-entries seeding explores unreachable
///   invocations, so its summaries carry no entry-reachability provenance
///   to peel — callers fall back to a dedicated witness solve.
///
/// # Errors
///
/// Propagates formula-generation errors.
pub fn emit_trace_system(cfg: &Cfg, algorithm: Algorithm) -> Result<Option<System>, AnalysisError> {
    Ok(match algorithm {
        Algorithm::SummarySimple => None,
        Algorithm::EntryForwardNaive => Some(system_ef_trace(cfg, false)?),
        Algorithm::EntryForward => Some(system_ef_trace(cfg, true)?),
        Algorithm::EntryForwardOpt => Some(system_efopt(cfg)?),
    })
}

/// Builds a ready-to-run solver for a single-solve `--trace` run: the
/// trace-capable system of `algorithm` (see [`emit_trace_system`]) with
/// provenance recording forced on and templates installed. `None` when the
/// algorithm has no trace-capable formulation.
///
/// # Errors
///
/// Propagates generation, encoding and option-validation errors.
pub fn build_trace_solver_with(
    cfg: &Cfg,
    targets: &[Pc],
    algorithm: Algorithm,
    options: SolveOptions,
) -> Result<Option<Solver>, AnalysisError> {
    let mut span = telemetry::span(Phase::Encode, "build_trace_solver");
    span.attr("algorithm", algorithm.to_string());
    let Some(system) = emit_trace_system(cfg, algorithm)? else {
        return Ok(None);
    };
    let options = SolveOptions { record_provenance: true, ..options };
    let mut solver = Solver::with_options(system, options)?;
    install_templates(&mut solver, cfg, targets)?;
    Ok(Some(solver))
}

/// Builds a ready-to-run solver with default options: system generated,
/// templates installed.
///
/// # Errors
///
/// Propagates generation and encoding errors.
pub fn build_solver(
    cfg: &Cfg,
    targets: &[Pc],
    algorithm: Algorithm,
) -> Result<Solver, AnalysisError> {
    build_solver_with(cfg, targets, algorithm, SolveOptions::default())
}

/// As [`build_solver`], with explicit solver options (strategy, iteration
/// bound).
///
/// # Errors
///
/// Propagates generation, encoding and option-validation errors.
pub fn build_solver_with(
    cfg: &Cfg,
    targets: &[Pc],
    algorithm: Algorithm,
    options: SolveOptions,
) -> Result<Solver, AnalysisError> {
    let mut span = telemetry::span(Phase::Encode, "build_solver");
    span.attr("algorithm", algorithm.to_string());
    let system = emit_system(cfg, algorithm)?;
    let mut solver = Solver::with_options(system, options)?;
    install_templates(&mut solver, cfg, targets)?;
    Ok(solver)
}

/// Checks whether any pc in `targets` is reachable, using `algorithm` and
/// the default solver options.
///
/// # Errors
///
/// Propagates generation, encoding and evaluation errors.
pub fn check_reachability(
    cfg: &Cfg,
    targets: &[Pc],
    algorithm: Algorithm,
) -> Result<AnalysisResult, AnalysisError> {
    check_reachability_with(cfg, targets, algorithm, SolveOptions::default())
}

/// As [`check_reachability`], with explicit solver options.
///
/// # Errors
///
/// Propagates generation, encoding and evaluation errors.
pub fn check_reachability_with(
    cfg: &Cfg,
    targets: &[Pc],
    algorithm: Algorithm,
    options: SolveOptions,
) -> Result<AnalysisResult, AnalysisError> {
    let t0 = Instant::now();
    let mut solver = build_solver_with(cfg, targets, algorithm, options)?;
    let encode_time = t0.elapsed();
    let t1 = Instant::now();
    let reachable = solver.eval_query("reach")?;
    let solve_time = t1.elapsed();
    let rel = algorithm.main_relation();
    let stats = solver.stats().clone();
    let main = stats.relations.get(rel).cloned().unwrap_or_default();
    Ok(AnalysisResult {
        reachable,
        summary_nodes: main.final_nodes,
        iterations: main.iterations,
        reevaluations: stats.total_reevaluations(),
        solve_time,
        encode_time,
        algorithm,
        stats,
    })
}

/// Checks reachability of a named label.
///
/// # Errors
///
/// [`AnalysisError::NoSuchTarget`] when the label does not exist, plus the
/// usual generation/evaluation errors.
pub fn check_label(
    cfg: &Cfg,
    label: &str,
    algorithm: Algorithm,
) -> Result<AnalysisResult, AnalysisError> {
    let pc = cfg.label(label).ok_or_else(|| AnalysisError::NoSuchTarget(label.to_string()))?;
    check_reachability(cfg, &[pc], algorithm)
}
