//! Differential testing: every symbolic algorithm must agree with the
//! explicit-state oracle on every program, reachable or not.
//!
//! This is the workspace's primary correctness argument: four independent
//! fixed-point formulations (simple summaries, naive EF, split EF, EFopt)
//! evaluated through the generic solver, checked pointwise against a
//! dead-simple explicit worklist engine.

use getafix_boolprog::{explicit_reachable, parse_program, Cfg, Pc};
use getafix_core::{build_solver_with, check_reachability, Algorithm};
use getafix_mucalc::{SolveOptions, Strategy};

/// Runs `algo` under one strategy and returns (verdict, the main relation's
/// interpretation as an explicit model list, total re-evaluations). The two
/// strategies use separate managers, so the interpretation is enumerated —
/// equal BDD sizes would not prove equal *sets*.
fn run_strategy(
    cfg: &Cfg,
    target: Pc,
    algo: Algorithm,
    strategy: Strategy,
) -> (bool, Vec<Vec<bool>>, usize) {
    let mut solver = build_solver_with(cfg, &[target], algo, SolveOptions::with_strategy(strategy))
        .unwrap_or_else(|e| panic!("{algo} {strategy}: {e}"));
    let verdict = solver.eval_query("reach").unwrap_or_else(|e| panic!("{algo} {strategy}: {e}"));
    let rel = algo.main_relation();
    let interp = solver.evaluate(rel).unwrap_or_else(|e| panic!("{algo} {strategy}: {e}"));
    let nparams = solver.system().relation(rel).expect("main relation").params.len();
    let mut vars = Vec::new();
    for i in 0..nparams {
        vars.extend(solver.alloc().formal(rel, i).all_vars());
    }
    let models = solver.manager().all_models(interp, &vars);
    (verdict, models, solver.stats().total_reevaluations())
}

fn verdicts_agree(src: &str, label: &str) {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    let cfg = Cfg::build(&program).unwrap_or_else(|e| panic!("build: {e}\n{src}"));
    let target = cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
    let oracle = explicit_reachable(&cfg, &[target], 5_000_000).expect("oracle").reachable;
    for algo in Algorithm::ALL {
        // Every algorithm under both solver strategies: same verdict as the
        // oracle, the same summary *set* (enumerated — variable allocation
        // is deterministic, so model vectors are comparable across the two
        // solvers), and the worklist engine never doing more work.
        let (rr_verdict, rr_set, rr_work) = run_strategy(&cfg, target, algo, Strategy::RoundRobin);
        let (wl_verdict, wl_set, wl_work) = run_strategy(&cfg, target, algo, Strategy::Worklist);
        assert_eq!(rr_verdict, oracle, "{algo} (round-robin) vs oracle\n{src}");
        assert_eq!(wl_verdict, oracle, "{algo} (worklist) vs oracle\n{src}");
        assert_eq!(rr_set, wl_set, "{algo}: strategies computed different summary sets\n{src}");
        assert!(
            wl_work <= rr_work,
            "{algo}: worklist re-evaluated more ({wl_work} > {rr_work})\n{src}"
        );
    }
}

#[test]
fn straight_line_positive() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          g := T;
          if (g) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn straight_line_negative() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          g := F;
          if (g) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn nondet_branch() {
    verdicts_agree(
        r#"
        main() begin
          decl x;
          x := *;
          if (x) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn call_return_values() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          decl x;
          x := id(T);
          if (x) then HIT: skip; fi;
        end
        id(a) returns 1 begin
          return a;
        end
        "#,
        "HIT",
    );
    verdicts_agree(
        r#"
        decl g;
        main() begin
          decl x;
          x := id(F);
          if (x) then HIT: skip; fi;
        end
        id(a) returns 1 begin
          return a;
        end
        "#,
        "HIT",
    );
}

#[test]
fn multi_return_values() {
    verdicts_agree(
        r#"
        main() begin
          decl x, y;
          x, y := swap(T, F);
          if (!x & y) then HIT: skip; fi;
        end
        swap(a, b) returns 2 begin
          return b, a;
        end
        "#,
        "HIT",
    );
}

#[test]
fn globals_across_calls() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          call set();
          if (g) then HIT: skip; fi;
        end
        set() begin
          g := T;
        end
        "#,
        "HIT",
    );
}

#[test]
fn locals_saved_across_calls() {
    verdicts_agree(
        r#"
        main() begin
          decl x;
          x := F;
          call clobber();
          if (x) then HIT: skip; fi;
        end
        clobber() begin
          decl x;
          x := T;
        end
        "#,
        "HIT",
    );
}

#[test]
fn recursion_parity() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          call rec();
          if (g) then HIT: skip; fi;
        end
        rec() begin
          if (*) then
            g := !g;
            call rec();
          fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn recursion_with_argument() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          call f(F);
          if (g) then HIT: skip; fi;
        end
        f(depth) begin
          if (!depth) then
            call f(T);
          else
            g := T;
          fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn unreachable_deep_in_recursion() {
    verdicts_agree(
        r#"
        decl g, h;
        main() begin
          g := F;
          h := F;
          call walk();
          if (g & h) then HIT: skip; fi;
        end
        walk() begin
          if (*) then
            g := T;
            h := !g;
            call walk();
          fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn while_loop_convergence() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          decl x;
          x := T;
          while (x) do
            x := *;
            g := g | !x;
          od;
          if (g) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn assume_prunes() {
    verdicts_agree(
        r#"
        main() begin
          decl x;
          x := *;
          assume (!x);
          if (x) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn schoose_semantics() {
    verdicts_agree(
        r#"
        main() begin
          decl x;
          x := schoose [F, T];
          if (x) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
    verdicts_agree(
        r#"
        main() begin
          decl x;
          x := schoose [F, F];
          if (x) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn dead_is_havoc() {
    verdicts_agree(
        r#"
        main() begin
          decl x;
          x := F;
          dead x;
          if (x) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn goto_skips_code() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          g := F;
          goto SKIP;
          g := T;
          SKIP: skip;
          if (g) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn parallel_assignment_swap() {
    verdicts_agree(
        r#"
        decl a, b;
        main() begin
          a := T;
          b := F;
          a, b := b, a;
          if (!a & b) then HIT: skip; fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn mutual_recursion() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          call even();
          if (g) then HIT: skip; fi;
        end
        even() begin
          if (*) then call odd(); fi;
        end
        odd() begin
          g := T;
          if (*) then call even(); fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn return_value_from_global_context() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          decl x;
          g := T;
          x := readg();
          g := F;
          if (x & !g) then HIT: skip; fi;
        end
        readg() returns 1 begin
          return g;
        end
        "#,
        "HIT",
    );
}

#[test]
fn callee_modifies_global_and_returns() {
    verdicts_agree(
        r#"
        decl g;
        main() begin
          decl x;
          x := flip();
          if (x = g) then HIT: skip; fi;
        end
        flip() returns 1 begin
          g := !g;
          return !g;
        end
        "#,
        "HIT",
    );
}

// ---------------------------------------------------------------------------
// Randomized differential testing with a small seeded program generator.
// ---------------------------------------------------------------------------

/// A tiny xorshift generator so the corpus is deterministic without
/// depending on rand's stability guarantees.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn rand_expr(rng: &mut Rng, vars: &[&str], depth: usize) -> String {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(4) {
            0 => "T".to_string(),
            1 => "F".to_string(),
            2 => "*".to_string(),
            _ => vars[rng.below(vars.len() as u64) as usize].to_string(),
        };
    }
    match rng.below(4) {
        0 => format!("!({})", rand_expr(rng, vars, depth - 1)),
        1 => format!("({} & {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
        2 => format!("({} | {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
        _ => format!("({} = {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
    }
}

fn rand_stmts(rng: &mut Rng, vars: &[&str], budget: &mut usize, depth: usize) -> String {
    let mut out = String::new();
    let n = 1 + rng.below(3);
    for _ in 0..n {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let choice = if depth == 0 { rng.below(3) } else { rng.below(6) };
        match choice {
            0 | 1 => {
                let target = vars[rng.below(vars.len() as u64) as usize];
                out.push_str(&format!("{target} := {};\n", rand_expr(rng, vars, 2)));
            }
            2 => {
                let v = vars[rng.below(vars.len() as u64) as usize];
                out.push_str(&format!("{v} := helper({});\n", rand_expr(rng, vars, 1)));
            }
            3 => {
                out.push_str(&format!(
                    "if ({}) then\n{}else\n{}fi;\n",
                    rand_expr(rng, vars, 2),
                    rand_stmts(rng, vars, budget, depth - 1),
                    rand_stmts(rng, vars, budget, depth - 1)
                ));
            }
            4 => {
                // A while loop whose condition eventually can fail.
                out.push_str(&format!(
                    "while ({} & *) do\n{}od;\n",
                    rand_expr(rng, vars, 1),
                    rand_stmts(rng, vars, budget, depth - 1)
                ));
            }
            _ => {
                out.push_str("call toggle();\n");
            }
        }
    }
    if out.is_empty() {
        out.push_str("skip;\n");
    }
    out
}

#[test]
fn randomized_programs_agree() {
    // 25 seeded random programs; every algorithm must match the oracle.
    for seed in 1..=25u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let vars = ["g0", "g1", "x", "y"];
        let mut budget = 12usize;
        let body = rand_stmts(&mut rng, &vars, &mut budget, 2);
        let guard = rand_expr(&mut rng, &["g0", "g1"], 2);
        let src = format!(
            r#"
            decl g0, g1;
            main() begin
              decl x, y;
              {body}
              if ({guard}) then HIT: skip; fi;
            end
            helper(a) returns 1 begin
              if (*) then g0 := a; fi;
              return !a;
            end
            toggle() begin
              g1 := !g1;
              if (*) then call toggle(); fi;
            end
            "#
        );
        verdicts_agree(&src, "HIT");
    }
}

#[test]
fn summary_nodes_consistent_across_ef_variants() {
    // Theorem 2: EF and EFopt compute the same summary set, so the final
    // BDD sizes coincide (Figure 2 reports a single #Nodes column).
    let src = r#"
        decl g;
        main() begin
          decl x;
          x := *;
          g := f(x);
          if (g & x) then HIT: skip; fi;
        end
        f(a) returns 1 begin
          if (a) then
            g := !g;
          fi;
          return g | a;
        end
    "#;
    let program = parse_program(src).unwrap();
    let cfg = Cfg::build(&program).unwrap();
    let target = cfg.label("HIT").unwrap();
    // Disable early termination effects by comparing only on the negative
    // query (unreachable target forces full fixpoints).
    let r_ef = check_reachability(&cfg, &[cfg.pc_count - 1], Algorithm::EntryForward).unwrap();
    let r_naive =
        check_reachability(&cfg, &[cfg.pc_count - 1], Algorithm::EntryForwardNaive).unwrap();
    assert_eq!(r_ef.reachable, r_naive.reachable);
    // Positive case must agree across all.
    let oracle = explicit_reachable(&cfg, &[target], 1_000_000).unwrap().reachable;
    for algo in Algorithm::ALL {
        assert_eq!(check_reachability(&cfg, &[target], algo).unwrap().reachable, oracle);
    }
}

#[test]
fn mid_stratum_gc_is_transparent_to_the_ordered_schedule() {
    // ef-opt runs the non-monotone ordered change-driven schedule; a
    // 0-node threshold forces a collection after every outer round, with
    // the per-disjunct version-keyed caches registered as live roots and
    // remapped. The verdict, the summary *set* and the amount of work must
    // all be identical to the no-GC run.
    let src = r#"
        decl g;
        main() begin
          call rec();
          if (g) then HIT: skip; fi;
        end
        rec() begin
          if (*) then
            g := !g;
            call rec();
          fi;
        end
    "#;
    let program = parse_program(src).unwrap();
    let cfg = Cfg::build(&program).unwrap();
    let target = cfg.label("HIT").unwrap();
    let run = |gc_threshold: Option<usize>| {
        let options = SolveOptions { gc_threshold, ..SolveOptions::new() };
        let mut solver =
            build_solver_with(&cfg, &[target], Algorithm::EntryForwardOpt, options).unwrap();
        let verdict = solver.eval_query("reach").unwrap();
        let rel = Algorithm::EntryForwardOpt.main_relation();
        let interp = solver.evaluate(rel).unwrap();
        let nparams = solver.system().relation(rel).expect("main relation").params.len();
        let mut vars = Vec::new();
        for i in 0..nparams {
            vars.extend(solver.alloc().formal(rel, i).all_vars());
        }
        let models = solver.manager().all_models(interp, &vars);
        let reevals = solver.stats().total_reevaluations();
        let gcs = solver.stats().gcs;
        (verdict, models, reevals, gcs)
    };
    let (v_gc, set_gc, work_gc, gcs) = run(Some(0));
    let (v_no, set_no, work_no, no_gcs) = run(None);
    assert_eq!(v_gc, v_no);
    assert_eq!(set_gc, set_no, "summary set must be bit-identical to the no-GC run");
    assert_eq!(work_gc, work_no, "remapped disjunct caches must still hit");
    assert!(gcs > 0, "a 0-node threshold must force collections");
    assert_eq!(no_gcs, 0);
}
