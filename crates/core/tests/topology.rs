//! Differential testing of the solve-topology report: the DOT and JSON
//! renderings of [`SolveStats`] must agree — component for component,
//! edge for edge — with the [`DepGraph`] the solver actually scheduled
//! from, on real encoded programs under every algorithm.

use getafix_boolprog::{parse_program, Cfg};
use getafix_core::{build_solver_with, Algorithm};
use getafix_mucalc::{check_depgraph_dot, depgraph_dot, depgraph_json, SolveOptions};
use getafix_telemetry::json::{parse, Value};
use std::collections::BTreeSet;

const PROGRAMS: [(&str, &str); 3] = [
    (
        "branchy",
        r#"
        decl g;
        main() begin
          decl x;
          x := *;
          g := x;
          if (g) then HIT: skip; fi;
        end
        "#,
    ),
    (
        "call-chain",
        r#"
        decl g;
        main() begin
          decl x;
          x := id(T);
          if (x) then HIT: skip; fi;
        end
        id(a) returns 1 begin
          return a;
        end
        "#,
    ),
    (
        "recursive",
        r#"
        decl g;
        main() begin
          g := F;
          call flip();
          if (g) then HIT: skip; fi;
        end
        flip() begin
          if (*) then g := !g; call flip(); fi;
        end
        "#,
    ),
];

#[test]
fn topology_report_agrees_with_the_dep_graph() {
    for (name, src) in PROGRAMS {
        let program = parse_program(src).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let cfg = Cfg::build(&program).unwrap_or_else(|e| panic!("{name}: build: {e}"));
        let target = cfg.label("HIT").expect("HIT label");
        for algo in Algorithm::ALL {
            let mut solver =
                build_solver_with(&cfg, &[target], algo, SolveOptions::default()).unwrap();
            solver.eval_query("reach").unwrap_or_else(|e| panic!("{name}/{algo}: {e}"));

            // Ground truth, re-derived from the dependency graph itself:
            // member names per SCC and the SCC-level edge set.
            let deps = solver.deps();
            let truth_members: Vec<BTreeSet<String>> = deps
                .sccs()
                .iter()
                .map(|scc| scc.members.iter().map(|&i| deps.name(i).to_string()).collect())
                .collect();
            let truth_edges: Vec<BTreeSet<usize>> = deps
                .sccs()
                .iter()
                .enumerate()
                .map(|(i, scc)| {
                    scc.external_deps.iter().map(|&r| deps.scc_of(r)).filter(|&s| s != i).collect()
                })
                .collect();

            let stats = solver.stats();
            let dot = depgraph_dot(stats);
            check_depgraph_dot(&dot, truth_members.len())
                .unwrap_or_else(|e| panic!("{name}/{algo}: invalid DOT: {e}\n{dot}"));
            for (i, edges) in truth_edges.iter().enumerate() {
                for &d in edges {
                    assert!(
                        dot.contains(&format!("scc{i} -> scc{d};")),
                        "{name}/{algo}: missing edge scc{i} -> scc{d}\n{dot}"
                    );
                }
            }

            let v = parse(&depgraph_json(stats))
                .unwrap_or_else(|e| panic!("{name}/{algo}: bad JSON: {e}"));
            assert_eq!(
                v.get("scc_count").and_then(Value::as_f64),
                Some(truth_members.len() as f64),
                "{name}/{algo}"
            );
            let rows = v.get("sccs").and_then(Value::as_array).expect("sccs array");
            assert_eq!(rows.len(), truth_members.len(), "{name}/{algo}");
            for (i, row) in rows.iter().enumerate() {
                let members: BTreeSet<String> = row
                    .get("members")
                    .and_then(Value::as_array)
                    .expect("members")
                    .iter()
                    .map(|m| m.as_str().expect("member name").to_string())
                    .collect();
                assert_eq!(members, truth_members[i], "{name}/{algo}: scc {i} members");
                let edges: BTreeSet<usize> = row
                    .get("deps")
                    .and_then(Value::as_array)
                    .expect("deps")
                    .iter()
                    .map(|d| d.as_f64().expect("dep index") as usize)
                    .collect();
                assert_eq!(edges, truth_edges[i], "{name}/{algo}: scc {i} edges");
                let schedule =
                    row.get("schedule").and_then(Value::as_str).expect("schedule").to_string();
                assert!(
                    ["once", "chaotic", "ordered", "nested"].contains(&schedule.as_str()),
                    "{name}/{algo}: unknown schedule {schedule}"
                );
            }
        }
    }
}
