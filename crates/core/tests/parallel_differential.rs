//! 1-vs-N determinism: solving with a worker pool must be *observably
//! identical* to the sequential solver — not just the verdict, but the
//! summary sets and the per-relation re-evaluation counts, bit for bit.
//!
//! The argument the suite checks: every worker builds the same variable
//! universe (allocation is deterministic), wave joins re-canonicalize
//! shipped BDDs through the coordinator's `mk` (a known function lands on
//! the existing handle), and every SCC schedule is a deterministic
//! function of BDD equality — so job count can change only wall-clock and
//! kernel cache/arena counters. Cross-manager equality is checked the
//! strong way: the parallel solver's summary is exported, imported into
//! the sequential solver's manager, and must collide with the sequential
//! summary's *handle*.

use getafix_boolprog::{parse_program, Cfg, Pc};
use getafix_core::{build_solver_with, Algorithm};
use getafix_mucalc::{Bdd, SolveOptions, Solver, Strategy};
use std::collections::BTreeMap;

/// Solves under the worklist strategy at the given job count and returns
/// (verdict, summary model list, per-relation re-eval counts, summary
/// handle, the solver — kept alive so its manager can export/import).
fn run(
    cfg: &Cfg,
    target: Pc,
    algo: Algorithm,
    jobs: usize,
) -> (bool, Vec<Vec<bool>>, BTreeMap<String, usize>, Bdd, Solver) {
    let options = SolveOptions { jobs, ..SolveOptions::with_strategy(Strategy::Worklist) };
    let mut solver = build_solver_with(cfg, &[target], algo, options)
        .unwrap_or_else(|e| panic!("{algo} jobs={jobs}: {e}"));
    let verdict = solver.eval_query("reach").unwrap_or_else(|e| panic!("{algo} jobs={jobs}: {e}"));
    let rel = algo.main_relation();
    let interp = solver.evaluate(rel).unwrap_or_else(|e| panic!("{algo} jobs={jobs}: {e}"));
    let nparams = solver.system().relation(rel).expect("main relation").params.len();
    let mut vars = Vec::new();
    for i in 0..nparams {
        vars.extend(solver.alloc().formal(rel, i).all_vars());
    }
    let models = solver.manager().all_models(interp, &vars);
    let counts: BTreeMap<String, usize> =
        solver.stats().relations.iter().map(|(n, r)| (n.clone(), r.reevaluations)).collect();
    (verdict, models, counts, interp, solver)
}

/// Runs every algorithm at jobs ∈ {1, 2, 4} and asserts the determinism
/// contract between the sequential and each parallel run.
fn jobs_agree(src: &str, label: &str) {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    let cfg = Cfg::build(&program).unwrap_or_else(|e| panic!("build: {e}\n{src}"));
    let target = cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
    for algo in Algorithm::ALL {
        let (v1, set1, counts1, interp1, mut seq) = run(&cfg, target, algo, 1);
        for jobs in [2usize, 4] {
            let (v, set, counts, interp, par) = run(&cfg, target, algo, jobs);
            assert_eq!(v, v1, "{algo} jobs={jobs}: verdict diverged\n{src}");
            assert_eq!(set, set1, "{algo} jobs={jobs}: summary set diverged\n{src}");
            assert_eq!(
                counts, counts1,
                "{algo} jobs={jobs}: per-relation re-evaluation counts diverged\n{src}"
            );
            // The strong cross-manager check: shipping the parallel
            // summary into the sequential manager must re-canonicalize to
            // the sequential run's exact handle.
            let pkg = par.manager_ref().export(&[interp]);
            let moved = seq.manager().import(&pkg);
            assert_eq!(
                moved[0], interp1,
                "{algo} jobs={jobs}: imported summary is a different function\n{src}"
            );
        }
    }
}

#[test]
fn independent_procedures_fan_out() {
    // Four call-independent procedures — the widest wave the scheduler
    // sees in this corpus: with jobs > 1 their summary strata genuinely
    // solve on different workers.
    jobs_agree(
        r#"
        decl g0, g1;
        main() begin
          decl a, b, c, d;
          a := f0(T);
          b := f1(a);
          c := f2(b);
          d := f3(c);
          if (d & g0 & !g1) then HIT: skip; fi;
        end
        f0(x) returns 1 begin g0 := x; return !x; end
        f1(x) returns 1 begin if (*) then g1 := x; fi; return x | g0; end
        f2(x) returns 1 begin return x = g1; end
        f3(x) returns 1 begin g0 := g0 | x; return !x; end
        "#,
        "HIT",
    );
}

#[test]
fn recursive_and_mutually_recursive_strata() {
    jobs_agree(
        r#"
        decl g;
        main() begin
          call even();
          call rec();
          if (g) then HIT: skip; fi;
        end
        even() begin
          if (*) then call odd(); fi;
        end
        odd() begin
          if (*) then call even(); fi;
        end
        rec() begin
          if (*) then
            g := !g;
            call rec();
          fi;
        end
        "#,
        "HIT",
    );
}

#[test]
fn negative_verdict_full_fixpoint() {
    // Unreachable target: no early exit, every stratum runs to its full
    // fixpoint — the heaviest determinism surface.
    jobs_agree(
        r#"
        decl g, h;
        main() begin
          g := F;
          h := F;
          call walk();
          if (g & h) then HIT: skip; fi;
        end
        walk() begin
          if (*) then
            g := T;
            h := !g;
            call walk();
          fi;
        end
        "#,
        "HIT",
    );
}

// ---------------------------------------------------------------------------
// Seeded random corpus — same generator family as tests/differential.rs,
// biased toward several helper procedures so the dependency DAG has
// genuinely parallel waves.
// ---------------------------------------------------------------------------

/// Deterministic xorshift; no dependence on rand's stability guarantees.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn rand_expr(rng: &mut Rng, vars: &[&str], depth: usize) -> String {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(4) {
            0 => "T".to_string(),
            1 => "F".to_string(),
            2 => "*".to_string(),
            _ => vars[rng.below(vars.len() as u64) as usize].to_string(),
        };
    }
    match rng.below(4) {
        0 => format!("!({})", rand_expr(rng, vars, depth - 1)),
        1 => format!("({} & {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
        2 => format!("({} | {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
        _ => format!("({} = {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
    }
}

fn rand_stmts(rng: &mut Rng, vars: &[&str], budget: &mut usize, depth: usize) -> String {
    let mut out = String::new();
    let n = 1 + rng.below(3);
    for _ in 0..n {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let choice = if depth == 0 { rng.below(4) } else { rng.below(6) };
        match choice {
            0 | 1 => {
                let target = vars[rng.below(vars.len() as u64) as usize];
                out.push_str(&format!("{target} := {};\n", rand_expr(rng, vars, 2)));
            }
            2 => {
                let v = vars[rng.below(vars.len() as u64) as usize];
                let h = rng.below(3);
                out.push_str(&format!("{v} := helper{h}({});\n", rand_expr(rng, vars, 1)));
            }
            3 => {
                out.push_str("call toggle();\n");
            }
            4 => {
                out.push_str(&format!(
                    "if ({}) then\n{}else\n{}fi;\n",
                    rand_expr(rng, vars, 2),
                    rand_stmts(rng, vars, budget, depth - 1),
                    rand_stmts(rng, vars, budget, depth - 1)
                ));
            }
            _ => {
                out.push_str(&format!(
                    "while ({} & *) do\n{}od;\n",
                    rand_expr(rng, vars, 1),
                    rand_stmts(rng, vars, budget, depth - 1)
                ));
            }
        }
    }
    if out.is_empty() {
        out.push_str("skip;\n");
    }
    out
}

#[test]
fn randomized_programs_deterministic_across_job_counts() {
    for seed in 1..=10u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let vars = ["g0", "g1", "x", "y"];
        let mut budget = 12usize;
        let body = rand_stmts(&mut rng, &vars, &mut budget, 2);
        let guard = rand_expr(&mut rng, &["g0", "g1"], 2);
        let src = format!(
            r#"
            decl g0, g1;
            main() begin
              decl x, y;
              {body}
              if ({guard}) then HIT: skip; fi;
            end
            helper0(a) returns 1 begin
              if (*) then g0 := a; fi;
              return !a;
            end
            helper1(a) returns 1 begin
              return a | g1;
            end
            helper2(a) returns 1 begin
              g1 := g1 = a;
              return *;
            end
            toggle() begin
              g1 := !g1;
              if (*) then call toggle(); fi;
            end
            "#
        );
        jobs_agree(&src, "HIT");
    }
}
