//! A small, fast, non-cryptographic hasher for the unique table and the
//! operation caches.
//!
//! The workloads hash billions of fixed-width keys (node triples, operation
//! tags); `std`'s SipHash is needlessly defensive for an in-process cache, so
//! we use an FxHash-style multiply-xor hasher. No external dependencies.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash / Firefox hasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher over machine words.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn distinct_keys_hash_differently() {
        // Not a guarantee in general, but these must not collide for the
        // hasher to be remotely useful.
        let a = hash_of(&(1u32, 2u32, 3u32));
        let b = hash_of(&(1u32, 3u32, 2u32));
        let c = hash_of(&(3u32, 2u32, 1u32));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn equal_keys_hash_equally() {
        assert_eq!(hash_of(&(7u32, 8u32)), hash_of(&(7u32, 8u32)));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i.wrapping_mul(31)), i);
        }
        for i in 0..1000u32 {
            assert_eq!(map.get(&(i, i.wrapping_mul(31))), Some(&i));
        }
    }
}
