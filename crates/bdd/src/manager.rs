//! The node arena, unique table and core Boolean operations.

use crate::cache::{BinOp, Caches};
use crate::hasher::FxHashMap;

/// A BDD variable, identified by its *level* in the (fixed) variable order.
///
/// Lower levels are tested first. Levels are dense `u32`s handed out by
/// [`Manager::new_var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The level of this variable in the global order.
    #[inline]
    pub fn level(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A handle to a BDD node owned by a [`Manager`].
///
/// Handles are cheap to copy and compare; canonicity of the underlying arena
/// guarantees that two handles are equal iff they denote the same Boolean
/// function. A handle is only meaningful together with the manager that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// Is this the constant-false function?
    #[inline]
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Is this the constant-true function?
    #[inline]
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Is this either constant?
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The raw arena index. Exposed for debugging and for stable map keys.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Level assigned to the two terminal nodes: strictly below every variable.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// An interior (or terminal) node of the shared DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: u32,
    pub hi: u32,
}

/// Counters describing the health of a [`Manager`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ManagerStats {
    /// Total nodes currently in the arena (including the two terminals).
    pub nodes: usize,
    /// Number of distinct variables created so far.
    pub vars: usize,
    /// Hits across all operation caches since the last reset.
    pub cache_hits: u64,
    /// Misses across all operation caches since the last reset.
    pub cache_misses: u64,
    /// Number of garbage collections performed.
    pub gcs: u64,
    /// Peak arena size ever observed (in nodes).
    pub peak_nodes: usize,
}

/// A BDD manager: owns the node arena, the unique table and the operation
/// caches. All operations that build or inspect nodes go through a manager.
///
/// # Example
///
/// ```
/// use getafix_bdd::Manager;
/// let mut m = Manager::new();
/// let a = m.new_var();
/// let b = m.new_var();
/// let fa = m.var(a);
/// let fb = m.var(b);
/// let f = m.or(fa, fb);
/// let g = m.not(f);
/// let h = m.and(g, fa); // ¬(a ∨ b) ∧ a  ==  false
/// assert!(h.is_false());
/// ```
#[derive(Debug)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: FxHashMap<Node, u32>,
    pub(crate) caches: Caches,
    pub(crate) num_vars: u32,
    pub(crate) stats: ManagerStats,
    pub(crate) map_registry: crate::rename::MapRegistry,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager with just the two terminal nodes.
    pub fn new() -> Self {
        let nodes = vec![
            // FALSE terminal
            Node { var: TERMINAL_LEVEL, lo: 0, hi: 0 },
            // TRUE terminal
            Node { var: TERMINAL_LEVEL, lo: 1, hi: 1 },
        ];
        Manager {
            nodes,
            unique: FxHashMap::default(),
            caches: Caches::default(),
            num_vars: 0,
            stats: ManagerStats { nodes: 2, peak_nodes: 2, ..ManagerStats::default() },
            map_registry: crate::rename::MapRegistry::default(),
        }
    }

    /// Allocates a fresh variable at the next level of the order.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        self.stats.vars = self.num_vars as usize;
        v
    }

    /// Allocates `n` fresh consecutive variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables created so far.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.num_vars as usize
    }

    /// A snapshot of the manager's counters.
    pub fn stats(&self) -> ManagerStats {
        let mut s = self.stats;
        s.nodes = self.nodes.len();
        s.cache_hits = self.caches.hits;
        s.cache_misses = self.caches.misses;
        s
    }

    /// The variable tested at the root of `f`.
    ///
    /// Returns `None` for the constant functions.
    pub fn root_var(&self, f: Bdd) -> Option<Var> {
        let n = self.nodes[f.0 as usize];
        if n.var == TERMINAL_LEVEL {
            None
        } else {
            Some(Var(n.var))
        }
    }

    /// The low (else) cofactor of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn lo(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "lo() on a terminal");
        Bdd(self.nodes[f.0 as usize].lo)
    }

    /// The high (then) cofactor of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn hi(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "hi() on a terminal");
        Bdd(self.nodes[f.0 as usize].hi)
    }

    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// The canonical node constructor: reduces and hash-conses.
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        debug_assert!(var < self.level(lo) && var < self.level(hi), "order violation in mk");
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo: lo.0, hi: hi.0 };
        if let Some(&idx) = self.unique.get(&node) {
            return Bdd(idx);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        self.unique.insert(node, idx);
        if self.nodes.len() > self.stats.peak_nodes {
            self.stats.peak_nodes = self.nodes.len();
        }
        Bdd(idx)
    }

    /// The constant function for `value`.
    #[inline]
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// The projection function of variable `v` (i.e. the literal `v`).
    pub fn var(&mut self, v: Var) -> Bdd {
        self.mk(v.0, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated literal `¬v`.
    pub fn nvar(&mut self, v: Var) -> Bdd {
        self.mk(v.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// The literal `v` or `¬v` depending on `positive`.
    pub fn literal(&mut self, v: Var, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// Negation `¬f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if f.is_true() {
            return Bdd::FALSE;
        }
        if f.is_false() {
            return Bdd::TRUE;
        }
        if let Some(r) = self.caches.not_get(f) {
            return r;
        }
        let n = self.nodes[f.0 as usize];
        let lo = self.not(Bdd(n.lo));
        let hi = self.not(Bdd(n.hi));
        let r = self.mk(n.var, lo, hi);
        self.caches.not_put(f, r);
        // Negation is an involution; prime the reverse direction too.
        self.caches.not_put(r, f);
        r
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(BinOp::And, f, g)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(BinOp::Or, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(BinOp::Xor, f, g)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Shannon-expansion based binary apply with memoization.
    pub(crate) fn apply(&mut self, op: BinOp, mut f: Bdd, mut g: Bdd) -> Bdd {
        // Terminal rules.
        match op {
            BinOp::And => {
                if f.is_false() || g.is_false() {
                    return Bdd::FALSE;
                }
                if f.is_true() {
                    return g;
                }
                if g.is_true() || f == g {
                    return f;
                }
            }
            BinOp::Or => {
                if f.is_true() || g.is_true() {
                    return Bdd::TRUE;
                }
                if f.is_false() {
                    return g;
                }
                if g.is_false() || f == g {
                    return f;
                }
            }
            BinOp::Xor => {
                if f == g {
                    return Bdd::FALSE;
                }
                if f.is_false() {
                    return g;
                }
                if g.is_false() {
                    return f;
                }
                if f.is_true() {
                    return self.not(g);
                }
                if g.is_true() {
                    return self.not(f);
                }
            }
        }
        // Commutative: normalize operand order for better cache hit rates.
        if f.0 > g.0 {
            std::mem::swap(&mut f, &mut g);
        }
        if let Some(r) = self.caches.binop_get(op, f, g) {
            return r;
        }
        let (fv, gv) = (self.level(f), self.level(g));
        let var = fv.min(gv);
        let (f0, f1) = if fv == var {
            let n = self.nodes[f.0 as usize];
            (Bdd(n.lo), Bdd(n.hi))
        } else {
            (f, f)
        };
        let (g0, g1) = if gv == var {
            let n = self.nodes[g.0 as usize];
            (Bdd(n.lo), Bdd(n.hi))
        } else {
            (g, g)
        };
        let lo = self.apply(op, f0, g0);
        let hi = self.apply(op, f1, g1);
        let r = self.mk(var, lo, hi);
        self.caches.binop_put(op, f, g, r);
        r
    }

    /// If-then-else `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal simplifications.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return self.not(f);
        }
        if let Some(r) = self.caches.ite_get(f, g, h) {
            return r;
        }
        let var = self.level(f).min(self.level(g)).min(self.level(h));
        let cof = |m: &Manager, x: Bdd| -> (Bdd, Bdd) {
            if m.level(x) == var {
                let n = m.nodes[x.0 as usize];
                (Bdd(n.lo), Bdd(n.hi))
            } else {
                (x, x)
            }
        };
        let (f0, f1) = cof(self, f);
        let (g0, g1) = cof(self, g);
        let (h0, h1) = cof(self, h);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(var, lo, hi);
        self.caches.ite_put(f, g, h, r);
        r
    }

    /// The positive cofactor of `f` with variable `v` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, v: Var, value: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        let fl = self.level(f);
        if fl > v.0 {
            // v does not occur in f (it is below the root in the order).
            return f;
        }
        if let Some(r) = self.caches.restrict_get(f, v, value) {
            return r;
        }
        let n = self.nodes[f.0 as usize];
        let r = if fl == v.0 {
            if value {
                Bdd(n.hi)
            } else {
                Bdd(n.lo)
            }
        } else {
            let lo = self.restrict(Bdd(n.lo), v, value);
            let hi = self.restrict(Bdd(n.hi), v, value);
            self.mk(n.var, lo, hi)
        };
        self.caches.restrict_put(f, v, value, r);
        r
    }

    /// Evaluates `f` under a total assignment: `assignment[i]` is the value of
    /// the variable at level `i`. Variables at levels beyond the slice length
    /// are treated as `false`.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur.is_true() {
                return true;
            }
            if cur.is_false() {
                return false;
            }
            let n = self.nodes[cur.0 as usize];
            let val = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = if val { Bdd(n.hi) } else { Bdd(n.lo) };
        }
    }

    /// Number of satisfying assignments of `f` over `nvars` variables
    /// (levels `0..nvars`), as an `f64` (exact up to 2^53).
    ///
    /// Counts are computed with the standard level-relative recurrence: the
    /// count at a node is taken over the variable space *at or below* its
    /// level, with terminals conceptually at level `nvars`.
    ///
    /// # Panics
    ///
    /// Panics if `f` mentions a variable at level ≥ `nvars`.
    pub fn sat_count(&self, f: Bdd, nvars: usize) -> f64 {
        let n = nvars as u32;
        let mut memo: FxHashMap<u32, f64> = FxHashMap::default();
        let total = self.count_rec(f, n, &mut memo);
        let root = self.clamped_level(f, n);
        total * 2f64.powi(root as i32)
    }

    /// The level of `f`, with terminals mapped to `nvars`.
    fn clamped_level(&self, f: Bdd, nvars: u32) -> u32 {
        let l = self.level(f);
        if l == TERMINAL_LEVEL {
            nvars
        } else {
            assert!(l < nvars, "sat_count: variable level {l} outside 0..{nvars}");
            l
        }
    }

    /// Satisfying-assignment count of `f` over levels `level(f)..nvars`.
    fn count_rec(&self, f: Bdd, nvars: u32, memo: &mut FxHashMap<u32, f64>) -> f64 {
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        if let Some(&c) = memo.get(&f.0) {
            return c;
        }
        let n = self.nodes[f.0 as usize];
        let lo = Bdd(n.lo);
        let hi = Bdd(n.hi);
        let lo_gap = self.clamped_level(lo, nvars) - n.var - 1;
        let hi_gap = self.clamped_level(hi, nvars) - n.var - 1;
        let c = self.count_rec(lo, nvars, memo) * 2f64.powi(lo_gap as i32)
            + self.count_rec(hi, nvars, memo) * 2f64.powi(hi_gap as i32);
        memo.insert(f.0, c);
        c
    }

    /// The number of nodes in the DAG rooted at `f` (including terminals).
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            count += 1;
            if i > 1 {
                let n = self.nodes[i as usize];
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        count
    }

    /// The number of distinct DAG nodes reachable from any of `roots`
    /// (shared structure counted once, terminals included). This is the
    /// honest memory footprint of a *set* of functions — summing
    /// [`Manager::node_count`] per root would double-count shared subgraphs.
    pub fn node_count_many(&self, roots: &[Bdd]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<u32> = roots.iter().map(|r| r.0).collect();
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            count += 1;
            if i > 1 {
                let n = self.nodes[i as usize];
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        count
    }

    /// The set of variables appearing in `f`, in increasing level order.
    pub fn support(&self, f: Bdd) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if i <= 1 || !seen.insert(i) {
                continue;
            }
            let n = self.nodes[i as usize];
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().map(Var).collect()
    }

    /// Picks one satisfying assignment of `f`, if any, as a vector of
    /// `(variable, value)` pairs mentioning exactly the variables on the
    /// chosen path.
    pub fn pick_one(&self, f: Bdd) -> Option<Vec<(Var, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            if Bdd(n.hi) != Bdd::FALSE {
                path.push((Var(n.var), true));
                cur = Bdd(n.hi);
            } else {
                path.push((Var(n.var), false));
                cur = Bdd(n.lo);
            }
        }
        debug_assert!(cur.is_true());
        Some(path)
    }

    /// Clears all operation caches (but keeps the arena).
    pub fn clear_caches(&mut self) {
        self.caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let m = Manager::new();
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_false());
        assert_eq!(m.stats().nodes, 2);
    }

    #[test]
    fn literal_structure() {
        let mut m = Manager::new();
        let v = m.new_var();
        let f = m.var(v);
        assert_eq!(m.root_var(f), Some(v));
        assert_eq!(m.lo(f), Bdd::FALSE);
        assert_eq!(m.hi(f), Bdd::TRUE);
        let g = m.nvar(v);
        assert_eq!(m.lo(g), Bdd::TRUE);
        assert_eq!(m.hi(g), Bdd::FALSE);
    }

    #[test]
    fn hash_consing_canonical() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let f1 = m.and(fa, fb);
        let f2 = m.and(fb, fa);
        assert_eq!(f1, f2, "AND must be canonical irrespective of operand order");
        let g1 = m.or(fa, fb);
        let ng = m.not(g1);
        let nng = m.not(ng);
        assert_eq!(g1, nng, "double negation is identity");
    }

    #[test]
    fn de_morgan() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let and = m.and(fa, fb);
        let nand = m.not(and);
        let na = m.not(fa);
        let nb = m.not(fb);
        let or = m.or(na, nb);
        assert_eq!(nand, or);
    }

    #[test]
    fn ite_equals_definition() {
        let mut m = Manager::new();
        let vars: Vec<_> = (0..3).map(|_| m.new_var()).collect();
        let f = m.var(vars[0]);
        let g = m.var(vars[1]);
        let h = m.var(vars[2]);
        let ite = m.ite(f, g, h);
        let fg = m.and(f, g);
        let nf = m.not(f);
        let nfh = m.and(nf, h);
        let expect = m.or(fg, nfh);
        assert_eq!(ite, expect);
    }

    #[test]
    fn xor_truth_table() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let x = m.xor(fa, fb);
        assert!(!m.eval(x, &[false, false]));
        assert!(m.eval(x, &[true, false]));
        assert!(m.eval(x, &[false, true]));
        assert!(!m.eval(x, &[true, true]));
    }

    #[test]
    fn restrict_shannon() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let f = m.xor(fa, fb);
        let f_a1 = m.restrict(f, a, true);
        let nb = m.not(fb);
        assert_eq!(f_a1, nb);
        let f_a0 = m.restrict(f, a, false);
        assert_eq!(f_a0, fb);
    }

    #[test]
    fn sat_count_small() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let fc = m.var(c);
        let f = m.or(fa, fb);
        // over 3 vars: (a|b) has 6 models
        assert_eq!(m.sat_count(f, 3), 6.0);
        let g = m.and(f, fc);
        assert_eq!(m.sat_count(g, 3), 3.0);
        assert_eq!(m.sat_count(Bdd::TRUE, 3), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE, 3), 0.0);
    }

    #[test]
    fn support_and_node_count() {
        let mut m = Manager::new();
        let a = m.new_var();
        let _skip = m.new_var();
        let c = m.new_var();
        let fa = m.var(a);
        let fc = m.var(c);
        let f = m.and(fa, fc);
        assert_eq!(m.support(f), vec![a, c]);
        // nodes: a-node, c-node, TRUE, FALSE
        assert_eq!(m.node_count(f), 4);
    }

    #[test]
    fn pick_one_satisfies() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let nb = m.nvar(b);
        let f = m.and(fa, nb);
        let model = m.pick_one(f).expect("satisfiable");
        let mut assignment = vec![false; 2];
        for (v, val) in model {
            assignment[v.level() as usize] = val;
        }
        assert!(m.eval(f, &assignment));
        assert!(m.pick_one(Bdd::FALSE).is_none());
    }

    #[test]
    fn eval_missing_vars_default_false() {
        let mut m = Manager::new();
        let a = m.new_var();
        let fa = m.var(a);
        assert!(!m.eval(fa, &[]));
    }
}
