//! The node arena, unique table and core Boolean operations.
//!
//! # Complement edges
//!
//! A [`Bdd`] handle packs an arena index and a **complement bit** (bit 0):
//! the handle `idx·2 + 1` denotes the *negation* of the function stored at
//! node `idx`. Negation is therefore a single xor — no traversal, no new
//! nodes — and a function and its complement share one DAG, halving the
//! arena relative to a plain ROBDD.
//!
//! Canonicity needs one extra rule on top of reduce + hash-consing: of the
//! two ways to write a node (`(v, l, h)` vs the complement of
//! `(v, ¬l, ¬h)`), exactly one has a **regular (uncomplemented) low edge**,
//! and only that form is ever stored. [`Manager::mk`] normalizes: if the
//! requested low edge is complemented, the stored node takes both edges
//! complemented and the returned handle carries the complement bit. There
//! is a single terminal node (index 0); [`Bdd::FALSE`] is its regular
//! handle and [`Bdd::TRUE`] its complement.
//!
//! Cofactor accessors ([`Manager::lo`], [`Manager::hi`]) apply the parity
//! rule — the cofactor of a complemented handle is the complement of the
//! stored edge — so traversal code sees ordinary Shannon cofactors and
//! never needs to know about the encoding.

use crate::cache::{CacheConfig, Caches};
use crate::explore::VisitSet;
use crate::hasher::FxHashMap;
use crate::table::UniqueTable;
use std::cell::RefCell;

/// A BDD variable, identified by its *level* in the (fixed) variable order.
///
/// Lower levels are tested first. Levels are dense `u32`s handed out by
/// [`Manager::new_var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The level of this variable in the global order.
    #[inline]
    pub fn level(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A handle to a BDD node owned by a [`Manager`].
///
/// Handles are cheap to copy and compare; canonicity of the underlying arena
/// guarantees that two handles are equal iff they denote the same Boolean
/// function. A handle is only meaningful together with the manager that
/// produced it.
///
/// Bit 0 of the raw value is the complement tag (see the module docs);
/// [`Manager::not`] just flips it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false function (the regular handle of the terminal).
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function (the complemented handle of the terminal).
    pub const TRUE: Bdd = Bdd(1);

    /// Is this the constant-false function?
    #[inline]
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Is this the constant-true function?
    #[inline]
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Is this either constant?
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The raw handle bits (arena index · 2 + complement bit). Exposed for
    /// debugging and for stable map keys: distinct functions always have
    /// distinct raw values.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// The arena index of the node this handle refers to (complement bit
    /// stripped).
    #[inline]
    pub(crate) fn node_index(self) -> u32 {
        self.0 >> 1
    }

    /// The complement bit of the handle.
    #[inline]
    pub(crate) fn parity(self) -> u32 {
        self.0 & 1
    }
}

/// Level assigned to the terminal node: strictly below every variable.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// An interior (or terminal) node of the shared DAG. Edges are stored as
/// raw handle bits; the canonical form keeps `lo` regular (even) — `hi`
/// may carry the complement bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: u32,
    pub hi: u32,
}

/// Counters describing the health of a [`Manager`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ManagerStats {
    /// Total nodes currently in the arena (including the shared terminal).
    pub nodes: usize,
    /// Number of distinct variables created so far.
    pub vars: usize,
    /// Hits across all operation caches since construction.
    pub cache_hits: u64,
    /// Misses across all operation caches since construction.
    pub cache_misses: u64,
    /// Number of garbage collections performed.
    pub gcs: u64,
    /// Total wall-clock time spent inside [`Manager::gc`] pauses, in
    /// milliseconds (always measured; one `Instant` pair per collection).
    pub gc_pause_ms: f64,
    /// Peak arena size ever observed (in nodes).
    pub peak_nodes: usize,
    /// Bytes currently held by the arena, the unique table and the
    /// computed caches.
    pub arena_bytes: usize,
    /// Peak of [`ManagerStats::arena_bytes`] ever observed.
    pub peak_arena_bytes: usize,
}

/// A BDD manager: owns the node arena, the unique table and the operation
/// caches. All operations that build or inspect nodes go through a manager.
///
/// # Example
///
/// ```
/// use getafix_bdd::Manager;
/// let mut m = Manager::new();
/// let a = m.new_var();
/// let b = m.new_var();
/// let fa = m.var(a);
/// let fb = m.var(b);
/// let f = m.or(fa, fb);
/// let g = m.not(f);
/// let h = m.and(g, fa); // ¬(a ∨ b) ∧ a  ==  false
/// assert!(h.is_false());
/// ```
#[derive(Debug)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: UniqueTable,
    pub(crate) caches: Caches,
    pub(crate) num_vars: u32,
    pub(crate) stats: ManagerStats,
    pub(crate) map_registry: crate::rename::MapRegistry,
    /// Reusable visited-bitset for DAG walks (node counting, support).
    pub(crate) visit: RefCell<VisitSet>,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager with just the terminal node.
    pub fn new() -> Self {
        Self::with_capacity_and_config(0, CacheConfig::default())
    }

    /// Creates a manager whose arena and unique table are pre-sized for
    /// roughly `nodes` nodes, avoiding early growth/rehash churn on
    /// workloads with a known scale.
    pub fn with_capacity(nodes: usize) -> Self {
        Self::with_capacity_and_config(nodes, CacheConfig::default())
    }

    /// Creates a manager with explicitly sized computed tables.
    pub fn with_config(config: CacheConfig) -> Self {
        Self::with_capacity_and_config(0, config)
    }

    /// Creates a manager with both a node-capacity hint and explicit
    /// computed-table sizes.
    pub fn with_capacity_and_config(nodes: usize, config: CacheConfig) -> Self {
        let mut arena = Vec::with_capacity(nodes.saturating_add(1));
        arena.push(Node { var: TERMINAL_LEVEL, lo: 0, hi: 0 });
        let mut m = Manager {
            nodes: arena,
            unique: UniqueTable::with_node_capacity(nodes),
            caches: Caches::new(config),
            num_vars: 0,
            stats: ManagerStats { nodes: 1, peak_nodes: 1, ..ManagerStats::default() },
            map_registry: crate::rename::MapRegistry::default(),
            visit: RefCell::new(VisitSet::default()),
        };
        m.stats.peak_arena_bytes = m.current_bytes();
        m
    }

    /// Allocates a fresh variable at the next level of the order.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        self.stats.vars = self.num_vars as usize;
        v
    }

    /// Allocates `n` fresh consecutive variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables created so far.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.num_vars as usize
    }

    /// Bytes currently held by the arena, unique table and computed caches.
    fn current_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.unique.bytes()
            + self.caches.bytes()
    }

    /// Folds the current byte footprint into the tracked peak. Called at
    /// the points where the footprint can step up (new arena peak, GC
    /// entry) and from [`Manager::stats`], so the reported peak is
    /// monotone and includes lazily allocated cache tables.
    pub(crate) fn note_peak_bytes(&mut self) {
        let cur = self.current_bytes();
        if cur > self.stats.peak_arena_bytes {
            self.stats.peak_arena_bytes = cur;
        }
    }

    /// A snapshot of the manager's counters.
    pub fn stats(&self) -> ManagerStats {
        let mut s = self.stats;
        s.nodes = self.nodes.len();
        s.cache_hits = self.caches.hits;
        s.cache_misses = self.caches.misses;
        s.arena_bytes = self.current_bytes();
        s.peak_arena_bytes = self.stats.peak_arena_bytes.max(s.arena_bytes);
        s
    }

    /// The variable tested at the root of `f`.
    ///
    /// Returns `None` for the constant functions.
    pub fn root_var(&self, f: Bdd) -> Option<Var> {
        let l = self.level(f);
        if l == TERMINAL_LEVEL {
            None
        } else {
            Some(Var(l))
        }
    }

    /// The low (else) cofactor of a non-terminal node, complement parity
    /// applied: `lo(¬f) = ¬lo(f)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn lo(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "lo() on a terminal");
        self.cof(f).0
    }

    /// The high (then) cofactor of a non-terminal node, complement parity
    /// applied: `hi(¬f) = ¬hi(f)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn hi(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "hi() on a terminal");
        self.cof(f).1
    }

    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        self.nodes[f.node_index() as usize].var
    }

    /// Both Shannon cofactors of `f`, parity applied.
    #[inline]
    pub(crate) fn cof(&self, f: Bdd) -> (Bdd, Bdd) {
        let c = f.parity();
        let n = &self.nodes[f.node_index() as usize];
        (Bdd(n.lo ^ c), Bdd(n.hi ^ c))
    }

    /// Cofactors of `f` with respect to the variable at `var`: the real
    /// cofactors when `f` tests `var` at its root, `(f, f)` otherwise.
    #[inline]
    pub(crate) fn cof_at(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        if self.level(f) == var {
            self.cof(f)
        } else {
            (f, f)
        }
    }

    /// The canonical node constructor: reduces, normalizes the complement
    /// parity (stored low edge always regular) and hash-conses.
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        debug_assert!(var < self.level(lo) && var < self.level(hi), "order violation in mk");
        if lo == hi {
            return lo;
        }
        let c = lo.parity();
        let idx = self.unique.get_or_insert(&mut self.nodes, var, lo.0 ^ c, hi.0 ^ c);
        if self.nodes.len() > self.stats.peak_nodes {
            self.stats.peak_nodes = self.nodes.len();
            self.note_peak_bytes();
        }
        Bdd((idx << 1) | c)
    }

    /// The constant function for `value`.
    #[inline]
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// The projection function of variable `v` (i.e. the literal `v`).
    pub fn var(&mut self, v: Var) -> Bdd {
        self.mk(v.0, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated literal `¬v`.
    pub fn nvar(&mut self, v: Var) -> Bdd {
        let f = self.var(v);
        self.not(f)
    }

    /// The literal `v` or `¬v` depending on `positive`.
    pub fn literal(&mut self, v: Var, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// Negation `¬f`: flips the complement bit. O(1), allocation-free.
    #[inline]
    pub fn not(&mut self, f: Bdd) -> Bdd {
        Bdd(f.0 ^ 1)
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        // Terminal and complement rules.
        if f == g {
            return f;
        }
        if f.0 ^ 1 == g.0 {
            // f ∧ ¬f
            return Bdd::FALSE;
        }
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() {
            return g;
        }
        if g.is_true() {
            return f;
        }
        // Commutative: normalize operand order for better cache hit rates.
        let (f, g) = if f.0 > g.0 { (g, f) } else { (f, g) };
        if let Some(r) = self.caches.and_get(f, g) {
            return r;
        }
        let var = self.level(f).min(self.level(g));
        let (f0, f1) = self.cof_at(f, var);
        let (g0, g1) = self.cof_at(g, var);
        let lo = self.and(f0, g0);
        let hi = self.and(f1, g1);
        let r = self.mk(var, lo, hi);
        self.caches.and_put(f, g, r);
        r
    }

    /// Disjunction `f ∨ g`, derived from the conjunction via De Morgan —
    /// with complement edges the negations are free, so AND and OR share
    /// one computed table.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let r = self.and(Bdd(f.0 ^ 1), Bdd(g.0 ^ 1));
        Bdd(r.0 ^ 1)
    }

    /// Exclusive or `f ⊕ g`. Complement parity factors out of both
    /// operands (`¬f ⊕ g = ¬(f ⊕ g)`), so the cache only ever stores
    /// regular-handle pairs.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g {
            return Bdd::FALSE;
        }
        if f.0 ^ 1 == g.0 {
            return Bdd::TRUE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        if f.is_true() {
            return self.not(g);
        }
        if g.is_true() {
            return self.not(f);
        }
        let parity = f.parity() ^ g.parity();
        let (f, g) = (Bdd(f.0 & !1), Bdd(g.0 & !1));
        let (f, g) = if f.0 > g.0 { (g, f) } else { (f, g) };
        let r = match self.caches.xor_get(f, g) {
            Some(r) => r,
            None => {
                let var = self.level(f).min(self.level(g));
                let (f0, f1) = self.cof_at(f, var);
                let (g0, g1) = self.cof_at(g, var);
                let lo = self.xor(f0, g0);
                let hi = self.xor(f1, g1);
                let r = self.mk(var, lo, hi);
                self.caches.xor_put(f, g, r);
                r
            }
        };
        Bdd(r.0 ^ parity)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// If-then-else `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal simplifications; every constant-argument case reduces to
        // a binary operation, so the recursion below only ever sees three
        // non-constant operands.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.0 ^ 1 == h.0 {
            // ite(f, g, ¬g) = f ↔ g = f ⊕ h.
            return self.xor(f, h);
        }
        if g.is_true() {
            return self.or(f, h);
        }
        if g.is_false() {
            let nf = self.not(f);
            return self.and(nf, h);
        }
        if h.is_false() {
            return self.and(f, g);
        }
        if h.is_true() {
            let nf = self.not(f);
            return self.or(nf, g);
        }
        // Normalize for the cache: regular predicate (ite(¬f, g, h) =
        // ite(f, h, g)), regular then-branch (ite(f, ¬g, ¬h) = ¬ite(f, g, h)).
        let (mut f, mut g, mut h) = (f, g, h);
        if f.parity() == 1 {
            f = Bdd(f.0 ^ 1);
            std::mem::swap(&mut g, &mut h);
        }
        let parity = g.parity();
        if parity == 1 {
            g = Bdd(g.0 ^ 1);
            h = Bdd(h.0 ^ 1);
        }
        let r = match self.caches.ite_get(f, g, h) {
            Some(r) => r,
            None => {
                let var = self.level(f).min(self.level(g)).min(self.level(h));
                let (f0, f1) = self.cof_at(f, var);
                let (g0, g1) = self.cof_at(g, var);
                let (h0, h1) = self.cof_at(h, var);
                let lo = self.ite(f0, g0, h0);
                let hi = self.ite(f1, g1, h1);
                let r = self.mk(var, lo, hi);
                self.caches.ite_put(f, g, h, r);
                r
            }
        };
        Bdd(r.0 ^ parity)
    }

    /// The cofactor of `f` with variable `v` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, v: Var, value: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        let fl = self.level(f);
        if fl > v.0 {
            // v does not occur in f (it is below the root in the order).
            return f;
        }
        // Restriction commutes with complement, so cache regular handles
        // only and re-apply the parity outside.
        let c = f.parity();
        let g = Bdd(f.0 ^ c);
        if let Some(r) = self.caches.restrict_get(g, v, value) {
            return Bdd(r.0 ^ c);
        }
        let (lo, hi) = self.cof(g);
        let r = if fl == v.0 {
            if value {
                hi
            } else {
                lo
            }
        } else {
            let lo = self.restrict(lo, v, value);
            let hi = self.restrict(hi, v, value);
            self.mk(fl, lo, hi)
        };
        self.caches.restrict_put(g, v, value, r);
        Bdd(r.0 ^ c)
    }

    /// Evaluates `f` under a total assignment: `assignment[i]` is the value of
    /// the variable at level `i`. Variables at levels beyond the slice length
    /// are treated as `false`.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur.is_true() {
                return true;
            }
            if cur.is_false() {
                return false;
            }
            let c = cur.parity();
            let n = &self.nodes[cur.node_index() as usize];
            let val = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = Bdd((if val { n.hi } else { n.lo }) ^ c);
        }
    }

    /// Number of satisfying assignments of `f` over `nvars` variables
    /// (levels `0..nvars`), as an `f64` (exact up to 2^53).
    ///
    /// Counts are computed with the standard level-relative recurrence: the
    /// count at a node is taken over the variable space *at or below* its
    /// level, with terminals conceptually at level `nvars`.
    ///
    /// # Panics
    ///
    /// Panics if `f` mentions a variable at level ≥ `nvars`.
    pub fn sat_count(&self, f: Bdd, nvars: usize) -> f64 {
        let n = nvars as u32;
        let mut memo: FxHashMap<u32, f64> = FxHashMap::default();
        let total = self.count_rec(f, n, &mut memo);
        let root = self.clamped_level(f, n);
        total * 2f64.powi(root as i32)
    }

    /// The level of `f`, with terminals mapped to `nvars`.
    fn clamped_level(&self, f: Bdd, nvars: u32) -> u32 {
        let l = self.level(f);
        if l == TERMINAL_LEVEL {
            nvars
        } else {
            assert!(l < nvars, "sat_count: variable level {l} outside 0..{nvars}");
            l
        }
    }

    /// Satisfying-assignment count of `f` over levels `level(f)..nvars`.
    /// Memoized on the full handle — with complement edges, `f` and `¬f`
    /// have different counts despite sharing a node.
    fn count_rec(&self, f: Bdd, nvars: u32, memo: &mut FxHashMap<u32, f64>) -> f64 {
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        if let Some(&c) = memo.get(&f.0) {
            return c;
        }
        let (lo, hi) = self.cof(f);
        let var = self.level(f);
        let lo_gap = self.clamped_level(lo, nvars) - var - 1;
        let hi_gap = self.clamped_level(hi, nvars) - var - 1;
        let c = self.count_rec(lo, nvars, memo) * 2f64.powi(lo_gap as i32)
            + self.count_rec(hi, nvars, memo) * 2f64.powi(hi_gap as i32);
        memo.insert(f.0, c);
        c
    }

    /// Picks one satisfying assignment of `f`, if any, as a vector of
    /// `(variable, value)` pairs mentioning exactly the variables on the
    /// chosen path.
    pub fn pick_one(&self, f: Bdd) -> Option<Vec<(Var, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let v = Var(self.level(cur));
            let (lo, hi) = self.cof(cur);
            if hi != Bdd::FALSE {
                path.push((v, true));
                cur = hi;
            } else {
                path.push((v, false));
                cur = lo;
            }
        }
        debug_assert!(cur.is_true());
        Some(path)
    }

    /// Clears all operation caches (but keeps the arena). O(1): bumps the
    /// cache generation instead of touching the tables.
    pub fn clear_caches(&mut self) {
        self.caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let m = Manager::new();
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_false());
        // One shared terminal node: TRUE is its complemented handle.
        assert_eq!(m.stats().nodes, 1);
    }

    #[test]
    fn literal_structure() {
        let mut m = Manager::new();
        let v = m.new_var();
        let f = m.var(v);
        assert_eq!(m.root_var(f), Some(v));
        assert_eq!(m.lo(f), Bdd::FALSE);
        assert_eq!(m.hi(f), Bdd::TRUE);
        let g = m.nvar(v);
        assert_eq!(m.lo(g), Bdd::TRUE);
        assert_eq!(m.hi(g), Bdd::FALSE);
        // A literal and its negation share one arena node.
        assert_eq!(f.node_index(), g.node_index());
        assert_ne!(f, g);
    }

    #[test]
    fn not_is_o1_and_involutive() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b);
        let nodes_before = m.stats().nodes;
        let nf = m.not(f);
        assert_eq!(m.stats().nodes, nodes_before, "not must not allocate");
        let nnf = m.not(nf);
        assert_eq!(nnf, f);
    }

    #[test]
    fn hash_consing_canonical() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let f1 = m.and(fa, fb);
        let f2 = m.and(fb, fa);
        assert_eq!(f1, f2, "AND must be canonical irrespective of operand order");
        let g1 = m.or(fa, fb);
        let ng = m.not(g1);
        let nng = m.not(ng);
        assert_eq!(g1, nng, "double negation is identity");
    }

    #[test]
    fn de_morgan() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let and = m.and(fa, fb);
        let nand = m.not(and);
        let na = m.not(fa);
        let nb = m.not(fb);
        let or = m.or(na, nb);
        assert_eq!(nand, or);
    }

    #[test]
    fn ite_equals_definition() {
        let mut m = Manager::new();
        let vars: Vec<_> = (0..3).map(|_| m.new_var()).collect();
        let f = m.var(vars[0]);
        let g = m.var(vars[1]);
        let h = m.var(vars[2]);
        let ite = m.ite(f, g, h);
        let fg = m.and(f, g);
        let nf = m.not(f);
        let nfh = m.and(nf, h);
        let expect = m.or(fg, nfh);
        assert_eq!(ite, expect);
    }

    #[test]
    fn xor_truth_table() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let x = m.xor(fa, fb);
        assert!(!m.eval(x, &[false, false]));
        assert!(m.eval(x, &[true, false]));
        assert!(m.eval(x, &[false, true]));
        assert!(!m.eval(x, &[true, true]));
    }

    #[test]
    fn restrict_shannon() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let f = m.xor(fa, fb);
        let f_a1 = m.restrict(f, a, true);
        let nb = m.not(fb);
        assert_eq!(f_a1, nb);
        let f_a0 = m.restrict(f, a, false);
        assert_eq!(f_a0, fb);
    }

    #[test]
    fn sat_count_small() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let fc = m.var(c);
        let f = m.or(fa, fb);
        // over 3 vars: (a|b) has 6 models
        assert_eq!(m.sat_count(f, 3), 6.0);
        let g = m.and(f, fc);
        assert_eq!(m.sat_count(g, 3), 3.0);
        assert_eq!(m.sat_count(Bdd::TRUE, 3), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE, 3), 0.0);
    }

    #[test]
    fn pick_one_satisfies() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let nb = m.nvar(b);
        let f = m.and(fa, nb);
        let model = m.pick_one(f).expect("satisfiable");
        let mut assignment = vec![false; 2];
        for (v, val) in model {
            assignment[v.level() as usize] = val;
        }
        assert!(m.eval(f, &assignment));
        assert!(m.pick_one(Bdd::FALSE).is_none());
    }

    #[test]
    fn eval_missing_vars_default_false() {
        let mut m = Manager::new();
        let a = m.new_var();
        let fa = m.var(a);
        assert!(!m.eval(fa, &[]));
    }

    #[test]
    fn with_capacity_matches_default_semantics() {
        let mut small = Manager::new();
        let mut big = Manager::with_capacity(1 << 16);
        let (vs, vb) = (small.new_vars(8), big.new_vars(8));
        let mut fs = Bdd::FALSE;
        let mut fb = Bdd::FALSE;
        for i in 0..8 {
            let (a, b) = (small.var(vs[i]), big.var(vb[i]));
            fs = small.xor(fs, a);
            fb = big.xor(fb, b);
        }
        for bits in 0..256u32 {
            let env: Vec<bool> = (0..8).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(small.eval(fs, &env), big.eval(fb, &env));
        }
        // Pre-sizing avoids growth: the unique table never rehashed.
        assert_eq!(small.stats().nodes, big.stats().nodes);
    }

    #[test]
    fn unique_table_survives_many_inserts() {
        // Push the table through several grow/incremental-rehash cycles and
        // verify canonicity is preserved throughout.
        let mut m = Manager::new();
        let vars = m.new_vars(16);
        let mut handles = Vec::new();
        for i in 0..1000u32 {
            let mut f = m.constant(true);
            for (j, &v) in vars.iter().enumerate() {
                let lit = m.literal(v, (i >> (j % 16)) & 1 == 1);
                f = m.and(f, lit);
            }
            handles.push((i, f));
        }
        for (i, f) in handles {
            let mut g = m.constant(true);
            for (j, &v) in vars.iter().enumerate() {
                let lit = m.literal(v, (i >> (j % 16)) & 1 == 1);
                g = m.and(g, lit);
            }
            assert_eq!(f, g, "hash-consing must find the original node after growth");
        }
    }
}
