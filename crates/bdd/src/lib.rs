//! Reduced ordered binary decision diagrams (ROBDDs) with complement edges.
//!
//! This crate is the symbolic substrate of the Getafix reproduction: every
//! relation manipulated by the fixed-point solver (`getafix-mucalc`), the
//! pushdown-system baselines and the summary engines is represented as a BDD
//! managed by a [`Manager`].
//!
//! The design follows the production hash-consed architecture
//! (Brace–Rudell–Bryant, as deployed in CUDD-class packages):
//!
//! * nodes live in an arena owned by a [`Manager`]; a [`Bdd`] is a cheap
//!   `Copy` handle — an arena index plus a **complement bit** — so
//!   negation is a single xor and a function shares its entire DAG with
//!   its complement (roughly halving the arena),
//! * the **canonical form**: of the two encodings of every node, only the
//!   one whose *low edge is regular* (uncomplemented) is stored, and there
//!   is a single terminal node ([`Bdd::FALSE`] is its regular handle,
//!   [`Bdd::TRUE`] its complement) — structurally equal functions are
//!   handle-equal, so equivalence checks are `O(1)`,
//! * an **open-addressed unique table** hash-conses nodes: arena indices in
//!   a power-of-two probe array, grown with an incremental rehash that
//!   never stops the world (pre-size it with [`Manager::with_capacity`]),
//! * **lossy computed tables** memoize `ite`, conjunction, quantification
//!   and relational products: fixed-size direct-mapped arrays
//!   (overwrite-on-collision, sized by [`CacheConfig`]) whose entries are
//!   invalidated in O(1) by a generation counter. Lossiness is sound
//!   because canonicity makes keys exact — an evicted entry costs a
//!   recomputation, never a wrong answer (see the `cache` module docs),
//! * variables are identified by their *level* (`u32`); the variable order
//!   is the numeric order of levels and is fixed at variable-creation time.
//!
//! # Example
//!
//! ```
//! use getafix_bdd::Manager;
//!
//! let mut m = Manager::new();
//! let x = m.new_var();
//! let y = m.new_var();
//! let fx = m.var(x);
//! let fy = m.var(y);
//! let conj = m.and(fx, fy);
//! let quantified = m.exists_one(conj, y); // ∃y. x ∧ y  ==  x
//! assert_eq!(quantified, fx);
//! assert_eq!(m.sat_count(conj, 2), 1.0);
//! ```
//!
//! # Garbage collection
//!
//! The arena only grows during normal operation. Long-running fixed-point
//! computations call [`Manager::gc`] with the handles they need to keep; the
//! manager rebuilds the arena, remaps the roots (complement bits preserved)
//! and invalidates all caches via the generation counter.

mod cache;
mod explore;
mod gc;
mod hasher;
mod manager;
mod package;
mod quant;
mod rename;
mod table;

pub use cache::CacheConfig;
pub use explore::CubeIter;
pub use gc::GcResult;
pub use manager::{Bdd, Manager, ManagerStats, Var};
pub use package::BddPackage;
pub use rename::VarMap;
