//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! This crate is the symbolic substrate of the Getafix reproduction: every
//! relation manipulated by the fixed-point solver (`getafix-mucalc`), the
//! pushdown-system baselines and the summary engines is represented as a BDD
//! managed by a [`Manager`].
//!
//! The design follows the classic hash-consed node-table architecture
//! (Brace–Rudell–Bryant):
//!
//! * nodes live in an arena owned by a [`Manager`]; a [`Bdd`] is a cheap
//!   `Copy` handle (an index) into that arena,
//! * a *unique table* guarantees canonicity — structurally equal functions
//!   are pointer-equal, so equivalence checks are `O(1)`,
//! * *operation caches* memoize `ite`, binary operations, quantification and
//!   relational products,
//! * variables are identified by their *level* (`u32`); the variable order is
//!   the numeric order of levels and is fixed at variable-creation time.
//!
//! # Example
//!
//! ```
//! use getafix_bdd::Manager;
//!
//! let mut m = Manager::new();
//! let x = m.new_var();
//! let y = m.new_var();
//! let fx = m.var(x);
//! let fy = m.var(y);
//! let conj = m.and(fx, fy);
//! let quantified = m.exists_one(conj, y); // ∃y. x ∧ y  ==  x
//! assert_eq!(quantified, fx);
//! assert_eq!(m.sat_count(conj, 2), 1.0);
//! ```
//!
//! # Garbage collection
//!
//! The arena only grows during normal operation. Long-running fixed-point
//! computations call [`Manager::gc`] with the handles they need to keep; the
//! manager rebuilds the arena, remaps the roots and clears all caches.

mod cache;
mod explore;
mod gc;
mod hasher;
mod manager;
mod quant;
mod rename;

pub use explore::CubeIter;
pub use gc::GcResult;
pub use manager::{Bdd, Manager, ManagerStats, Var};
pub use rename::VarMap;
