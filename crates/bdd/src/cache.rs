//! Operation caches (computed tables) for the manager.
//!
//! Every recursive BDD operation memoizes its results keyed on operand
//! handles. Canonicity of the arena makes the keys exact: equal keys always
//! denote equal results. Caches survive until [`crate::Manager::gc`] or
//! [`crate::Manager::clear_caches`] runs.

use crate::hasher::FxHashMap;
use crate::manager::{Bdd, Var};

/// The binary Boolean connectives handled by the generic `apply`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum BinOp {
    And,
    Or,
    Xor,
}

/// All computed tables, grouped so they can be cleared at once.
#[derive(Debug, Default)]
pub(crate) struct Caches {
    binop: FxHashMap<(BinOp, u32, u32), u32>,
    not: FxHashMap<u32, u32>,
    ite: FxHashMap<(u32, u32, u32), u32>,
    exists: FxHashMap<(u32, u32), u32>,
    and_exists: FxHashMap<(u32, u32, u32), u32>,
    rename: FxHashMap<(u32, u64), u32>,
    rename_and_exists: FxHashMap<(u32, u64, u32, u32), u32>,
    restrict: FxHashMap<(u32, u32, bool), u32>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl Caches {
    pub(crate) fn clear(&mut self) {
        self.binop.clear();
        self.not.clear();
        self.ite.clear();
        self.exists.clear();
        self.and_exists.clear();
        self.rename.clear();
        self.rename_and_exists.clear();
        self.restrict.clear();
    }

    #[inline]
    fn record<T: Copy>(&mut self, hit: Option<T>) -> Option<T> {
        match hit {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    #[inline]
    pub(crate) fn binop_get(&mut self, op: BinOp, f: Bdd, g: Bdd) -> Option<Bdd> {
        let hit = self.binop.get(&(op, f.0, g.0)).map(|&r| Bdd(r));
        self.record(hit)
    }

    #[inline]
    pub(crate) fn binop_put(&mut self, op: BinOp, f: Bdd, g: Bdd, r: Bdd) {
        self.binop.insert((op, f.0, g.0), r.0);
    }

    #[inline]
    pub(crate) fn not_get(&mut self, f: Bdd) -> Option<Bdd> {
        let hit = self.not.get(&f.0).map(|&r| Bdd(r));
        self.record(hit)
    }

    #[inline]
    pub(crate) fn not_put(&mut self, f: Bdd, r: Bdd) {
        self.not.insert(f.0, r.0);
    }

    #[inline]
    pub(crate) fn ite_get(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Option<Bdd> {
        let hit = self.ite.get(&(f.0, g.0, h.0)).map(|&r| Bdd(r));
        self.record(hit)
    }

    #[inline]
    pub(crate) fn ite_put(&mut self, f: Bdd, g: Bdd, h: Bdd, r: Bdd) {
        self.ite.insert((f.0, g.0, h.0), r.0);
    }

    #[inline]
    pub(crate) fn exists_get(&mut self, f: Bdd, cube: Bdd) -> Option<Bdd> {
        let hit = self.exists.get(&(f.0, cube.0)).map(|&r| Bdd(r));
        self.record(hit)
    }

    #[inline]
    pub(crate) fn exists_put(&mut self, f: Bdd, cube: Bdd, r: Bdd) {
        self.exists.insert((f.0, cube.0), r.0);
    }

    #[inline]
    pub(crate) fn and_exists_get(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Option<Bdd> {
        let hit = self.and_exists.get(&(f.0, g.0, cube.0)).map(|&r| Bdd(r));
        self.record(hit)
    }

    #[inline]
    pub(crate) fn and_exists_put(&mut self, f: Bdd, g: Bdd, cube: Bdd, r: Bdd) {
        self.and_exists.insert((f.0, g.0, cube.0), r.0);
    }

    #[inline]
    pub(crate) fn rename_get(&mut self, f: Bdd, map_id: u64) -> Option<Bdd> {
        let hit = self.rename.get(&(f.0, map_id)).map(|&r| Bdd(r));
        self.record(hit)
    }

    #[inline]
    pub(crate) fn rename_put(&mut self, f: Bdd, map_id: u64, r: Bdd) {
        self.rename.insert((f.0, map_id), r.0);
    }

    #[inline]
    pub(crate) fn rename_and_exists_get(
        &mut self,
        f: Bdd,
        map_id: u64,
        g: Bdd,
        cube: Bdd,
    ) -> Option<Bdd> {
        let hit = self.rename_and_exists.get(&(f.0, map_id, g.0, cube.0)).map(|&r| Bdd(r));
        self.record(hit)
    }

    #[inline]
    pub(crate) fn rename_and_exists_put(&mut self, f: Bdd, map_id: u64, g: Bdd, cube: Bdd, r: Bdd) {
        self.rename_and_exists.insert((f.0, map_id, g.0, cube.0), r.0);
    }

    #[inline]
    pub(crate) fn restrict_get(&mut self, f: Bdd, v: Var, value: bool) -> Option<Bdd> {
        let hit = self.restrict.get(&(f.0, v.0, value)).map(|&r| Bdd(r));
        self.record(hit)
    }

    #[inline]
    pub(crate) fn restrict_put(&mut self, f: Bdd, v: Var, value: bool, r: Bdd) {
        self.restrict.insert((f.0, v.0, value), r.0);
    }
}
