//! Lossy computed tables (operation caches) for the manager.
//!
//! Every recursive BDD operation memoizes results keyed on operand handles.
//! Unlike the previous growable `FxHashMap`s, each table here is a
//! **fixed-size direct-mapped array**: a key hashes to exactly one slot, a
//! colliding insert overwrites whatever lived there, and a lookup compares
//! the stored key exactly before returning the stored result.
//!
//! # Why lossiness is sound
//!
//! Canonicity of the arena makes cache keys *exact*: equal keys always
//! denote equal results, so a hit can never return a wrong value — only a
//! stale-generation or overwritten entry can be *missed*, in which case the
//! operation simply recomputes (and, being deterministic over a canonical
//! arena, recomputes the identical handle). Lossiness therefore affects
//! throughput, never results.
//!
//! # Generations instead of `clear()`
//!
//! Invalidating after a GC (cached results may reference reclaimed nodes)
//! does not touch the arrays at all: a single generation counter is bumped,
//! and every slot stamped with an older generation reads as empty. This
//! makes [`Caches::clear`] O(1) — important now that GC can run in the
//! middle of a long stratum.

use crate::manager::{Bdd, Var};
use crate::table::hash_node;

/// Sizing knobs for the computed tables, as log₂ slot counts.
///
/// Set at [`crate::Manager`] construction ([`crate::Manager::with_config`]);
/// each table is allocated lazily at its configured size on first use and
/// never grows — a bigger table trades memory for fewer collision
/// evictions. The defaults total a few MiB when fully populated; managers
/// that never touch an operation never pay for its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// log₂ slots of the conjunction cache (disjunction is derived from it
    /// via complement edges, negation is free).
    pub and_bits: u32,
    /// log₂ slots of the exclusive-or cache.
    pub xor_bits: u32,
    /// log₂ slots of the if-then-else cache.
    pub ite_bits: u32,
    /// log₂ slots of the existential-quantification cache.
    pub exists_bits: u32,
    /// log₂ slots of the fused `∃·∧` relational-product cache.
    pub and_exists_bits: u32,
    /// log₂ slots of the variable-renaming cache.
    pub rename_bits: u32,
    /// log₂ slots of the fused `∃·(rename ∧ ·)` image cache.
    pub rename_and_exists_bits: u32,
    /// log₂ slots of the single-variable restriction cache.
    pub restrict_bits: u32,
    /// log₂ slots of the cube-cofactor ([`crate::Manager::restrict_cube`])
    /// cache.
    pub cofactor_bits: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            and_bits: 14,
            xor_bits: 12,
            ite_bits: 12,
            exists_bits: 13,
            and_exists_bits: 15,
            rename_bits: 12,
            rename_and_exists_bits: 15,
            restrict_bits: 12,
            cofactor_bits: 12,
        }
    }
}

impl CacheConfig {
    /// A configuration giving every table `bits` log₂ slots.
    pub fn uniform(bits: u32) -> CacheConfig {
        CacheConfig {
            and_bits: bits,
            xor_bits: bits,
            ite_bits: bits,
            exists_bits: bits,
            and_exists_bits: bits,
            rename_bits: bits,
            rename_and_exists_bits: bits,
            restrict_bits: bits,
            cofactor_bits: bits,
        }
    }
}

/// A two-key direct-mapped entry.
#[derive(Debug, Clone, Copy, Default)]
struct Slot2 {
    a: u32,
    b: u32,
    r: u32,
    gen: u32,
}

/// A three-key direct-mapped entry.
#[derive(Debug, Clone, Copy, Default)]
struct Slot3 {
    a: u32,
    b: u32,
    c: u32,
    r: u32,
    gen: u32,
}

/// A four-key direct-mapped entry.
#[derive(Debug, Clone, Copy, Default)]
struct Slot4 {
    a: u32,
    b: u32,
    c: u32,
    d: u32,
    r: u32,
    gen: u32,
}

/// All computed tables plus the shared generation counter.
#[derive(Debug)]
pub(crate) struct Caches {
    and: Vec<Slot2>,
    xor: Vec<Slot2>,
    ite: Vec<Slot3>,
    exists: Vec<Slot2>,
    and_exists: Vec<Slot3>,
    rename: Vec<Slot2>,
    rename_and_exists: Vec<Slot4>,
    restrict: Vec<Slot2>,
    cofactor: Vec<Slot2>,
    /// Table sizes; consulted when a table is first written to.
    config: CacheConfig,
    /// Current generation; slots stamped with anything else are empty.
    /// Starts at 1 so zero-initialized slots read as empty.
    gen: u32,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

#[inline]
fn index2(table_len: usize, a: u32, b: u32) -> usize {
    (hash_node(0, a, b) as usize) & (table_len - 1)
}

#[inline]
fn index3(table_len: usize, a: u32, b: u32, c: u32) -> usize {
    (hash_node(a, b, c) as usize) & (table_len - 1)
}

#[inline]
fn index4(table_len: usize, a: u32, b: u32, c: u32, d: u32) -> usize {
    (hash_node(a, b, c).wrapping_add(u64::from(d).wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize)
        & (table_len - 1)
}

impl Caches {
    /// Tables are allocated *lazily*, on the first insertion into each:
    /// short-lived managers (one per solved case in a differential or
    /// bench sweep) never pay for zeroing slots an operation mix does not
    /// touch.
    pub(crate) fn new(config: CacheConfig) -> Caches {
        Caches {
            and: Vec::new(),
            xor: Vec::new(),
            ite: Vec::new(),
            exists: Vec::new(),
            and_exists: Vec::new(),
            rename: Vec::new(),
            rename_and_exists: Vec::new(),
            restrict: Vec::new(),
            cofactor: Vec::new(),
            config,
            gen: 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Bytes held by the computed tables.
    pub(crate) fn bytes(&self) -> usize {
        self.and.len() * std::mem::size_of::<Slot2>()
            + self.xor.len() * std::mem::size_of::<Slot2>()
            + self.ite.len() * std::mem::size_of::<Slot3>()
            + self.exists.len() * std::mem::size_of::<Slot2>()
            + self.and_exists.len() * std::mem::size_of::<Slot3>()
            + self.rename.len() * std::mem::size_of::<Slot2>()
            + self.rename_and_exists.len() * std::mem::size_of::<Slot4>()
            + self.restrict.len() * std::mem::size_of::<Slot2>()
            + self.cofactor.len() * std::mem::size_of::<Slot2>()
    }

    /// Invalidates every entry in O(1) by bumping the generation. On the
    /// (practically unreachable) 2³²-nd clear the arrays are zeroed to keep
    /// stale stamps from aliasing the restarted counter.
    pub(crate) fn clear(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        getafix_telemetry::event(getafix_telemetry::Phase::Bdd, "cache_generation_bump", || {
            vec![("generation", self.gen.into())]
        });
        if self.gen == 0 {
            self.and.fill(Slot2::default());
            self.xor.fill(Slot2::default());
            self.ite.fill(Slot3::default());
            self.exists.fill(Slot2::default());
            self.and_exists.fill(Slot3::default());
            self.rename.fill(Slot2::default());
            self.rename_and_exists.fill(Slot4::default());
            self.restrict.fill(Slot2::default());
            self.cofactor.fill(Slot2::default());
            self.gen = 1;
        }
    }

    #[inline]
    fn get2(table: &[Slot2], gen: u32, a: u32, b: u32) -> Option<Bdd> {
        if table.is_empty() {
            return None;
        }
        let s = &table[index2(table.len(), a, b)];
        (s.gen == gen && s.a == a && s.b == b).then_some(Bdd(s.r))
    }

    #[inline]
    fn put2(table: &mut Vec<Slot2>, bits: u32, gen: u32, a: u32, b: u32, r: u32) {
        if table.is_empty() {
            table.resize(1usize << bits, Slot2::default());
        }
        let i = index2(table.len(), a, b);
        table[i] = Slot2 { a, b, r, gen };
    }

    #[inline]
    fn get3(table: &[Slot3], gen: u32, a: u32, b: u32, c: u32) -> Option<Bdd> {
        if table.is_empty() {
            return None;
        }
        let s = &table[index3(table.len(), a, b, c)];
        (s.gen == gen && s.a == a && s.b == b && s.c == c).then_some(Bdd(s.r))
    }

    #[inline]
    fn put3(table: &mut Vec<Slot3>, bits: u32, gen: u32, a: u32, b: u32, c: u32, r: u32) {
        if table.is_empty() {
            table.resize(1usize << bits, Slot3::default());
        }
        let i = index3(table.len(), a, b, c);
        table[i] = Slot3 { a, b, c, r, gen };
    }

    #[inline]
    fn get4(table: &[Slot4], gen: u32, a: u32, b: u32, c: u32, d: u32) -> Option<Bdd> {
        if table.is_empty() {
            return None;
        }
        let s = &table[index4(table.len(), a, b, c, d)];
        (s.gen == gen && s.a == a && s.b == b && s.c == c && s.d == d).then_some(Bdd(s.r))
    }

    #[inline]
    fn put4(table: &mut Vec<Slot4>, bits: u32, gen: u32, key: (u32, u32, u32, u32), r: u32) {
        if table.is_empty() {
            table.resize(1usize << bits, Slot4::default());
        }
        let (a, b, c, d) = key;
        let i = index4(table.len(), a, b, c, d);
        table[i] = Slot4 { a, b, c, d, r, gen };
    }

    #[inline]
    fn record(&mut self, hit: Option<Bdd>) -> Option<Bdd> {
        match hit {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    #[inline]
    pub(crate) fn and_get(&mut self, f: Bdd, g: Bdd) -> Option<Bdd> {
        let hit = Self::get2(&self.and, self.gen, f.0, g.0);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn and_put(&mut self, f: Bdd, g: Bdd, r: Bdd) {
        Self::put2(&mut self.and, self.config.and_bits, self.gen, f.0, g.0, r.0);
    }

    #[inline]
    pub(crate) fn xor_get(&mut self, f: Bdd, g: Bdd) -> Option<Bdd> {
        let hit = Self::get2(&self.xor, self.gen, f.0, g.0);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn xor_put(&mut self, f: Bdd, g: Bdd, r: Bdd) {
        Self::put2(&mut self.xor, self.config.xor_bits, self.gen, f.0, g.0, r.0);
    }

    #[inline]
    pub(crate) fn ite_get(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Option<Bdd> {
        let hit = Self::get3(&self.ite, self.gen, f.0, g.0, h.0);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn ite_put(&mut self, f: Bdd, g: Bdd, h: Bdd, r: Bdd) {
        Self::put3(&mut self.ite, self.config.ite_bits, self.gen, f.0, g.0, h.0, r.0);
    }

    #[inline]
    pub(crate) fn exists_get(&mut self, f: Bdd, cube: Bdd) -> Option<Bdd> {
        let hit = Self::get2(&self.exists, self.gen, f.0, cube.0);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn exists_put(&mut self, f: Bdd, cube: Bdd, r: Bdd) {
        Self::put2(&mut self.exists, self.config.exists_bits, self.gen, f.0, cube.0, r.0);
    }

    #[inline]
    pub(crate) fn and_exists_get(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Option<Bdd> {
        let hit = Self::get3(&self.and_exists, self.gen, f.0, g.0, cube.0);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn and_exists_put(&mut self, f: Bdd, g: Bdd, cube: Bdd, r: Bdd) {
        Self::put3(
            &mut self.and_exists,
            self.config.and_exists_bits,
            self.gen,
            f.0,
            g.0,
            cube.0,
            r.0,
        );
    }

    #[inline]
    pub(crate) fn rename_get(&mut self, f: Bdd, map_id: u32) -> Option<Bdd> {
        let hit = Self::get2(&self.rename, self.gen, f.0, map_id);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn rename_put(&mut self, f: Bdd, map_id: u32, r: Bdd) {
        Self::put2(&mut self.rename, self.config.rename_bits, self.gen, f.0, map_id, r.0);
    }

    #[inline]
    pub(crate) fn rename_and_exists_get(
        &mut self,
        f: Bdd,
        map_id: u32,
        g: Bdd,
        cube: Bdd,
    ) -> Option<Bdd> {
        let hit = Self::get4(&self.rename_and_exists, self.gen, f.0, map_id, g.0, cube.0);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn rename_and_exists_put(&mut self, f: Bdd, map_id: u32, g: Bdd, cube: Bdd, r: Bdd) {
        Self::put4(
            &mut self.rename_and_exists,
            self.config.rename_and_exists_bits,
            self.gen,
            (f.0, map_id, g.0, cube.0),
            r.0,
        );
    }

    #[inline]
    pub(crate) fn restrict_get(&mut self, f: Bdd, v: Var, value: bool) -> Option<Bdd> {
        let key = (v.0 << 1) | u32::from(value);
        let hit = Self::get2(&self.restrict, self.gen, f.0, key);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn restrict_put(&mut self, f: Bdd, v: Var, value: bool, r: Bdd) {
        let key = (v.0 << 1) | u32::from(value);
        Self::put2(&mut self.restrict, self.config.restrict_bits, self.gen, f.0, key, r.0);
    }

    #[inline]
    pub(crate) fn cofactor_get(&mut self, f: Bdd, cube: Bdd) -> Option<Bdd> {
        let hit = Self::get2(&self.cofactor, self.gen, f.0, cube.0);
        self.record(hit)
    }

    #[inline]
    pub(crate) fn cofactor_put(&mut self, f: Bdd, cube: Bdd, r: Bdd) {
        Self::put2(&mut self.cofactor, self.config.cofactor_bits, self.gen, f.0, cube.0, r.0);
    }
}
