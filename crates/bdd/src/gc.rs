//! Mark-sweep garbage collection for the node arena.
//!
//! The arena only grows during normal operation; long fixed-point runs call
//! [`Manager::gc`] between iterations with the handles they still need. GC
//! rebuilds the arena keeping exactly the nodes reachable from the roots,
//! remaps the roots and clears every operation cache (cached results may
//! reference dead nodes).

use crate::hasher::FxHashMap;
use crate::manager::{Bdd, Manager, Node};

/// Outcome of a garbage collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcResult {
    /// The input roots, remapped into the compacted arena (same order).
    pub roots: Vec<Bdd>,
    /// Arena size before collection, in nodes.
    pub nodes_before: usize,
    /// Arena size after collection, in nodes.
    pub nodes_after: usize,
}

impl GcResult {
    /// Nodes reclaimed by the collection.
    pub fn reclaimed(&self) -> usize {
        self.nodes_before - self.nodes_after
    }
}

impl Manager {
    /// Collects garbage, keeping exactly the nodes reachable from `roots`.
    ///
    /// Every `Bdd` handle not derived from the returned
    /// [`GcResult::roots`] is invalidated; using one afterwards yields
    /// unspecified (but memory-safe) results. Operation caches are cleared.
    pub fn gc(&mut self, roots: &[Bdd]) -> GcResult {
        let nodes_before = self.nodes.len();

        // Mark: old index -> new index. Terminals keep their slots.
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        remap.insert(0, 0);
        remap.insert(1, 1);
        let mut new_nodes: Vec<Node> = vec![self.nodes[0], self.nodes[1]];

        // Depth-first copy that assigns new indices in child-before-parent
        // order so the new arena stays topologically sorted.
        for &root in roots {
            self.copy_rec(root.0, &mut remap, &mut new_nodes);
        }

        let new_roots: Vec<Bdd> = roots.iter().map(|r| Bdd(remap[&r.0])).collect();

        // Rebuild the unique table over the surviving nodes.
        let mut unique = FxHashMap::default();
        for (idx, node) in new_nodes.iter().enumerate().skip(2) {
            unique.insert(*node, idx as u32);
        }

        let nodes_after = new_nodes.len();
        self.nodes = new_nodes;
        self.unique = unique;
        self.caches.clear();
        self.stats.gcs += 1;

        GcResult { roots: new_roots, nodes_before, nodes_after }
    }

    fn copy_rec(
        &self,
        old: u32,
        remap: &mut FxHashMap<u32, u32>,
        new_nodes: &mut Vec<Node>,
    ) -> u32 {
        if let Some(&n) = remap.get(&old) {
            return n;
        }
        let node = self.nodes[old as usize];
        let lo = self.copy_rec(node.lo, remap, new_nodes);
        let hi = self.copy_rec(node.hi, remap, new_nodes);
        let idx = new_nodes.len() as u32;
        new_nodes.push(Node { var: node.var, lo, hi });
        remap.insert(old, idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Manager;

    #[test]
    fn gc_reclaims_dead_nodes() {
        let mut m = Manager::new();
        let v = m.new_vars(8);
        // Build a live function and a pile of garbage.
        let live = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            m.and(a, b)
        };
        for i in 0..6 {
            let a = m.var(v[i]);
            let b = m.var(v[i + 1]);
            let g = m.xor(a, b);
            let _dead = m.or(g, a);
        }
        let before = m.stats().nodes;
        let result = m.gc(&[live]);
        assert_eq!(result.nodes_before, before);
        assert!(result.nodes_after < before);
        // The remapped root must denote the same function.
        let live2 = result.roots[0];
        assert!(m.eval(live2, &[true, true]));
        assert!(!m.eval(live2, &[true, false]));
    }

    #[test]
    fn gc_preserves_semantics_and_canonicity() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let ab = m.xor(a, b);
            m.or(ab, c)
        };
        let g = {
            let c = m.var(v[2]);
            let d = m.var(v[3]);
            m.and(c, d)
        };
        let result = m.gc(&[f, g]);
        let (f2, g2) = (result.roots[0], result.roots[1]);
        // Rebuild the same functions; hash-consing must find the kept nodes.
        let f3 = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let ab = m.xor(a, b);
            m.or(ab, c)
        };
        let g3 = {
            let c = m.var(v[2]);
            let d = m.var(v[3]);
            m.and(c, d)
        };
        assert_eq!(f2, f3);
        assert_eq!(g2, g3);
    }

    #[test]
    fn gc_with_constant_roots() {
        let mut m = Manager::new();
        let v = m.new_var();
        let a = m.var(v);
        let _ = m.not(a);
        let result = m.gc(&[Bdd::TRUE, Bdd::FALSE]);
        assert_eq!(result.roots, vec![Bdd::TRUE, Bdd::FALSE]);
        assert_eq!(result.nodes_after, 2);
    }

    #[test]
    fn gc_shared_subgraphs_counted_once() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        let shared = {
            let a = m.var(v[1]);
            let b = m.var(v[2]);
            m.and(a, b)
        };
        let x = m.var(v[0]);
        let f = m.and(x, shared);
        let nx = m.nvar(v[0]);
        let g = m.and(nx, shared);
        let result = m.gc(&[f, g, shared]);
        // shared, f-root, g-root, x-node-for-f... count precisely:
        // nodes: TRUE, FALSE, (v2), (v1∧v2), f=(v0? shared:0), g=(v0? 0:shared)
        assert_eq!(result.nodes_after, 6);
    }
}
