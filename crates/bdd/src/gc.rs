//! Mark-sweep garbage collection for the node arena.
//!
//! The arena only grows during normal operation; long fixed-point runs call
//! [`Manager::gc`] with the handles they still need — between strata *and*,
//! since the solver learned to register its per-disjunct caches as roots,
//! in the middle of one. GC rebuilds the arena keeping exactly the nodes
//! reachable from the roots, remaps the roots (preserving each handle's
//! complement bit), rebuilds the unique table over the survivors and
//! invalidates every operation cache in O(1) via the generation counter
//! (cached results may reference dead nodes).

use crate::manager::{Bdd, Manager, Node};
use getafix_telemetry::{self as telemetry, Phase};
use std::time::Instant;

/// Outcome of a garbage collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcResult {
    /// The input roots, remapped into the compacted arena (same order).
    pub roots: Vec<Bdd>,
    /// Arena size before collection, in nodes.
    pub nodes_before: usize,
    /// Arena size after collection, in nodes.
    pub nodes_after: usize,
}

impl GcResult {
    /// Nodes reclaimed by the collection.
    pub fn reclaimed(&self) -> usize {
        self.nodes_before - self.nodes_after
    }
}

impl Manager {
    /// Collects garbage, keeping exactly the nodes reachable from `roots`.
    ///
    /// Every `Bdd` handle not derived from the returned
    /// [`GcResult::roots`] is invalidated; using one afterwards yields
    /// unspecified (but memory-safe) results. Operation caches are cleared.
    pub fn gc(&mut self, roots: &[Bdd]) -> GcResult {
        let pause_start = Instant::now();
        let mut span = telemetry::span(Phase::Bdd, "gc");
        // The pre-collection footprint is a candidate peak; capture it
        // before the arena is replaced by the compacted copy.
        self.note_peak_bytes();
        let nodes_before = self.nodes.len();

        // Mark: old node index -> new node index, dense (the arena is the
        // key space, so a flat vector beats a hash map). The terminal keeps
        // slot 0.
        let mut remap: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        remap[0] = 0;
        let mut new_nodes: Vec<Node> = vec![self.nodes[0]];

        // Depth-first copy that assigns new indices in child-before-parent
        // order so the new arena stays topologically sorted.
        for &root in roots {
            self.copy_rec(root.node_index(), &mut remap, &mut new_nodes);
        }

        let new_roots: Vec<Bdd> =
            roots.iter().map(|r| Bdd((remap[r.node_index() as usize] << 1) | r.parity())).collect();

        let nodes_after = new_nodes.len();
        self.nodes = new_nodes;
        self.unique.rebuild(&self.nodes);
        self.caches.clear();
        self.stats.gcs += 1;

        let pause_ms = pause_start.elapsed().as_secs_f64() * 1e3;
        self.stats.gc_pause_ms += pause_ms;
        if span.is_recording() {
            span.attr("nodes_before", nodes_before);
            span.attr("nodes_after", nodes_after);
            span.attr("reclaimed", nodes_before - nodes_after);
            span.attr("pause_ms", pause_ms);
        }

        GcResult { roots: new_roots, nodes_before, nodes_after }
    }

    fn copy_rec(&self, old: u32, remap: &mut [u32], new_nodes: &mut Vec<Node>) -> u32 {
        let seen = remap[old as usize];
        if seen != u32::MAX {
            return seen;
        }
        let node = self.nodes[old as usize];
        // Edges carry the complement bit; remap the index, keep the parity.
        let lo = self.copy_rec(node.lo >> 1, remap, new_nodes);
        let hi = self.copy_rec(node.hi >> 1, remap, new_nodes);
        let idx = new_nodes.len() as u32;
        new_nodes.push(Node {
            var: node.var,
            lo: (lo << 1) | (node.lo & 1),
            hi: (hi << 1) | (node.hi & 1),
        });
        remap[old as usize] = idx;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Manager;

    #[test]
    fn gc_reclaims_dead_nodes() {
        let mut m = Manager::new();
        let v = m.new_vars(8);
        // Build a live function and a pile of garbage.
        let live = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            m.and(a, b)
        };
        for i in 0..6 {
            let a = m.var(v[i]);
            let b = m.var(v[i + 1]);
            let g = m.xor(a, b);
            let _dead = m.or(g, a);
        }
        let before = m.stats().nodes;
        let result = m.gc(&[live]);
        assert_eq!(result.nodes_before, before);
        assert!(result.nodes_after < before);
        // The remapped root must denote the same function.
        let live2 = result.roots[0];
        assert!(m.eval(live2, &[true, true]));
        assert!(!m.eval(live2, &[true, false]));
    }

    #[test]
    fn gc_preserves_semantics_and_canonicity() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let ab = m.xor(a, b);
            m.or(ab, c)
        };
        let g = {
            let c = m.var(v[2]);
            let d = m.var(v[3]);
            m.and(c, d)
        };
        let result = m.gc(&[f, g]);
        let (f2, g2) = (result.roots[0], result.roots[1]);
        // Rebuild the same functions; hash-consing must find the kept nodes.
        let f3 = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let ab = m.xor(a, b);
            m.or(ab, c)
        };
        let g3 = {
            let c = m.var(v[2]);
            let d = m.var(v[3]);
            m.and(c, d)
        };
        assert_eq!(f2, f3);
        assert_eq!(g2, g3);
    }

    #[test]
    fn gc_with_constant_roots() {
        let mut m = Manager::new();
        let v = m.new_var();
        let a = m.var(v);
        let _ = m.not(a);
        let result = m.gc(&[Bdd::TRUE, Bdd::FALSE]);
        assert_eq!(result.roots, vec![Bdd::TRUE, Bdd::FALSE]);
        // The single shared terminal is all that survives.
        assert_eq!(result.nodes_after, 1);
    }

    #[test]
    fn gc_preserves_complement_parity() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            m.and(a, b)
        };
        let nf = m.not(f);
        let result = m.gc(&[f, nf]);
        let (f2, nf2) = (result.roots[0], result.roots[1]);
        let nf2b = m.not(f2);
        assert_eq!(nf2, nf2b, "complement bit must survive the remap");
        for bits in 0..4u32 {
            let env = [(bits & 1) == 1, (bits & 2) == 2];
            assert_eq!(m.eval(f2, &env), !m.eval(nf2, &env));
        }
    }

    #[test]
    fn gc_shared_subgraphs_counted_once() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        let shared = {
            let a = m.var(v[1]);
            let b = m.var(v[2]);
            m.and(a, b)
        };
        let x = m.var(v[0]);
        let f = m.and(x, shared);
        let nx = m.nvar(v[0]);
        let g = m.and(nx, shared);
        let result = m.gc(&[f, g, shared]);
        // nodes: terminal, (v2), (v1∧v2), f=(v0? shared:0), g=(v0? 0:shared)
        assert_eq!(result.nodes_after, 5);
    }
}
