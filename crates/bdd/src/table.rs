//! The open-addressed unique table: hash-consing without per-node boxing.
//!
//! The table stores *arena indices* in a power-of-two array of slots probed
//! linearly; the node payload `(var, lo, hi)` lives inline in the arena
//! (`Manager::nodes`), so a probe is one load from the slot array and one
//! load from the arena — no pointer chasing through hash-map buckets and no
//! per-entry allocation, unlike the previous `FxHashMap<Node, u32>`.
//!
//! # Incremental rehash
//!
//! Growing never stops the world. When the load factor crosses 3/4 the
//! table allocates a slot array of twice the capacity and keeps the old
//! array around; every subsequent insertion migrates a fixed chunk of
//! arena entries into the new array, and lookups consult the new array
//! first and fall back to the old one until the migration cursor has swept
//! the whole pre-grow arena. The arena itself is the ground truth (it
//! densely lists every node), which is what makes cursor-based migration
//! this simple.

use crate::manager::Node;

/// Sentinel for an empty slot. Arena index 0 is the terminal node, which is
/// never hash-consed, so any value would do — `u32::MAX` also doubles as an
/// "impossible index" guard.
const EMPTY: u32 = u32::MAX;

/// Slots migrated from the old generation per insertion while a rehash is
/// in flight.
const MIGRATE_CHUNK: usize = 64;

/// Smallest slot-array size (must be a power of two).
const MIN_CAPACITY: usize = 256;

/// Multiplicative constant shared with [`crate::hasher::FxHasher`].
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hash of a node triple. The mix must (and does) depend on all three
/// words; the unique table and the computed caches both key on it.
#[inline]
pub(crate) fn hash_node(var: u32, lo: u32, hi: u32) -> u64 {
    let mut h = (u64::from(var).rotate_left(5) ^ u64::from(lo)).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ u64::from(hi)).wrapping_mul(SEED);
    // Spread the high bits down: the index is taken from the low bits.
    h ^ (h >> 32)
}

/// The previous slot array while an incremental rehash is in flight.
#[derive(Debug)]
struct OldGeneration {
    slots: Vec<u32>,
    mask: u64,
    /// Next arena index to migrate into the new array.
    cursor: u32,
    /// One past the last arena index the old array can contain (the arena
    /// length at grow time; later nodes were inserted into the new array).
    limit: u32,
}

/// Open-addressed, linearly probed table of arena indices.
#[derive(Debug)]
pub(crate) struct UniqueTable {
    slots: Vec<u32>,
    mask: u64,
    /// Entries in `slots` (excludes entries still only in `old`).
    len: usize,
    old: Option<OldGeneration>,
}

impl UniqueTable {
    /// A table pre-sized for roughly `nodes` arena entries.
    pub(crate) fn with_node_capacity(nodes: usize) -> UniqueTable {
        let cap = (nodes.saturating_mul(4) / 3 + 1).next_power_of_two().max(MIN_CAPACITY);
        UniqueTable { slots: vec![EMPTY; cap], mask: (cap - 1) as u64, len: 0, old: None }
    }

    /// Bytes currently held by the slot arrays (both generations).
    pub(crate) fn bytes(&self) -> usize {
        let old = self.old.as_ref().map_or(0, |o| o.slots.len() * std::mem::size_of::<u32>());
        self.slots.len() * std::mem::size_of::<u32>() + old
    }

    /// Looks up the node `(var, lo, hi)` in `slots`/`mask`, returning the
    /// arena index on a hit or the insertion slot on a miss.
    #[inline]
    fn probe(
        slots: &[u32],
        mask: u64,
        nodes: &[Node],
        var: u32,
        lo: u32,
        hi: u32,
    ) -> Result<u32, usize> {
        let mut i = (hash_node(var, lo, hi) & mask) as usize;
        loop {
            let s = slots[i];
            if s == EMPTY {
                return Err(i);
            }
            let n = &nodes[s as usize];
            if n.var == var && n.lo == lo && n.hi == hi {
                return Ok(s);
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Inserts `idx` (which must not already be present) into the current
    /// generation.
    #[inline]
    fn insert_new(&mut self, nodes: &[Node], idx: u32) {
        let n = &nodes[idx as usize];
        match Self::probe(&self.slots, self.mask, nodes, n.var, n.lo, n.hi) {
            Ok(found) => debug_assert_eq!(found, idx, "unique table: duplicate node"),
            Err(slot) => {
                self.slots[slot] = idx;
                self.len += 1;
            }
        }
    }

    /// Advances the in-flight migration by up to `budget` arena entries.
    fn migrate(&mut self, nodes: &[Node], budget: usize) {
        let Some(old) = &mut self.old else { return };
        let end = old.limit.min(old.cursor.saturating_add(budget as u32));
        let (mut cursor, limit) = (old.cursor, old.limit);
        while cursor < end {
            let idx = cursor;
            cursor += 1;
            let n = &nodes[idx as usize];
            match Self::probe(&self.slots, self.mask, nodes, n.var, n.lo, n.hi) {
                Ok(_) => {}
                Err(slot) => {
                    self.slots[slot] = idx;
                    self.len += 1;
                }
            }
        }
        if cursor >= limit {
            self.old = None;
        } else if let Some(o) = &mut self.old {
            o.cursor = cursor;
        }
    }

    /// Finishes any in-flight migration immediately.
    fn drain(&mut self, nodes: &[Node]) {
        while self.old.is_some() {
            self.migrate(nodes, usize::MAX / 2);
        }
    }

    /// Doubles the slot array, starting an incremental rehash. Any previous
    /// rehash is drained first, so at most two generations ever exist.
    fn grow(&mut self, nodes: &[Node]) {
        self.drain(nodes);
        let cap = self.slots.len() * 2;
        getafix_telemetry::event(getafix_telemetry::Phase::Bdd, "unique_rehash", || {
            vec![("old_capacity", self.slots.len().into()), ("new_capacity", cap.into())]
        });
        let fresh = vec![EMPTY; cap];
        let old_slots = std::mem::replace(&mut self.slots, fresh);
        self.old = Some(OldGeneration {
            slots: old_slots,
            mask: self.mask,
            // Index 0 is the terminal node, never hash-consed.
            cursor: 1,
            limit: nodes.len() as u32,
        });
        self.mask = (cap - 1) as u64;
        self.len = 0;
    }

    /// Hash-consing lookup: returns the index of the node `(var, lo, hi)`,
    /// appending it to `nodes` if it does not exist yet.
    pub(crate) fn get_or_insert(
        &mut self,
        nodes: &mut Vec<Node>,
        var: u32,
        lo: u32,
        hi: u32,
    ) -> u32 {
        self.migrate(nodes, MIGRATE_CHUNK);
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow(nodes);
        }
        match Self::probe(&self.slots, self.mask, nodes, var, lo, hi) {
            Ok(idx) => idx,
            Err(slot) => {
                // Not in the current generation; check the old one before
                // allocating. A hit is promoted so repeat lookups stay
                // single-probe.
                if let Some(old) = &self.old {
                    if old.cursor < old.limit {
                        if let Ok(idx) = Self::probe(&old.slots, old.mask, nodes, var, lo, hi) {
                            self.slots[slot] = idx;
                            self.len += 1;
                            return idx;
                        }
                    }
                }
                let idx = nodes.len() as u32;
                assert!(idx < u32::MAX / 2, "BDD arena overflow (2^31 nodes)");
                nodes.push(Node { var, lo, hi });
                self.slots[slot] = idx;
                self.len += 1;
                idx
            }
        }
    }

    /// Rebuilds the table from scratch over `nodes` (used after GC
    /// compaction). Every arena index ≥ 1 is inserted.
    pub(crate) fn rebuild(&mut self, nodes: &[Node]) {
        *self = UniqueTable::with_node_capacity(nodes.len());
        for idx in 1..nodes.len() as u32 {
            self.insert_new(nodes, idx);
        }
    }
}
