//! Model enumeration: iterate the satisfying cubes of a function.

use crate::manager::{Bdd, Manager, Var};

/// Iterator over the satisfying *cubes* of a BDD.
///
/// Each item is a partial assignment — the variables actually tested on one
/// root-to-TRUE path. Variables absent from a cube may take either value.
///
/// # Ordering guarantees
///
/// * **Within a cube** the `(Var, bool)` pairs appear in ascending *level*
///   order (the manager's variable order), top of the diagram first.
/// * **Across cubes** the iterator yields root-to-TRUE paths in depth-first
///   order taking the 0-branch before the 1-branch at every node, i.e.
///   cubes come out in lexicographic order of their branch choices along
///   the variable order. Two different cubes are disjoint as sets of
///   models (they diverge at the first node where their paths split).
/// * The union of the yielded cubes covers exactly the satisfying
///   assignments of the function.
///
/// Produced by [`Manager::cubes`].
///
/// # Example
///
/// ```
/// use getafix_bdd::Manager;
/// let mut m = Manager::new();
/// let x = m.new_var();
/// let y = m.new_var();
/// let fx = m.var(x);
/// let fy = m.var(y);
/// let f = m.or(fx, fy);
/// let cubes: Vec<_> = m.cubes(f).collect();
/// assert_eq!(cubes.len(), 2); // paths: x=0,y=1 and x=1
/// ```
#[derive(Debug)]
pub struct CubeIter<'a> {
    manager: &'a Manager,
    /// DFS stack of (node, path-so-far).
    stack: Vec<(Bdd, Vec<(Var, bool)>)>,
}

impl<'a> Iterator for CubeIter<'a> {
    type Item = Vec<(Var, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, path)) = self.stack.pop() {
            if node.is_true() {
                return Some(path);
            }
            if node.is_false() {
                continue;
            }
            let v = self.manager.root_var(node).expect("non-terminal");
            let lo = self.manager.lo(node);
            let hi = self.manager.hi(node);
            // Push hi first so lo (the 0-branch) is yielded first: cubes come
            // out in lexicographic order of the tested variables.
            let mut hi_path = path.clone();
            hi_path.push((v, true));
            self.stack.push((hi, hi_path));
            let mut lo_path = path;
            lo_path.push((v, false));
            self.stack.push((lo, lo_path));
        }
        None
    }
}

impl Manager {
    /// Iterates over the satisfying cubes of `f` (root-to-TRUE paths).
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter { manager: self, stack: vec![(f, Vec::new())] }
    }

    /// Picks a single *shortest* satisfying cube of `f`: a partial
    /// assignment with the fewest tested variables among all root-to-TRUE
    /// paths (ties broken toward the 0-branch). Variables absent from the
    /// cube may take either value; filling them arbitrarily yields a model.
    ///
    /// Returns `None` iff `f` is unsatisfiable. Pairs are in ascending
    /// level order, like [`Manager::cubes`].
    ///
    /// Unlike [`Manager::pick_one`] (which greedily follows the 1-branch
    /// and may test many variables), `sat_one` minimizes the number of
    /// constrained variables — the "smallest" witness of satisfiability.
    ///
    /// # Example
    ///
    /// ```
    /// use getafix_bdd::Manager;
    /// let mut m = Manager::new();
    /// let x = m.new_var();
    /// let y = m.new_var();
    /// let z = m.new_var();
    /// // f = (x ∧ y) ∨ (x ∧ z). The two root-to-TRUE paths are
    /// // {x=1, y=1} and {x=1, y=0, z=1}; the shorter one wins.
    /// let f = {
    ///     let (fx, fy, fz) = (m.var(x), m.var(y), m.var(z));
    ///     let xy = m.and(fx, fy);
    ///     let xz = m.and(fx, fz);
    ///     m.or(xy, xz)
    /// };
    /// assert_eq!(m.sat_one(f), Some(vec![(x, true), (y, true)]));
    /// assert_eq!(m.sat_one(m.constant(false)), None);
    /// assert_eq!(m.sat_one(m.constant(true)), Some(vec![]));
    /// ```
    pub fn sat_one(&self, f: Bdd) -> Option<Vec<(Var, bool)>> {
        if f.is_false() {
            return None;
        }
        // DP over the DAG: depth(node) = length of its shortest path to
        // TRUE (∞ when TRUE is unreachable, i.e. the node is FALSE).
        let mut depth: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        fn measure(
            m: &Manager,
            f: Bdd,
            depth: &mut std::collections::HashMap<u32, usize>,
        ) -> usize {
            if f.is_true() {
                return 0;
            }
            if f.is_false() {
                return usize::MAX;
            }
            if let Some(&d) = depth.get(&f.index()) {
                return d;
            }
            let lo = measure(m, m.lo(f), depth);
            let hi = measure(m, m.hi(f), depth);
            let d = lo.min(hi).saturating_add(1);
            depth.insert(f.index(), d);
            d
        }
        measure(self, f, &mut depth);
        // Walk greedily along the shortest side; prefer lo on ties.
        let mut cube = Vec::new();
        let mut cur = f;
        while !cur.is_true() {
            let v = self.root_var(cur).expect("non-terminal");
            let (lo, hi) = (self.lo(cur), self.hi(cur));
            let d = |n: Bdd| -> usize {
                if n.is_true() {
                    0
                } else if n.is_false() {
                    usize::MAX
                } else {
                    depth[&n.index()]
                }
            };
            if d(lo) <= d(hi) {
                cube.push((v, false));
                cur = lo;
            } else {
                cube.push((v, true));
                cur = hi;
            }
        }
        Some(cube)
    }

    /// Constrained extraction: a shortest satisfying cube of `f` *under*
    /// the partial assignment `fixed`. The returned cube starts with every
    /// pair of `fixed` (in the given order) followed by the shortest cube
    /// of the restricted function, so it is always consistent with `fixed`.
    ///
    /// Returns `None` when `f ∧ fixed` is unsatisfiable.
    ///
    /// # Example
    ///
    /// ```
    /// use getafix_bdd::Manager;
    /// let mut m = Manager::new();
    /// let x = m.new_var();
    /// let y = m.new_var();
    /// // f = x ∨ y. Under x = 0, the witness must set y = 1.
    /// let f = {
    ///     let (fx, fy) = (m.var(x), m.var(y));
    ///     m.or(fx, fy)
    /// };
    /// assert_eq!(m.sat_one_under(f, &[(x, false)]), Some(vec![(x, false), (y, true)]));
    /// assert_eq!(m.sat_one_under(f, &[(x, true)]), Some(vec![(x, true)]));
    /// ```
    pub fn sat_one_under(&mut self, f: Bdd, fixed: &[(Var, bool)]) -> Option<Vec<(Var, bool)>> {
        let mut g = f;
        for &(v, b) in fixed {
            g = self.restrict(g, v, b);
        }
        let rest = self.sat_one(g)?;
        let mut cube: Vec<(Var, bool)> = fixed.to_vec();
        cube.extend(rest);
        Some(cube)
    }

    /// Enumerates *total* satisfying assignments of `f` over the variables
    /// `vars`, expanding the don't-cares in each cube.
    ///
    /// Intended for tests and tiny relations; the result can be exponential.
    pub fn all_models(&self, f: Bdd, vars: &[Var]) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        for cube in self.cubes(f) {
            let fixed: std::collections::HashMap<u32, bool> =
                cube.iter().map(|&(v, b)| (v.0, b)).collect();
            let free: Vec<usize> = vars
                .iter()
                .enumerate()
                .filter(|(_, v)| !fixed.contains_key(&v.0))
                .map(|(i, _)| i)
                .collect();
            let mut base: Vec<bool> =
                vars.iter().map(|v| fixed.get(&v.0).copied().unwrap_or(false)).collect();
            let combos = 1usize << free.len();
            for bits in 0..combos {
                for (j, &idx) in free.iter().enumerate() {
                    base[idx] = (bits >> j) & 1 == 1;
                }
                out.push(base.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubes_of_constants() {
        let m = Manager::new();
        assert_eq!(m.cubes(Bdd::FALSE).count(), 0);
        let cubes: Vec<_> = m.cubes(Bdd::TRUE).collect();
        assert_eq!(cubes, vec![Vec::new()]);
    }

    #[test]
    fn cubes_cover_exactly_the_models() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        // f = (v0 ∧ v1) ∨ ¬v2  — check via all_models against eval.
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let ab = m.and(a, b);
            let nc = m.nvar(v[2]);
            m.or(ab, nc)
        };
        let models = m.all_models(f, &v);
        let mut expect = Vec::new();
        for bits in 0..8u32 {
            let a = [(bits & 1) == 1, (bits & 2) == 2, (bits & 4) == 4];
            if m.eval(f, &a) {
                expect.push(a.to_vec());
            }
        }
        expect.sort();
        assert_eq!(models, expect);
    }

    #[test]
    fn sat_one_is_shortest_and_satisfying() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        // f = (v0 ∧ v1 ∧ v2) ∨ (v1 ∧ v3) ∨ v2 — shortest cube is {v2 = 1}.
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let d = m.var(v[3]);
            let ab = m.and(a, b);
            let abc = m.and(ab, c);
            let bd = m.and(b, d);
            let x = m.or(abc, bd);
            m.or(x, c)
        };
        let cube = m.sat_one(f).expect("satisfiable");
        // Every cube of the function has ≥ 1 literal; ours must be minimal
        // across all cubes the iterator yields.
        let min = m.cubes(f).map(|c| c.len()).min().unwrap();
        assert_eq!(cube.len(), min);
        // Filling don't-cares with false is a model.
        let mut env = vec![false; 4];
        for &(var, val) in &cube {
            env[var.level() as usize] = val;
        }
        assert!(m.eval(f, &env));
    }

    #[test]
    fn sat_one_under_respects_fixed_bits() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        // f = (v0 ∧ v1) ∨ (¬v0 ∧ v2)
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let na = m.nvar(v[0]);
            let c = m.var(v[2]);
            let p = m.and(a, b);
            let q = m.and(na, c);
            m.or(p, q)
        };
        let cube = m.sat_one_under(f, &[(v[0], false)]).expect("satisfiable under v0=0");
        assert!(cube.contains(&(v[0], false)));
        let mut env = vec![false; 3];
        for &(var, val) in &cube {
            env[var.level() as usize] = val;
        }
        assert!(m.eval(f, &env));
        // Unsatisfiable restriction.
        let g = m.var(v[0]);
        assert_eq!(m.sat_one_under(g, &[(v[0], false)]), None);
    }

    #[test]
    fn model_count_matches_sat_count() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let x = m.xor(a, b);
            m.or(x, c)
        };
        let models = m.all_models(f, &v);
        assert_eq!(models.len() as f64, m.sat_count(f, 4));
    }
}
