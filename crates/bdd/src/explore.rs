//! Model enumeration: iterate the satisfying cubes of a function.

use crate::manager::{Bdd, Manager, Var};

/// Iterator over the satisfying *cubes* of a BDD.
///
/// Each item is a partial assignment — the variables actually tested on one
/// root-to-TRUE path, in level order. Variables absent from a cube may take
/// either value.
///
/// Produced by [`Manager::cubes`].
///
/// # Example
///
/// ```
/// use getafix_bdd::Manager;
/// let mut m = Manager::new();
/// let x = m.new_var();
/// let y = m.new_var();
/// let fx = m.var(x);
/// let fy = m.var(y);
/// let f = m.or(fx, fy);
/// let cubes: Vec<_> = m.cubes(f).collect();
/// assert_eq!(cubes.len(), 2); // paths: x=0,y=1 and x=1
/// ```
#[derive(Debug)]
pub struct CubeIter<'a> {
    manager: &'a Manager,
    /// DFS stack of (node, path-so-far).
    stack: Vec<(Bdd, Vec<(Var, bool)>)>,
}

impl<'a> Iterator for CubeIter<'a> {
    type Item = Vec<(Var, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, path)) = self.stack.pop() {
            if node.is_true() {
                return Some(path);
            }
            if node.is_false() {
                continue;
            }
            let v = self.manager.root_var(node).expect("non-terminal");
            let lo = self.manager.lo(node);
            let hi = self.manager.hi(node);
            // Push hi first so lo (the 0-branch) is yielded first: cubes come
            // out in lexicographic order of the tested variables.
            let mut hi_path = path.clone();
            hi_path.push((v, true));
            self.stack.push((hi, hi_path));
            let mut lo_path = path;
            lo_path.push((v, false));
            self.stack.push((lo, lo_path));
        }
        None
    }
}

impl Manager {
    /// Iterates over the satisfying cubes of `f` (root-to-TRUE paths).
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter { manager: self, stack: vec![(f, Vec::new())] }
    }

    /// Enumerates *total* satisfying assignments of `f` over the variables
    /// `vars`, expanding the don't-cares in each cube.
    ///
    /// Intended for tests and tiny relations; the result can be exponential.
    pub fn all_models(&self, f: Bdd, vars: &[Var]) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        for cube in self.cubes(f) {
            let fixed: std::collections::HashMap<u32, bool> =
                cube.iter().map(|&(v, b)| (v.0, b)).collect();
            let free: Vec<usize> = vars
                .iter()
                .enumerate()
                .filter(|(_, v)| !fixed.contains_key(&v.0))
                .map(|(i, _)| i)
                .collect();
            let mut base: Vec<bool> =
                vars.iter().map(|v| fixed.get(&v.0).copied().unwrap_or(false)).collect();
            let combos = 1usize << free.len();
            for bits in 0..combos {
                for (j, &idx) in free.iter().enumerate() {
                    base[idx] = (bits >> j) & 1 == 1;
                }
                out.push(base.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubes_of_constants() {
        let m = Manager::new();
        assert_eq!(m.cubes(Bdd::FALSE).count(), 0);
        let cubes: Vec<_> = m.cubes(Bdd::TRUE).collect();
        assert_eq!(cubes, vec![Vec::new()]);
    }

    #[test]
    fn cubes_cover_exactly_the_models() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        // f = (v0 ∧ v1) ∨ ¬v2  — check via all_models against eval.
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let ab = m.and(a, b);
            let nc = m.nvar(v[2]);
            m.or(ab, nc)
        };
        let models = m.all_models(f, &v);
        let mut expect = Vec::new();
        for bits in 0..8u32 {
            let a = [(bits & 1) == 1, (bits & 2) == 2, (bits & 4) == 4];
            if m.eval(f, &a) {
                expect.push(a.to_vec());
            }
        }
        expect.sort();
        assert_eq!(models, expect);
    }

    #[test]
    fn model_count_matches_sat_count() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let x = m.xor(a, b);
            m.or(x, c)
        };
        let models = m.all_models(f, &v);
        assert_eq!(models.len() as f64, m.sat_count(f, 4));
    }
}
