//! Model enumeration and DAG exploration: satisfying cubes, shortest
//! witnesses, node counting and support computation.
//!
//! All walks here are complement-edge-agnostic: they traverse through the
//! parity-applying cofactor accessors ([`Manager::lo`], [`Manager::hi`]),
//! so a path through a complemented edge sees exactly the cofactors of the
//! *function*, not of the stored node. Node-counting walks, by contrast,
//! deliberately ignore the complement bit — `f` and `¬f` share a DAG, and
//! the honest memory footprint counts each arena node once.

use crate::manager::{Bdd, Manager, Var};

/// Reusable visited-set for DAG walks, keyed by arena index.
///
/// A dense bitset plus a scratch stack: membership tests are one shift and
/// mask (no hashing), and repeat calls reuse the buffers — clearing is a
/// `memset` over exactly the words a walk can touch, and no allocation
/// happens once the buffers have grown to the arena size.
#[derive(Debug, Default)]
pub(crate) struct VisitSet {
    words: Vec<u64>,
    stack: Vec<u32>,
}

impl VisitSet {
    /// Prepares for a walk over an arena of `nodes` entries: clears (and,
    /// if needed, grows) the bitset.
    fn begin(&mut self, nodes: usize) {
        let w = nodes.div_ceil(64);
        if self.words.len() < w {
            self.words.clear();
            self.words.resize(w, 0);
        } else {
            self.words[..w].fill(0);
        }
        self.stack.clear();
    }

    /// Marks arena index `idx` visited; returns whether it was new.
    #[inline]
    fn insert(&mut self, idx: u32) -> bool {
        let w = (idx >> 6) as usize;
        let bit = 1u64 << (idx & 63);
        let new = self.words[w] & bit == 0;
        self.words[w] |= bit;
        new
    }
}

/// Iterator over the satisfying *cubes* of a BDD.
///
/// Each item is a partial assignment — the variables actually tested on one
/// root-to-TRUE path. Variables absent from a cube may take either value.
///
/// # Ordering guarantees
///
/// * **Within a cube** the `(Var, bool)` pairs appear in ascending *level*
///   order (the manager's variable order), top of the diagram first.
/// * **Across cubes** the iterator yields root-to-TRUE paths in depth-first
///   order taking the 0-branch before the 1-branch at every node, i.e.
///   cubes come out in lexicographic order of their branch choices along
///   the variable order. Two different cubes are disjoint as sets of
///   models (they diverge at the first node where their paths split).
/// * The union of the yielded cubes covers exactly the satisfying
///   assignments of the function.
///
/// These guarantees are stated over the *function*, independent of the
/// complement-edge encoding: branch directions are those of the parity-
/// applied cofactors, so the same function yields the same cube sequence
/// whether its handle happens to be complemented or not.
///
/// Produced by [`Manager::cubes`].
///
/// # Example
///
/// ```
/// use getafix_bdd::Manager;
/// let mut m = Manager::new();
/// let x = m.new_var();
/// let y = m.new_var();
/// let fx = m.var(x);
/// let fy = m.var(y);
/// let f = m.or(fx, fy);
/// let cubes: Vec<_> = m.cubes(f).collect();
/// assert_eq!(cubes.len(), 2); // paths: x=0,y=1 and x=1
/// ```
#[derive(Debug)]
pub struct CubeIter<'a> {
    manager: &'a Manager,
    /// DFS stack of (node, path-so-far).
    stack: Vec<(Bdd, Vec<(Var, bool)>)>,
}

impl<'a> Iterator for CubeIter<'a> {
    type Item = Vec<(Var, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, path)) = self.stack.pop() {
            if node.is_true() {
                return Some(path);
            }
            if node.is_false() {
                continue;
            }
            let v = self.manager.root_var(node).expect("non-terminal");
            let lo = self.manager.lo(node);
            let hi = self.manager.hi(node);
            // Push hi first so lo (the 0-branch) is yielded first: cubes come
            // out in lexicographic order of the tested variables.
            let mut hi_path = path.clone();
            hi_path.push((v, true));
            self.stack.push((hi, hi_path));
            let mut lo_path = path;
            lo_path.push((v, false));
            self.stack.push((lo, lo_path));
        }
        None
    }
}

impl Manager {
    /// Iterates over the satisfying cubes of `f` (root-to-TRUE paths).
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter { manager: self, stack: vec![(f, Vec::new())] }
    }

    /// Picks a single *shortest* satisfying cube of `f`: a partial
    /// assignment with the fewest tested variables among all root-to-TRUE
    /// paths (ties broken toward the 0-branch). Variables absent from the
    /// cube may take either value; filling them arbitrarily yields a model.
    ///
    /// Returns `None` iff `f` is unsatisfiable. Pairs are in ascending
    /// level order, like [`Manager::cubes`].
    ///
    /// Unlike [`Manager::pick_one`] (which greedily follows the 1-branch
    /// and may test many variables), `sat_one` minimizes the number of
    /// constrained variables — the "smallest" witness of satisfiability.
    ///
    /// # Example
    ///
    /// ```
    /// use getafix_bdd::Manager;
    /// let mut m = Manager::new();
    /// let x = m.new_var();
    /// let y = m.new_var();
    /// let z = m.new_var();
    /// // f = (x ∧ y) ∨ (x ∧ z). The two root-to-TRUE paths are
    /// // {x=1, y=1} and {x=1, y=0, z=1}; the shorter one wins.
    /// let f = {
    ///     let (fx, fy, fz) = (m.var(x), m.var(y), m.var(z));
    ///     let xy = m.and(fx, fy);
    ///     let xz = m.and(fx, fz);
    ///     m.or(xy, xz)
    /// };
    /// assert_eq!(m.sat_one(f), Some(vec![(x, true), (y, true)]));
    /// assert_eq!(m.sat_one(m.constant(false)), None);
    /// assert_eq!(m.sat_one(m.constant(true)), Some(vec![]));
    /// ```
    pub fn sat_one(&self, f: Bdd) -> Option<Vec<(Var, bool)>> {
        if f.is_false() {
            return None;
        }
        // DP over the DAG: depth(handle) = length of its shortest path to
        // TRUE (∞ when TRUE is unreachable). Keyed on the full handle —
        // with complement edges, `f` and `¬f` reach TRUE along different
        // paths even though they share nodes.
        let mut depth: crate::hasher::FxHashMap<u32, usize> = crate::hasher::FxHashMap::default();
        fn measure(m: &Manager, f: Bdd, depth: &mut crate::hasher::FxHashMap<u32, usize>) -> usize {
            if f.is_true() {
                return 0;
            }
            if f.is_false() {
                return usize::MAX;
            }
            if let Some(&d) = depth.get(&f.index()) {
                return d;
            }
            let lo = measure(m, m.lo(f), depth);
            let hi = measure(m, m.hi(f), depth);
            let d = lo.min(hi).saturating_add(1);
            depth.insert(f.index(), d);
            d
        }
        measure(self, f, &mut depth);
        // Walk greedily along the shortest side; prefer lo on ties.
        let mut cube = Vec::new();
        let mut cur = f;
        while !cur.is_true() {
            let v = self.root_var(cur).expect("non-terminal");
            let (lo, hi) = (self.lo(cur), self.hi(cur));
            let d = |n: Bdd| -> usize {
                if n.is_true() {
                    0
                } else if n.is_false() {
                    usize::MAX
                } else {
                    depth[&n.index()]
                }
            };
            if d(lo) <= d(hi) {
                cube.push((v, false));
                cur = lo;
            } else {
                cube.push((v, true));
                cur = hi;
            }
        }
        Some(cube)
    }

    /// Constrained extraction: a shortest satisfying cube of `f` *under*
    /// the partial assignment `fixed`. The returned cube starts with every
    /// pair of `fixed` (in the given order) followed by the shortest cube
    /// of the restricted function, so it is always consistent with `fixed`.
    ///
    /// Returns `None` when `f ∧ fixed` is unsatisfiable.
    ///
    /// # Example
    ///
    /// ```
    /// use getafix_bdd::Manager;
    /// let mut m = Manager::new();
    /// let x = m.new_var();
    /// let y = m.new_var();
    /// // f = x ∨ y. Under x = 0, the witness must set y = 1.
    /// let f = {
    ///     let (fx, fy) = (m.var(x), m.var(y));
    ///     m.or(fx, fy)
    /// };
    /// assert_eq!(m.sat_one_under(f, &[(x, false)]), Some(vec![(x, false), (y, true)]));
    /// assert_eq!(m.sat_one_under(f, &[(x, true)]), Some(vec![(x, true)]));
    /// ```
    pub fn sat_one_under(&mut self, f: Bdd, fixed: &[(Var, bool)]) -> Option<Vec<(Var, bool)>> {
        let g = self.restrict_many(f, fixed);
        let rest = self.sat_one(g)?;
        let mut cube: Vec<(Var, bool)> = fixed.to_vec();
        cube.extend(rest);
        Some(cube)
    }

    /// The number of nodes in the DAG rooted at `f` (terminal included).
    ///
    /// With complement edges a function and its negation share every node,
    /// so `node_count(f) == node_count(¬f)`.
    pub fn node_count(&self, f: Bdd) -> usize {
        self.node_count_many(std::slice::from_ref(&f))
    }

    /// The number of distinct DAG nodes reachable from any of `roots`
    /// (shared structure counted once, the terminal included). This is the
    /// honest memory footprint of a *set* of functions — summing
    /// [`Manager::node_count`] per root would double-count shared subgraphs.
    ///
    /// Visited nodes are tracked in a reusable bitset keyed by arena index:
    /// O(1) per node with no hashing, and zero allocation on repeat calls
    /// once the scratch buffers have grown to the arena size.
    pub fn node_count_many(&self, roots: &[Bdd]) -> usize {
        let mut visit = self.visit.borrow_mut();
        visit.begin(self.nodes.len());
        let mut count = 0usize;
        for r in roots {
            let i = r.node_index();
            if visit.insert(i) {
                count += 1;
                if i > 0 {
                    visit.stack.push(i);
                }
            }
        }
        while let Some(i) = visit.stack.pop() {
            let n = self.nodes[i as usize];
            for edge in [n.lo, n.hi] {
                let j = edge >> 1;
                if visit.insert(j) {
                    count += 1;
                    if j > 0 {
                        visit.stack.push(j);
                    }
                }
            }
        }
        count
    }

    /// The set of variables appearing in `f`, in increasing level order.
    pub fn support(&self, f: Bdd) -> Vec<Var> {
        let mut visit = self.visit.borrow_mut();
        visit.begin(self.nodes.len());
        let mut vars = std::collections::BTreeSet::new();
        let i = f.node_index();
        if i > 0 && visit.insert(i) {
            visit.stack.push(i);
        }
        while let Some(i) = visit.stack.pop() {
            let n = self.nodes[i as usize];
            vars.insert(n.var);
            for edge in [n.lo, n.hi] {
                let j = edge >> 1;
                if j > 0 && visit.insert(j) {
                    visit.stack.push(j);
                }
            }
        }
        vars.into_iter().map(Var).collect()
    }

    /// Enumerates *total* satisfying assignments of `f` over the variables
    /// `vars`, expanding the don't-cares in each cube.
    ///
    /// Intended for tests and tiny relations; the result can be exponential.
    pub fn all_models(&self, f: Bdd, vars: &[Var]) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        for cube in self.cubes(f) {
            let fixed: std::collections::HashMap<u32, bool> =
                cube.iter().map(|&(v, b)| (v.0, b)).collect();
            let free: Vec<usize> = vars
                .iter()
                .enumerate()
                .filter(|(_, v)| !fixed.contains_key(&v.0))
                .map(|(i, _)| i)
                .collect();
            let mut base: Vec<bool> =
                vars.iter().map(|v| fixed.get(&v.0).copied().unwrap_or(false)).collect();
            let combos = 1usize << free.len();
            for bits in 0..combos {
                for (j, &idx) in free.iter().enumerate() {
                    base[idx] = (bits >> j) & 1 == 1;
                }
                out.push(base.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubes_of_constants() {
        let m = Manager::new();
        assert_eq!(m.cubes(Bdd::FALSE).count(), 0);
        let cubes: Vec<_> = m.cubes(Bdd::TRUE).collect();
        assert_eq!(cubes, vec![Vec::new()]);
    }

    #[test]
    fn cubes_cover_exactly_the_models() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        // f = (v0 ∧ v1) ∨ ¬v2  — check via all_models against eval.
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let ab = m.and(a, b);
            let nc = m.nvar(v[2]);
            m.or(ab, nc)
        };
        let models = m.all_models(f, &v);
        let mut expect = Vec::new();
        for bits in 0..8u32 {
            let a = [(bits & 1) == 1, (bits & 2) == 2, (bits & 4) == 4];
            if m.eval(f, &a) {
                expect.push(a.to_vec());
            }
        }
        expect.sort();
        assert_eq!(models, expect);
    }

    #[test]
    fn sat_one_is_shortest_and_satisfying() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        // f = (v0 ∧ v1 ∧ v2) ∨ (v1 ∧ v3) ∨ v2 — shortest cube is {v2 = 1}.
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let d = m.var(v[3]);
            let ab = m.and(a, b);
            let abc = m.and(ab, c);
            let bd = m.and(b, d);
            let x = m.or(abc, bd);
            m.or(x, c)
        };
        let cube = m.sat_one(f).expect("satisfiable");
        // Every cube of the function has ≥ 1 literal; ours must be minimal
        // across all cubes the iterator yields.
        let min = m.cubes(f).map(|c| c.len()).min().unwrap();
        assert_eq!(cube.len(), min);
        // Filling don't-cares with false is a model.
        let mut env = vec![false; 4];
        for &(var, val) in &cube {
            env[var.level() as usize] = val;
        }
        assert!(m.eval(f, &env));
    }

    #[test]
    fn sat_one_under_respects_fixed_bits() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        // f = (v0 ∧ v1) ∨ (¬v0 ∧ v2)
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let na = m.nvar(v[0]);
            let c = m.var(v[2]);
            let p = m.and(a, b);
            let q = m.and(na, c);
            m.or(p, q)
        };
        let cube = m.sat_one_under(f, &[(v[0], false)]).expect("satisfiable under v0=0");
        assert!(cube.contains(&(v[0], false)));
        let mut env = vec![false; 3];
        for &(var, val) in &cube {
            env[var.level() as usize] = val;
        }
        assert!(m.eval(f, &env));
        // Unsatisfiable restriction.
        let g = m.var(v[0]);
        assert_eq!(m.sat_one_under(g, &[(v[0], false)]), None);
    }

    #[test]
    fn model_count_matches_sat_count() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let x = m.xor(a, b);
            m.or(x, c)
        };
        let models = m.all_models(f, &v);
        assert_eq!(models.len() as f64, m.sat_count(f, 4));
    }

    #[test]
    fn support_and_node_count() {
        let mut m = Manager::new();
        let a = m.new_var();
        let _skip = m.new_var();
        let c = m.new_var();
        let fa = m.var(a);
        let fc = m.var(c);
        let f = m.and(fa, fc);
        assert_eq!(m.support(f), vec![a, c]);
        // nodes: a-node, c-node and the shared terminal (complement edges
        // collapse TRUE and FALSE onto one node).
        assert_eq!(m.node_count(f), 3);
        // A function and its complement share the whole DAG.
        let nf = m.not(f);
        assert_eq!(m.node_count(nf), 3);
        assert_eq!(m.node_count_many(&[f, nf]), 3);
    }

    #[test]
    fn node_count_reuses_scratch_without_allocating() {
        let mut m = Manager::new();
        let v = m.new_vars(6);
        let mut f = Bdd::FALSE;
        for &var in &v {
            let a = m.var(var);
            f = m.xor(f, a);
        }
        let first = m.node_count(f);
        // Repeat calls must agree (the bitset is cleared correctly) and
        // walk the same DAG.
        for _ in 0..10 {
            assert_eq!(m.node_count(f), first);
        }
        let g = m.var(v[0]);
        assert_eq!(m.node_count(g), 2);
        assert_eq!(m.node_count(f), first);
    }
}
