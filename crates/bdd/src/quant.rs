//! Quantification: `∃`, `∀` and the fused relational product `∃x. f ∧ g`.
//!
//! Variable sets are passed as *cubes* — conjunctions of positive literals —
//! built with [`Manager::cube`]. Cubes are ordinary BDDs, so they are
//! hash-consed and make excellent cache keys.

use crate::manager::{Bdd, Manager, Var};

impl Manager {
    /// Builds the positive cube `v₀ ∧ v₁ ∧ …` over `vars`.
    ///
    /// The variable list may be in any order and may contain duplicates.
    pub fn cube(&mut self, vars: &[Var]) -> Bdd {
        let mut sorted: Vec<Var> = vars.to_vec();
        sorted.sort();
        sorted.dedup();
        // Build bottom-up so each mk call respects the order invariant.
        let mut acc = Bdd::TRUE;
        for v in sorted.into_iter().rev() {
            acc = self.mk(v.0, Bdd::FALSE, acc);
        }
        acc
    }

    /// Existential quantification `∃ vars. f` with `vars` given as a cube.
    pub fn exists(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        debug_assert!(self.is_cube(cube), "exists: second argument must be a positive cube");
        self.exists_rec(f, cube)
    }

    /// Existential quantification over a single variable.
    pub fn exists_one(&mut self, f: Bdd, v: Var) -> Bdd {
        let cube = self.cube(&[v]);
        self.exists(f, cube)
    }

    /// Existential quantification over a list of variables.
    pub fn exists_vars(&mut self, f: Bdd, vars: &[Var]) -> Bdd {
        let cube = self.cube(vars);
        self.exists(f, cube)
    }

    /// Universal quantification `∀ vars. f`, via `¬∃ vars. ¬f`.
    pub fn forall(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        let nf = self.not(f);
        let e = self.exists(nf, cube);
        self.not(e)
    }

    /// Universal quantification over a list of variables.
    pub fn forall_vars(&mut self, f: Bdd, vars: &[Var]) -> Bdd {
        let cube = self.cube(vars);
        self.forall(f, cube)
    }

    /// The relational product `∃ cube. f ∧ g`, fused so the conjunction is
    /// never fully materialized. This is the workhorse of every symbolic
    /// fixed-point step (image computation).
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Bdd {
        debug_assert!(self.is_cube(cube), "and_exists: third argument must be a positive cube");
        self.and_exists_rec(f, g, cube)
    }

    fn exists_rec(&mut self, f: Bdd, mut cube: Bdd) -> Bdd {
        if f.is_const() || cube.is_true() {
            return f;
        }
        let fl = self.level(f);
        // Skip quantified variables that can no longer occur in f.
        while !cube.is_true() && self.level(cube) < fl {
            cube = self.hi(cube);
        }
        if cube.is_true() {
            return f;
        }
        if let Some(r) = self.caches.exists_get(f, cube) {
            return r;
        }
        let (f0, f1) = self.cof(f);
        let r = if fl == self.level(cube) {
            let rest = self.hi(cube);
            let lo = self.exists_rec(f0, rest);
            if lo.is_true() {
                // Short-circuit: lo ∨ hi is already TRUE.
                Bdd::TRUE
            } else {
                let hi = self.exists_rec(f1, rest);
                self.or(lo, hi)
            }
        } else {
            let lo = self.exists_rec(f0, cube);
            let hi = self.exists_rec(f1, cube);
            self.mk(fl, lo, hi)
        };
        self.caches.exists_put(f, cube, r);
        r
    }

    fn and_exists_rec(&mut self, mut f: Bdd, mut g: Bdd, mut cube: Bdd) -> Bdd {
        // Terminal rules for the conjunction.
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() && g.is_true() {
            return Bdd::TRUE;
        }
        if f.0 ^ 1 == g.0 {
            // f ∧ ¬f under any quantification is still false.
            return Bdd::FALSE;
        }
        if f.is_true() {
            return self.exists_rec(g, cube);
        }
        if g.is_true() || f == g {
            return self.exists_rec(f, cube);
        }
        if cube.is_true() {
            return self.and(f, g);
        }
        if f.0 > g.0 {
            std::mem::swap(&mut f, &mut g);
        }
        let top = self.level(f).min(self.level(g));
        while !cube.is_true() && self.level(cube) < top {
            cube = self.hi(cube);
        }
        if cube.is_true() {
            return self.and(f, g);
        }
        if let Some(r) = self.caches.and_exists_get(f, g, cube) {
            return r;
        }
        let (f0, f1) = self.cof_at(f, top);
        let (g0, g1) = self.cof_at(g, top);
        let r = if self.level(cube) == top {
            let rest = self.hi(cube);
            let lo = self.and_exists_rec(f0, g0, rest);
            if lo.is_true() {
                Bdd::TRUE
            } else {
                let hi = self.and_exists_rec(f1, g1, rest);
                self.or(lo, hi)
            }
        } else {
            let lo = self.and_exists_rec(f0, g0, cube);
            let hi = self.and_exists_rec(f1, g1, cube);
            self.mk(top, lo, hi)
        };
        self.caches.and_exists_put(f, g, cube, r);
        r
    }

    /// Builds the mixed-polarity literal cube `l₀ ∧ l₁ ∧ …` where `lᵢ` is
    /// `v` or `¬v` per the paired boolean. Duplicates are allowed when
    /// consistent; contradictory literals yield [`Bdd::FALSE`].
    pub fn literal_cube(&mut self, literals: &[(Var, bool)]) -> Bdd {
        let mut sorted: Vec<(Var, bool)> = literals.to_vec();
        sorted.sort();
        sorted.dedup();
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                return Bdd::FALSE; // v ∧ ¬v
            }
        }
        let mut acc = Bdd::TRUE;
        for (v, positive) in sorted.into_iter().rev() {
            acc = if positive {
                self.mk(v.0, Bdd::FALSE, acc)
            } else {
                self.mk(v.0, acc, Bdd::FALSE)
            };
        }
        acc
    }

    /// The generalized cofactor of `f` by a (mixed-polarity) literal
    /// `cube`, built with [`Manager::literal_cube`]: every variable the
    /// cube constrains is fixed to its literal's polarity and removed —
    /// equal to chaining [`Manager::restrict`] per literal, but a single
    /// traversal with a single cache entry, which is what the witness
    /// extractor's configuration-pinning hot path wants.
    pub fn restrict_cube(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        debug_assert!(self.is_literal_cube(cube), "restrict_cube: not a literal cube");
        if cube.is_false() {
            // A contradictory cube constrains nothing meaningfully; treat
            // it as the empty restriction of FALSE.
            return Bdd::FALSE;
        }
        self.restrict_cube_rec(f, cube)
    }

    /// Per-pair convenience wrapper over [`Manager::restrict_cube`].
    pub fn restrict_many(&mut self, f: Bdd, fixed: &[(Var, bool)]) -> Bdd {
        let cube = self.literal_cube(fixed);
        self.restrict_cube(f, cube)
    }

    fn restrict_cube_rec(&mut self, f: Bdd, mut cube: Bdd) -> Bdd {
        if f.is_const() || cube.is_true() {
            return f;
        }
        // Skip cube literals above f's root: they constrain variables f no
        // longer tests.
        let fl = self.level(f);
        while !cube.is_true() && self.level(cube) < fl {
            let (lo, hi) = self.cof(cube);
            cube = if lo.is_false() { hi } else { lo };
        }
        if cube.is_true() {
            return f;
        }
        // Restriction commutes with complement: cache regular handles only.
        let c = f.parity();
        let g = Bdd(f.0 ^ c);
        if let Some(r) = self.caches.cofactor_get(g, cube) {
            return Bdd(r.0 ^ c);
        }
        let (g0, g1) = self.cof(g);
        let r = if fl == self.level(cube) {
            let (clo, chi) = self.cof(cube);
            if clo.is_false() {
                self.restrict_cube_rec(g1, chi)
            } else {
                self.restrict_cube_rec(g0, clo)
            }
        } else {
            let lo = self.restrict_cube_rec(g0, cube);
            let hi = self.restrict_cube_rec(g1, cube);
            self.mk(fl, lo, hi)
        };
        self.caches.cofactor_put(g, cube, r);
        Bdd(r.0 ^ c)
    }

    /// Is `f` a literal cube (every node has a FALSE cofactor, ending in
    /// TRUE — polarities arbitrary)? Used in debug assertions.
    pub fn is_literal_cube(&self, f: Bdd) -> bool {
        if f.is_false() {
            return true; // contradictory cube
        }
        let mut cur = f;
        while !cur.is_const() {
            let (lo, hi) = self.cof(cur);
            cur = match (lo.is_false(), hi.is_false()) {
                (true, _) => hi,
                (_, true) => lo,
                _ => return false,
            };
        }
        cur.is_true()
    }

    /// Is `f` a positive cube (every node's low cofactor is FALSE, ending
    /// in TRUE)? Used in debug assertions.
    pub fn is_cube(&self, f: Bdd) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let (lo, hi) = self.cof(cur);
            if lo != Bdd::FALSE {
                return false;
            }
            cur = hi;
        }
        cur.is_true()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Manager, Vec<Var>) {
        let mut m = Manager::new();
        let vars = m.new_vars(n);
        (m, vars)
    }

    #[test]
    fn cube_structure() {
        let (mut m, v) = setup(3);
        let c = m.cube(&[v[2], v[0]]);
        assert!(m.is_cube(c));
        assert_eq!(m.support(c), vec![v[0], v[2]]);
        // Duplicates are fine.
        let c2 = m.cube(&[v[0], v[2], v[0]]);
        assert_eq!(c, c2);
        assert_eq!(m.cube(&[]), Bdd::TRUE);
    }

    #[test]
    fn exists_removes_var() {
        let (mut m, v) = setup(2);
        let fa = m.var(v[0]);
        let fb = m.var(v[1]);
        let f = m.and(fa, fb);
        let e = m.exists_one(f, v[1]);
        assert_eq!(e, fa);
        let e2 = m.exists_vars(f, &[v[0], v[1]]);
        assert!(e2.is_true());
    }

    #[test]
    fn exists_or_distributes() {
        // ∃x.(f ∨ g) == (∃x.f) ∨ (∃x.g)
        let (mut m, v) = setup(3);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            m.and(a, b)
        };
        let g = {
            let b = m.nvar(v[1]);
            let c = m.var(v[2]);
            m.and(b, c)
        };
        let fg = m.or(f, g);
        let left = m.exists_one(fg, v[1]);
        let ef = m.exists_one(f, v[1]);
        let eg = m.exists_one(g, v[1]);
        let right = m.or(ef, eg);
        assert_eq!(left, right);
    }

    #[test]
    fn forall_dual() {
        let (mut m, v) = setup(2);
        let fa = m.var(v[0]);
        let fb = m.var(v[1]);
        let f = m.or(fa, fb);
        // ∀b. a ∨ b == a
        let g = m.forall_vars(f, &[v[1]]);
        assert_eq!(g, fa);
        // ∀a,b. a ∨ b == false
        let h = m.forall_vars(f, &[v[0], v[1]]);
        assert!(h.is_false());
    }

    #[test]
    fn and_exists_matches_unfused() {
        let (mut m, v) = setup(4);
        // f = (v0 ↔ v2) ∧ v1 ; g = (v2 ∨ v3)
        let f = {
            let a = m.var(v[0]);
            let c = m.var(v[2]);
            let eq = m.iff(a, c);
            let b = m.var(v[1]);
            m.and(eq, b)
        };
        let g = {
            let c = m.var(v[2]);
            let d = m.var(v[3]);
            m.or(c, d)
        };
        let cube = m.cube(&[v[2]]);
        let fused = m.and_exists(f, g, cube);
        let conj = m.and(f, g);
        let unfused = m.exists(conj, cube);
        assert_eq!(fused, unfused);
    }

    #[test]
    fn restrict_cube_equals_chained_restricts() {
        let (mut m, v) = setup(4);
        // f = (v0 ⊕ v1) ∨ (v2 ∧ ¬v3)
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let x = m.xor(a, b);
            let c = m.var(v[2]);
            let nd = m.nvar(v[3]);
            let cd = m.and(c, nd);
            m.or(x, cd)
        };
        for bits in 0..16u32 {
            for mask in 0..16u32 {
                let fixed: Vec<(Var, bool)> = (0..4)
                    .filter(|i| (mask >> i) & 1 == 1)
                    .map(|i| (v[i], (bits >> i) & 1 == 1))
                    .collect();
                let fused = m.restrict_many(f, &fixed);
                let mut chained = f;
                for &(var, val) in &fixed {
                    chained = m.restrict(chained, var, val);
                }
                assert_eq!(fused, chained, "mask={mask:04b} bits={bits:04b}");
            }
        }
        // Contradictory cube.
        let contradiction = m.literal_cube(&[(v[0], true), (v[0], false)]);
        assert!(contradiction.is_false());
        assert!(m.is_literal_cube(contradiction));
    }

    #[test]
    fn literal_cube_structure() {
        let (mut m, v) = setup(3);
        let c = m.literal_cube(&[(v[2], false), (v[0], true)]);
        assert!(m.is_literal_cube(c));
        assert!(!m.is_cube(c), "mixed polarity is not a positive cube");
        assert!(m.eval(c, &[true, false, false]));
        assert!(m.eval(c, &[true, true, false]));
        assert!(!m.eval(c, &[true, false, true]));
        assert!(!m.eval(c, &[false, false, false]));
        let pos = m.cube(&[v[0], v[1]]);
        assert!(m.is_literal_cube(pos), "positive cubes are literal cubes");
    }

    #[test]
    fn and_exists_terminal_cases() {
        let (mut m, v) = setup(2);
        let fa = m.var(v[0]);
        let cube = m.cube(&[v[0]]);
        assert_eq!(m.and_exists(Bdd::FALSE, fa, cube), Bdd::FALSE);
        assert_eq!(m.and_exists(fa, Bdd::TRUE, cube), Bdd::TRUE);
        let nb = m.nvar(v[1]);
        let got = m.and_exists(Bdd::TRUE, nb, cube);
        assert_eq!(got, nb);
    }
}
