//! Variable renaming (simultaneous variable-to-variable substitution).
//!
//! Renaming moves a relation between *slots*: the fixed-point solver keeps,
//! say, a summary relation over the canonical parameter variables and renames
//! it onto the variables of a quantified instance at application sites.
//!
//! The implementation is a vector compose: at each node the substituted
//! variable is re-introduced with `ite`, which is correct for **any**
//! injective map — including order-reversing maps and swaps — not just
//! monotone ones. Monotone maps (the common case here, thanks to interleaved
//! allocation) degenerate to a cheap single pass.

use crate::hasher::FxHashMap;
use crate::manager::{Bdd, Manager, Var};

/// A simultaneous variable-to-variable substitution.
///
/// Build one with [`VarMap::new`]; apply it with [`Manager::rename`].
///
/// # Example
///
/// ```
/// use getafix_bdd::{Manager, VarMap};
/// let mut m = Manager::new();
/// let x = m.new_var();
/// let y = m.new_var();
/// let fx = m.var(x);
/// let map = VarMap::new([(x, y)]);
/// let fy = m.rename(fx, &map);
/// assert_eq!(fy, m.var(y));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarMap {
    /// Sorted by source level; sources unique.
    pairs: Vec<(u32, u32)>,
}

impl VarMap {
    /// Creates a map sending each `(from, to)` pair's `from` to `to`.
    ///
    /// Identity pairs are dropped.
    ///
    /// # Panics
    ///
    /// Panics if a source or target variable occurs twice (the substitution
    /// must be a partial injection).
    pub fn new<I: IntoIterator<Item = (Var, Var)>>(pairs: I) -> Self {
        let mut v: Vec<(u32, u32)> =
            pairs.into_iter().filter(|(a, b)| a != b).map(|(a, b)| (a.0, b.0)).collect();
        v.sort_unstable();
        for w in v.windows(2) {
            assert_ne!(w[0].0, w[1].0, "VarMap: duplicate source variable v{}", w[0].0);
        }
        let mut targets: Vec<u32> = v.iter().map(|&(_, b)| b).collect();
        targets.sort_unstable();
        for w in targets.windows(2) {
            assert_ne!(w[0], w[1], "VarMap: duplicate target variable v{}", w[0]);
        }
        VarMap { pairs: v }
    }

    /// The inverse substitution (targets become sources).
    pub fn inverse(&self) -> VarMap {
        let mut pairs: Vec<(u32, u32)> = self.pairs.iter().map(|&(a, b)| (b, a)).collect();
        pairs.sort_unstable();
        VarMap { pairs }
    }

    /// Is this the identity substitution?
    pub fn is_identity(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The image of `v` under the substitution (identity if unmapped).
    pub fn apply(&self, v: Var) -> Var {
        match self.pairs.binary_search_by_key(&v.0, |&(a, _)| a) {
            Ok(i) => Var(self.pairs[i].1),
            Err(_) => v,
        }
    }

    /// Iterates over the non-identity `(from, to)` pairs in source order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Var)> + '_ {
        self.pairs.iter().map(|&(a, b)| (Var(a), Var(b)))
    }

    pub(crate) fn key(&self) -> &[(u32, u32)] {
        &self.pairs
    }
}

impl Manager {
    /// Applies the substitution `map` to `f`.
    pub fn rename(&mut self, f: Bdd, map: &VarMap) -> Bdd {
        if map.is_identity() || f.is_const() {
            return f;
        }
        let id = self.intern_map(map);
        self.rename_rec(f, map, id)
    }

    /// Convenience wrapper: rename with an ad-hoc pair list.
    pub fn rename_pairs(&mut self, f: Bdd, pairs: &[(Var, Var)]) -> Bdd {
        let map = VarMap::new(pairs.iter().copied());
        self.rename(f, &map)
    }

    fn rename_rec(&mut self, f: Bdd, map: &VarMap, id: u32) -> Bdd {
        if f.is_const() {
            return f;
        }
        // Renaming commutes with complement, so the cache only ever stores
        // regular handles; the parity is re-applied outside.
        let c = f.0 & 1;
        let g = Bdd(f.0 ^ c);
        if let Some(r) = self.caches.rename_get(g, id) {
            return Bdd(r.0 ^ c);
        }
        let var = self.level(g);
        let (g0, g1) = self.cof(g);
        let lo = self.rename_rec(g0, map, id);
        let hi = self.rename_rec(g1, map, id);
        let target = map.apply(Var(var));
        let r = if target.0 == var && target.0 < self.level(lo).min(self.level(hi)) {
            self.mk(var, lo, hi)
        } else {
            let tv = self.var(target);
            self.ite(tv, hi, lo)
        };
        self.caches.rename_put(g, id, r);
        Bdd(r.0 ^ c)
    }

    /// The fused image operation `∃ cube. rename(f, map) ∧ g`.
    ///
    /// Relation application is exactly this shape: a stored relation is
    /// renamed from its formal columns onto argument/scratch columns,
    /// constrained by equalities `g`, and the scratch columns are
    /// quantified away. Fusing the three steps never materializes the
    /// renamed intermediate when the substitution is order-preserving on
    /// `f`'s support — the common case under interleaved allocation. An
    /// order-scrambling map falls back to [`Manager::rename`] followed by
    /// [`Manager::and_exists`], so the result is identical either way.
    pub fn rename_and_exists(&mut self, f: Bdd, map: &VarMap, g: Bdd, cube: Bdd) -> Bdd {
        debug_assert!(self.is_cube(cube), "rename_and_exists: last argument must be a cube");
        if map.is_identity() {
            return self.and_exists(f, g, cube);
        }
        if !self.map_is_monotone_on(f, map) {
            let r = self.rename(f, map);
            return self.and_exists(r, g, cube);
        }
        let id = self.intern_map(map);
        self.rename_and_exists_rec(f, map, id, g, cube)
    }

    /// Is `map` strictly order-preserving over the support of `f` (so a
    /// source-order traversal of `f` visits target levels in order)?
    fn map_is_monotone_on(&self, f: Bdd, map: &VarMap) -> bool {
        let mut last: Option<u32> = None;
        for v in self.support(f) {
            let t = map.apply(v).0;
            if last.is_some_and(|p| t <= p) {
                return false;
            }
            last = Some(t);
        }
        true
    }

    fn rename_and_exists_rec(
        &mut self,
        f: Bdd,
        map: &VarMap,
        id: u32,
        g: Bdd,
        mut cube: Bdd,
    ) -> Bdd {
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() {
            return self.exists(g, cube);
        }
        if g.is_true() {
            let r = self.rename_rec(f, map, id);
            return self.exists(r, cube);
        }
        // `f`'s effective level is its root variable *after* renaming;
        // monotonicity of the map on f's support keeps the traversal
        // consistent with the target order.
        let ftop = map.apply(Var(self.level(f))).0;
        let top = ftop.min(self.level(g));
        while !cube.is_true() && self.level(cube) < top {
            cube = self.hi(cube);
        }
        if cube.is_true() {
            let r = self.rename_rec(f, map, id);
            return self.and(r, g);
        }
        if let Some(r) = self.caches.rename_and_exists_get(f, id, g, cube) {
            return r;
        }
        let (f0, f1) = if ftop == top { self.cof(f) } else { (f, f) };
        let (g0, g1) = self.cof_at(g, top);
        let r = if self.level(cube) == top {
            let rest = self.hi(cube);
            let lo = self.rename_and_exists_rec(f0, map, id, g0, rest);
            if lo.is_true() {
                Bdd::TRUE
            } else {
                let hi = self.rename_and_exists_rec(f1, map, id, g1, rest);
                self.or(lo, hi)
            }
        } else {
            let lo = self.rename_and_exists_rec(f0, map, id, g0, cube);
            let hi = self.rename_and_exists_rec(f1, map, id, g1, cube);
            self.mk(top, lo, hi)
        };
        self.caches.rename_and_exists_put(f, id, g, cube, r);
        r
    }

    /// Interns a map so renames can be cached by a stable small id.
    fn intern_map(&mut self, map: &VarMap) -> u32 {
        if let Some(&id) = self.map_registry.get(map.key()) {
            return id;
        }
        let id = u32::try_from(self.map_registry.len()).expect("more than 2^32 rename maps");
        self.map_registry.insert(map.key().to_vec(), id);
        id
    }
}

/// Registry type stored on the manager (see `manager.rs`).
pub(crate) type MapRegistry = FxHashMap<Vec<(u32, u32)>, u32>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_literal() {
        let mut m = Manager::new();
        let x = m.new_var();
        let y = m.new_var();
        let fx = m.var(x);
        let map = VarMap::new([(x, y)]);
        let got = m.rename(fx, &map);
        let want = m.var(y);
        assert_eq!(got, want);
    }

    #[test]
    fn rename_monotone_block() {
        // (x0 ∧ ¬x1) renamed to (x2 ∧ ¬x3)
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let a = m.var(v[0]);
        let nb = m.nvar(v[1]);
        let f = m.and(a, nb);
        let map = VarMap::new([(v[0], v[2]), (v[1], v[3])]);
        let got = m.rename(f, &map);
        let c = m.var(v[2]);
        let nd = m.nvar(v[3]);
        let want = m.and(c, nd);
        assert_eq!(got, want);
    }

    #[test]
    fn rename_swap() {
        // Swapping variables must work even though it is not monotone.
        let mut m = Manager::new();
        let v = m.new_vars(2);
        let a = m.var(v[0]);
        let nb = m.nvar(v[1]);
        let f = m.and(a, nb); // x ∧ ¬y
        let map = VarMap::new([(v[0], v[1]), (v[1], v[0])]);
        let got = m.rename(f, &map); // y ∧ ¬x
        let b = m.var(v[1]);
        let na = m.nvar(v[0]);
        let want = m.and(b, na);
        assert_eq!(got, want);
    }

    #[test]
    fn rename_reversing() {
        // Order-reversing map across three variables.
        let mut m = Manager::new();
        let v = m.new_vars(6);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            let c = m.var(v[2]);
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let map = VarMap::new([(v[0], v[5]), (v[1], v[4]), (v[2], v[3])]);
        let got = m.rename(f, &map);
        let want = {
            let a = m.var(v[5]);
            let b = m.var(v[4]);
            let c = m.var(v[3]);
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        assert_eq!(got, want);
    }

    #[test]
    fn rename_roundtrip() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            m.xor(a, b)
        };
        let map = VarMap::new([(v[0], v[2]), (v[1], v[3])]);
        let g = m.rename(f, &map);
        let back = m.rename(g, &map.inverse());
        assert_eq!(back, f);
    }

    #[test]
    fn identity_map_is_noop() {
        let mut m = Manager::new();
        let v = m.new_vars(2);
        let a = m.var(v[0]);
        let map = VarMap::new([(v[0], v[0])]);
        assert!(map.is_identity());
        assert_eq!(m.rename(a, &map), a);
    }

    #[test]
    fn rename_and_exists_matches_unfused() {
        // ∃s. rename(f)[x→s] ∧ (s = y)  ==  f with x renamed to y.
        let mut m = Manager::new();
        let v = m.new_vars(6);
        let f = {
            let a = m.var(v[0]);
            let b = m.nvar(v[1]);
            m.and(a, b)
        };
        // Monotone map v0→v2, v1→v3 (the fused fast path).
        let map = VarMap::new([(v[0], v[2]), (v[1], v[3])]);
        let eqs = {
            let a2 = m.var(v[2]);
            let a4 = m.var(v[4]);
            let e1 = m.iff(a2, a4);
            let a3 = m.var(v[3]);
            let a5 = m.var(v[5]);
            let e2 = m.iff(a3, a5);
            m.and(e1, e2)
        };
        let cube = m.cube(&[v[2], v[3]]);
        let fused = m.rename_and_exists(f, &map, eqs, cube);
        let renamed = m.rename(f, &map);
        let unfused = m.and_exists(renamed, eqs, cube);
        assert_eq!(fused, unfused);
    }

    #[test]
    fn rename_and_exists_scrambled_map_falls_back() {
        // An order-reversing map must still produce the unfused result.
        let mut m = Manager::new();
        let v = m.new_vars(5);
        let f = {
            let a = m.var(v[0]);
            let b = m.var(v[1]);
            m.xor(a, b)
        };
        let map = VarMap::new([(v[0], v[3]), (v[1], v[2])]);
        let g = m.var(v[4]);
        let cube = m.cube(&[v[3]]);
        let fused = m.rename_and_exists(f, &map, g, cube);
        let renamed = m.rename(f, &map);
        let unfused = m.and_exists(renamed, g, cube);
        assert_eq!(fused, unfused);
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn duplicate_source_rejected() {
        let _ = VarMap::new([(Var(0), Var(1)), (Var(0), Var(2))]);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_target_rejected() {
        let _ = VarMap::new([(Var(0), Var(2)), (Var(1), Var(2))]);
    }
}
