//! Cross-manager BDD transfer: [`Manager::export`] serializes the DAG
//! under a set of roots into a self-contained [`BddPackage`], and
//! [`Manager::import`] rebuilds those functions inside *another* manager.
//!
//! This is the shipping lane of parallel stratified solving: each worker
//! owns a private manager (no locks, no shared arena), solves its strata,
//! and hands finished interpretations back as packages the coordinator
//! imports. Import goes through [`Manager::mk`], so the rebuilt DAG is
//! re-canonicalized against the target's unique table — two functions
//! that were equal in the source are equal handles in the target, and the
//! complement-edge parity of every transferred root is preserved exactly.
//!
//! # Encoding
//!
//! Nodes are listed children-first (a topological order of the DAG), so a
//! single forward pass with a dense `package index -> target handle` memo
//! rebuilds everything; no recursion, no hashing beyond the target's own
//! unique table. Edge references use the same packed convention as
//! in-arena handles — `index << 1 | parity` — with index `0` reserved for
//! the shared terminal (so reference `0` *is* FALSE and `1` *is* TRUE),
//! and package node `i` addressed as `i + 1`. Stored low edges are
//! regular in the source's canonical form and stay regular in the
//! package; [`Manager::mk`] re-normalizes on import anyway, so a package
//! is valid even across managers that never shared a history.

use crate::manager::{Bdd, Manager};

/// One serialized node: the testing variable and the packed child
/// references (see the module docs for the reference encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedNode {
    var: u32,
    lo: u32,
    hi: u32,
}

/// A self-contained, manager-independent serialization of the BDD DAG
/// under a set of roots. Plain data: `Send + Sync`, cheap to move across
/// a thread boundary.
#[derive(Debug, Clone, Default)]
pub struct BddPackage {
    /// Variable-universe size of the exporting manager; the importer must
    /// know at least this many variables.
    num_vars: u32,
    /// Interior nodes, children-first.
    nodes: Vec<PackedNode>,
    /// The exported roots, as packed references (parity preserved).
    roots: Vec<u32>,
}

impl BddPackage {
    /// Number of interior nodes in the package (the shared terminal is
    /// implicit and not counted).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of exported roots.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// The exporting manager's variable count.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }
}

/// Resolves a packed package reference against the import memo.
#[inline]
fn resolve(memo: &[Bdd], r: u32) -> Bdd {
    Bdd(memo[(r >> 1) as usize].0 ^ (r & 1))
}

impl Manager {
    /// Serializes the DAG under `roots` into a [`BddPackage`] another
    /// manager can [`import`](Manager::import). Shared subgraphs are
    /// exported once; complement parity of every root is preserved.
    pub fn export(&self, roots: &[Bdd]) -> BddPackage {
        // Arena index -> package reference base (index 0 stays the
        // terminal; package node i is addressed as i + 1).
        let mut newidx: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        newidx[0] = 0;
        let mut nodes: Vec<PackedNode> = Vec::new();
        let mut stack: Vec<(u32, bool)> = Vec::new();
        for &root in roots {
            stack.push((root.node_index(), false));
            while let Some((idx, expanded)) = stack.pop() {
                if newidx[idx as usize] != u32::MAX {
                    continue;
                }
                let n = self.nodes[idx as usize];
                if expanded {
                    // Children are numbered; emit with translated edges.
                    let xlate = |raw: u32| (newidx[(raw >> 1) as usize] << 1) | (raw & 1);
                    let packed = PackedNode { var: n.var, lo: xlate(n.lo), hi: xlate(n.hi) };
                    newidx[idx as usize] = nodes.len() as u32 + 1;
                    nodes.push(packed);
                } else {
                    stack.push((idx, true));
                    stack.push((n.hi >> 1, false));
                    stack.push((n.lo >> 1, false));
                }
            }
        }
        let roots =
            roots.iter().map(|r| (newidx[r.node_index() as usize] << 1) | r.parity()).collect();
        BddPackage { num_vars: self.num_vars, nodes, roots }
    }

    /// Rebuilds the functions of `package` in this manager and returns
    /// their handles, in the order the roots were exported. Every node
    /// goes through the manager's canonicalizing `mk`, so results are canonical here: a
    /// function already present in this manager comes back as the
    /// *existing* handle.
    ///
    /// # Panics
    ///
    /// Panics if this manager knows fewer variables than the exporter —
    /// transfer assumes a shared variable universe (see
    /// [`Manager::fork_inputs`]).
    pub fn import(&mut self, package: &BddPackage) -> Vec<Bdd> {
        assert!(
            package.num_vars <= self.num_vars,
            "import: package spans {} variables but this manager only knows {}",
            package.num_vars,
            self.num_vars
        );
        // memo[0] is the terminal's regular handle; memo[i + 1] the handle
        // of package node i. Children-first order makes one pass enough.
        let mut memo: Vec<Bdd> = Vec::with_capacity(package.nodes.len() + 1);
        memo.push(Bdd::FALSE);
        for n in &package.nodes {
            let lo = resolve(&memo, n.lo);
            let hi = resolve(&memo, n.hi);
            let f = self.mk(n.var, lo, hi);
            memo.push(f);
        }
        package.roots.iter().map(|&r| resolve(&memo, r)).collect()
    }

    /// Forks a worker manager sharing this manager's variable universe and
    /// carrying over the given roots: returns the fresh manager plus the
    /// transferred handles (in `roots` order). The worker starts with
    /// empty caches and an arena holding exactly the transferred DAG.
    pub fn fork_inputs(&self, roots: &[Bdd]) -> (Manager, Vec<Bdd>) {
        let package = self.export(roots);
        let mut worker = Manager::with_capacity(package.node_count() + 1);
        for _ in 0..self.num_vars {
            worker.new_var();
        }
        let imported = worker.import(&package);
        (worker, imported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Send/Sync audit the parallel solver relies on: managers move
    /// into worker threads, packages cross thread boundaries. A compile
    /// failure here is the regression.
    #[test]
    fn transfer_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Manager>();
        assert_send::<Bdd>();
        assert_send::<BddPackage>();
        fn assert_sync<T: Sync>() {}
        assert_sync::<BddPackage>();
    }

    #[test]
    fn roundtrip_within_one_manager_is_identity() {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let a = m.var(vars[0]);
        let b = m.var(vars[2]);
        let f = m.xor(a, b);
        let g = m.not(f);
        let pkg = m.export(&[f, g, Bdd::TRUE, Bdd::FALSE]);
        assert_eq!(pkg.root_count(), 4);
        let back = m.import(&pkg);
        assert_eq!(back, vec![f, g, Bdd::TRUE, Bdd::FALSE]);
    }

    #[test]
    fn import_preserves_functions_and_complement_parity() {
        let mut src = Manager::new();
        let vars = src.new_vars(5);
        let a = src.var(vars[0]);
        let b = src.var(vars[1]);
        let c = src.var(vars[4]);
        let ab = src.and(a, b);
        let f = src.or(ab, c);
        let nf = src.not(f);

        let (mut dst, roots) = src.fork_inputs(&[f, nf]);
        assert_eq!(roots.len(), 2);
        // ¬f must import as the complement handle of f's import.
        assert_eq!(dst.not(roots[0]), roots[1]);
        // Truth tables agree pointwise.
        for bits in 0..32u32 {
            let env: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(src.eval(f, &env), dst.eval(roots[0], &env), "f at {env:?}");
            assert_eq!(src.eval(nf, &env), dst.eval(roots[1], &env), "¬f at {env:?}");
        }
    }

    #[test]
    fn import_reuses_existing_nodes() {
        let mut src = Manager::new();
        let mut dst = Manager::new();
        let sv = src.new_vars(3);
        let dv = dst.new_vars(3);
        let f_src = {
            let x = src.var(sv[0]);
            let y = src.var(sv[1]);
            src.or(x, y)
        };
        let f_dst = {
            let x = dst.var(dv[0]);
            let y = dst.var(dv[1]);
            dst.or(x, y)
        };
        let nodes_before = dst.stats().nodes;
        let back = dst.import(&src.export(&[f_src]));
        assert_eq!(back[0], f_dst, "identical function must come back as the existing handle");
        assert_eq!(dst.stats().nodes, nodes_before, "no new nodes for a known function");
    }

    #[test]
    fn shared_subgraphs_export_once() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let x = m.var(vars[0]);
        let y = m.var(vars[1]);
        let shared = m.and(x, y);
        let z = m.var(vars[2]);
        let f = m.or(shared, z);
        let g = m.xor(shared, z);
        let pkg = m.export(&[f, g]);
        let separate = m.export(&[f]).node_count() + m.export(&[g]).node_count();
        assert!(
            pkg.node_count() < separate,
            "joint export {} must share the common subgraph (separate: {})",
            pkg.node_count(),
            separate
        );
    }

    #[test]
    #[should_panic(expected = "variables")]
    fn import_into_smaller_universe_panics() {
        let mut src = Manager::new();
        let vars = src.new_vars(4);
        let f = src.var(vars[3]);
        let pkg = src.export(&[f]);
        let mut dst = Manager::new();
        dst.new_vars(2);
        dst.import(&pkg);
    }
}
