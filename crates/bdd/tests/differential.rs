//! Differential tests: the complement-edge kernel vs a brute-force
//! truth-table oracle.
//!
//! Every operation — including `ite`, `restrict`, the fused
//! `rename_and_exists` image and complement parity across a garbage
//! collection — is compared against the semantics computed by enumerating
//! all assignments of a small variable pool. A second group of
//! (non-random) regression tests pins down the *ordering guarantees* of
//! [`Manager::sat_one`] and [`Manager::cubes`], which must be stated over
//! the function and therefore survive the complement-edge encoding.

use getafix_bdd::{Bdd, Manager, Var, VarMap};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny expression language for generating test functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(i) => env[*i],
            Expr::Not(e) => !e.eval(env),
            Expr::And(a, b) => a.eval(env) && b.eval(env),
            Expr::Or(a, b) => a.eval(env) || b.eval(env),
            Expr::Xor(a, b) => a.eval(env) ^ b.eval(env),
        }
    }

    fn build(&self, m: &mut Manager, vars: &[Var]) -> Bdd {
        match self {
            Expr::Const(b) => m.constant(*b),
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(e) => {
                let f = e.build(m, vars);
                m.not(f)
            }
            Expr::And(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.and(fa, fb)
            }
            Expr::Or(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.or(fa, fb)
            }
            Expr::Xor(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.xor(fa, fb)
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![any::<bool>().prop_map(Expr::Const), (0..NVARS).prop_map(Expr::Var),];
    leaf.prop_recursive(4, 48, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

/// All assignments over `n` variables, as boolean vectors.
fn assignments_n(n: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
}

/// The truth table of `e` over `NVARS` variables, one bit per assignment.
fn truth_table(e: &Expr) -> u32 {
    let mut t = 0u32;
    for (i, env) in assignments_n(NVARS).enumerate() {
        if e.eval(&env) {
            t |= 1 << i;
        }
    }
    t
}

/// The truth table of a built BDD, read back through `eval`.
fn bdd_table(m: &Manager, f: Bdd) -> u32 {
    let mut t = 0u32;
    for (i, env) in assignments_n(NVARS).enumerate() {
        if m.eval(f, &env) {
            t |= 1 << i;
        }
    }
    t
}

/// All 2^NVARS assignment bits: with NVARS = 5 the truth table fills a
/// `u32` exactly.
const MASK: u32 = u32::MAX;

/// Restriction on truth tables: fix variable `v` to `value`.
fn tt_restrict(t: u32, v: usize, value: bool) -> u32 {
    let mut out = 0u32;
    for i in 0..(1usize << NVARS) {
        let j = if value { i | (1 << v) } else { i & !(1 << v) };
        if t & (1 << j) != 0 {
            out |= 1 << i;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every binary operation, `ite` and `restrict` agree with the
    /// truth-table oracle bit for bit.
    #[test]
    fn ops_match_truth_table_oracle(a in expr_strategy(), b in expr_strategy(),
                                    c in expr_strategy(), i in 0..NVARS,
                                    value in any::<bool>()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let (fa, fb, fc) = (a.build(&mut m, &vars), b.build(&mut m, &vars), c.build(&mut m, &vars));
        let (ta, tb, tc) = (truth_table(&a), truth_table(&b), truth_table(&c));
        prop_assert_eq!(bdd_table(&m, fa), ta);
        let and = m.and(fa, fb);
        prop_assert_eq!(bdd_table(&m, and), ta & tb);
        let or = m.or(fa, fb);
        prop_assert_eq!(bdd_table(&m, or), ta | tb);
        let xor = m.xor(fa, fb);
        prop_assert_eq!(bdd_table(&m, xor), ta ^ tb);
        let not = m.not(fa);
        prop_assert_eq!(bdd_table(&m, not), !ta & MASK);
        let ite = m.ite(fa, fb, fc);
        prop_assert_eq!(bdd_table(&m, ite), (ta & tb) | (!ta & MASK & tc));
        let rest = m.restrict(fa, vars[i], value);
        prop_assert_eq!(bdd_table(&m, rest), tt_restrict(ta, i, value));
        let ex = m.exists_one(fa, vars[i]);
        prop_assert_eq!(
            bdd_table(&m, ex),
            tt_restrict(ta, i, false) | tt_restrict(ta, i, true)
        );
        // Fused multi-literal cofactor == iterated single restrictions.
        let j = (i + 1) % NVARS;
        let fused = m.restrict_many(fa, &[(vars[i], value), (vars[j], !value)]);
        prop_assert_eq!(
            bdd_table(&m, fused),
            tt_restrict(tt_restrict(ta, i, value), j, !value)
        );
    }

    /// The fused image `∃cube. rename(f) ∧ g` matches the truth-table
    /// oracle over the doubled variable space (sources renamed onto a
    /// disjoint block, arbitrary quantification mask).
    #[test]
    fn rename_and_exists_matches_truth_table(a in expr_strategy(), b in expr_strategy(),
                                             mask in 0u32..(1 << (2 * NVARS))) {
        let n2 = 2 * NVARS;
        let mut m = Manager::new();
        let vars = m.new_vars(n2);
        let fa = a.build(&mut m, &vars[..NVARS]);
        let fb = b.build(&mut m, &vars[NVARS..]);
        let map = VarMap::new(
            (0..NVARS).map(|i| (vars[i], vars[NVARS + i])).collect::<Vec<_>>(),
        );
        let quantified: Vec<Var> = (0..n2)
            .filter(|i| (mask >> i) & 1 == 1)
            .map(|i| vars[i])
            .collect();
        let cube = m.cube(&quantified);
        let fused = m.rename_and_exists(fa, &map, fb, cube);
        // Oracle over assignment bitmasks: conj[w] = (rename f)(w) ∧ g(w);
        // the image at `env` holds iff conj holds at env with SOME values
        // substituted into the quantified positions.
        let conj: Vec<bool> = (0..(1u32 << n2)).map(|w| {
            let target: Vec<bool> = (NVARS..n2).map(|i| (w >> i) & 1 == 1).collect();
            a.eval(&target) && b.eval(&target)
        }).collect();
        for env in 0..(1u32 << n2) {
            let base = env & !mask;
            // Enumerate all subsets of the quantified positions.
            let mut q = mask;
            let mut expected = conj[base as usize];
            while q != 0 && !expected {
                expected = conj[(base | q) as usize];
                q = (q - 1) & mask;
            }
            let env_bits: Vec<bool> = (0..n2).map(|i| (env >> i) & 1 == 1).collect();
            prop_assert_eq!(m.eval(fused, &env_bits), expected);
        }
    }

    /// Complement parity survives garbage collection: a root and its
    /// negation keep denoting complementary functions after the remap,
    /// canonicity is rebuilt, and `sat_one` still yields a model.
    #[test]
    fn complement_parity_survives_gc(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let nf = m.not(f);
        let t = truth_table(&e);
        let result = m.gc(&[f, nf]);
        let (f2, nf2) = (result.roots[0], result.roots[1]);
        prop_assert_eq!(bdd_table(&m, f2), t);
        prop_assert_eq!(bdd_table(&m, nf2), !t & MASK);
        prop_assert_eq!(m.not(f2), nf2, "parity bit must survive the remap");
        // Rebuilding the expression after collection must hash-cons onto
        // the survivors (the unique table was rebuilt correctly).
        let f3 = e.build(&mut m, &vars);
        prop_assert_eq!(f2, f3);
        // sat_one still extracts a model of the remapped root.
        match m.sat_one(f2) {
            None => prop_assert_eq!(t, 0),
            Some(cube) => {
                let mut env = vec![false; NVARS];
                for &(v, val) in &cube {
                    env[v.level() as usize] = val;
                }
                prop_assert!(m.eval(f2, &env));
            }
        }
    }

    /// `sat_one` ordering guarantees, property-checked: ascending level
    /// order within the cube, minimal length across all cubes, and the
    /// same answer before and after a collection.
    #[test]
    fn sat_one_guarantees_hold(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let before = m.sat_one(f);
        if let Some(cube) = &before {
            for w in cube.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "cube pairs must ascend by level");
            }
            let min = m.cubes(f).map(|c| c.len()).min().unwrap();
            prop_assert_eq!(cube.len(), min, "sat_one must be a shortest cube");
        }
        let result = m.gc(&[f]);
        prop_assert_eq!(m.sat_one(result.roots[0]), before);
    }

    /// CubeIter guarantees, property-checked: cubes ascend within, are
    /// pairwise disjoint, and arrive in lexicographic branch order.
    #[test]
    fn cube_iter_guarantees_hold(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let cubes: Vec<Vec<(Var, bool)>> = m.cubes(f).collect();
        for cube in &cubes {
            for w in cube.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "within-cube pairs must ascend by level");
            }
        }
        // Pairwise disjoint: two cubes from one BDD diverge at the first
        // level where both test the variable with opposite values.
        for (i, a) in cubes.iter().enumerate() {
            for b in cubes.iter().skip(i + 1) {
                let disjoint = a.iter().any(|&(v, va)| {
                    b.iter().any(|&(w, vb)| v == w && va != vb)
                });
                prop_assert!(disjoint, "cubes {:?} and {:?} overlap", a, b);
            }
        }
        // Depth-first 0-before-1 order: two adjacent cubes share a literal
        // prefix (their paths coincide up to the divergence node), and at
        // the first differing position the earlier cube takes the
        // 0-branch, the later one the 1-branch of the SAME variable.
        for w in cubes.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let split = a.iter().zip(b.iter()).position(|(x, y)| x != y);
            let i = split.unwrap_or_else(|| {
                panic!("adjacent cubes {a:?} and {b:?} never diverge")
            });
            prop_assert_eq!(a[i].0, b[i].0, "divergence must be at one node");
            prop_assert!(!a[i].1 && b[i].1,
                "earlier cube must take the 0-branch at the divergence");
        }
    }
}

/// Non-random regressions: the documented orderings on a complement-heavy
/// function, where a naive port of the pre-complement-edge code would walk
/// the *stored* edges instead of the parity-applied cofactors and reverse
/// branches.
#[test]
fn cube_ordering_regression_on_complemented_handle() {
    let mut m = Manager::new();
    let x = m.new_var();
    let y = m.new_var();
    let fx = m.var(x);
    let fy = m.var(y);
    let and = m.and(fx, fy);
    let f = m.not(and); // ¬(x ∧ y): a complemented handle.
    let cubes: Vec<_> = m.cubes(f).collect();
    // 0-branch first: x=0 is a full cube (¬x ⇒ true), then x=1,y=0.
    assert_eq!(cubes, vec![vec![(x, false)], vec![(x, true), (y, false)]]);
}

#[test]
fn sat_one_regression_on_complemented_handle() {
    let mut m = Manager::new();
    let v = m.new_vars(3);
    let (a, b, c) = (m.var(v[0]), m.var(v[1]), m.var(v[2]));
    let ab = m.and(a, b);
    let abc = m.and(ab, c);
    let f = m.not(abc); // ¬(a ∧ b ∧ c): shortest cube is {a = 0}.
    assert_eq!(m.sat_one(f), Some(vec![(v[0], false)]));
    // The complement's shortest cube constrains all three variables.
    let g = m.not(f);
    assert_eq!(m.sat_one(g), Some(vec![(v[0], true), (v[1], true), (v[2], true)]));
}

#[test]
fn cube_ordering_equals_pre_complement_semantics() {
    // The same function built positively and via double negation is one
    // canonical handle, so the iterator sequence is trivially equal — the
    // meaningful check is that the sequence matches the documented
    // traversal on a function whose DAG mixes both edge parities.
    let mut m = Manager::new();
    let v = m.new_vars(3);
    let (a, b, c) = (m.var(v[0]), m.var(v[1]), m.var(v[2]));
    // f = (¬a ∧ b) ∨ (a ∧ ¬c)
    let na = m.not(a);
    let nc = m.not(c);
    let p = m.and(na, b);
    let q = m.and(a, nc);
    let f = m.or(p, q);
    let cubes: Vec<_> = m.cubes(f).collect();
    assert_eq!(
        cubes,
        vec![vec![(v[0], false), (v[1], true)], vec![(v[0], true), (v[2], false)]],
        "depth-first, 0-branch-first traversal order"
    );
}
