//! Property-based tests for the ROBDD substrate.
//!
//! Strategy: generate random Boolean expressions over a small variable pool,
//! build them both as BDDs and as naive truth tables, and check that every
//! algebraic operation agrees with its semantic counterpart. Canonicity makes
//! BDD equality decide semantic equality, so most properties are one-liners.

use getafix_bdd::{Bdd, Manager, Var, VarMap};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny expression language for generating test functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(i) => env[*i],
            Expr::Not(e) => !e.eval(env),
            Expr::And(a, b) => a.eval(env) && b.eval(env),
            Expr::Or(a, b) => a.eval(env) || b.eval(env),
            Expr::Xor(a, b) => a.eval(env) ^ b.eval(env),
        }
    }

    fn build(&self, m: &mut Manager, vars: &[Var]) -> Bdd {
        match self {
            Expr::Const(b) => m.constant(*b),
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(e) => {
                let f = e.build(m, vars);
                m.not(f)
            }
            Expr::And(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.and(fa, fb)
            }
            Expr::Or(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.or(fa, fb)
            }
            Expr::Xor(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.xor(fa, fb)
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![any::<bool>().prop_map(Expr::Const), (0..NVARS).prop_map(Expr::Var),];
    leaf.prop_recursive(4, 48, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|bits| (0..NVARS).map(|i| (bits >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BDD construction agrees with naive evaluation on every assignment.
    #[test]
    fn build_matches_semantics(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        for env in assignments() {
            prop_assert_eq!(m.eval(f, &env), e.eval(&env));
        }
    }

    /// Rebuilding the same expression yields the identical handle
    /// (canonicity / hash-consing).
    #[test]
    fn canonical_rebuild(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f1 = e.build(&mut m, &vars);
        let f2 = e.build(&mut m, &vars);
        prop_assert_eq!(f1, f2);
    }

    /// Double negation is the identity; De Morgan holds exactly.
    #[test]
    fn negation_algebra(a in expr_strategy(), b in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let fa = a.build(&mut m, &vars);
        let fb = b.build(&mut m, &vars);
        let nfa = m.not(fa);
        let nnfa = m.not(nfa);
        prop_assert_eq!(nnfa, fa);
        let and = m.and(fa, fb);
        let nand = m.not(and);
        let nfb = m.not(fb);
        let de_morgan = m.or(nfa, nfb);
        prop_assert_eq!(nand, de_morgan);
    }

    /// sat_count equals the number of satisfying assignments.
    #[test]
    fn sat_count_is_exact(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let expected = assignments().filter(|env| e.eval(env)).count();
        prop_assert_eq!(m.sat_count(f, NVARS), expected as f64);
    }

    /// ∃x.f agrees with f[x:=0] ∨ f[x:=1]; ∀x.f with the conjunction.
    #[test]
    fn quantification_shannon(e in expr_strategy(), i in 0..NVARS) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let f0 = m.restrict(f, vars[i], false);
        let f1 = m.restrict(f, vars[i], true);
        let ex = m.exists_one(f, vars[i]);
        let or = m.or(f0, f1);
        prop_assert_eq!(ex, or);
        let fa = m.forall_vars(f, &[vars[i]]);
        let and = m.and(f0, f1);
        prop_assert_eq!(fa, and);
    }

    /// The fused relational product equals quantify-after-conjoin.
    #[test]
    fn and_exists_fused(a in expr_strategy(), b in expr_strategy(),
                        mask in 0u32..(1 << NVARS)) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let fa = a.build(&mut m, &vars);
        let fb = b.build(&mut m, &vars);
        let quantified: Vec<Var> = (0..NVARS)
            .filter(|i| (mask >> i) & 1 == 1)
            .map(|i| vars[i])
            .collect();
        let cube = m.cube(&quantified);
        let fused = m.and_exists(fa, fb, cube);
        let conj = m.and(fa, fb);
        let unfused = m.exists(conj, cube);
        prop_assert_eq!(fused, unfused);
    }

    /// Renaming into a disjoint block and back is the identity.
    #[test]
    fn rename_roundtrip(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(2 * NVARS);
        let src = &vars[..NVARS];
        let dst = &vars[NVARS..];
        let f = e.build(&mut m, src);
        let fwd = VarMap::new(src.iter().copied().zip(dst.iter().copied()));
        let g = m.rename(f, &fwd);
        let back = m.rename(g, &fwd.inverse());
        prop_assert_eq!(back, f);
        // And the renamed function evaluates like the original, shifted.
        for env in assignments() {
            let mut shifted = vec![false; 2 * NVARS];
            shifted[NVARS..].copy_from_slice(&env);
            prop_assert_eq!(m.eval(g, &shifted), e.eval(&env));
        }
    }

    /// Interleaved renaming (the allocation pattern used by the solver):
    /// sources at even levels, targets at odd levels.
    #[test]
    fn rename_interleaved(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(2 * NVARS);
        let src: Vec<Var> = (0..NVARS).map(|i| vars[2 * i]).collect();
        let dst: Vec<Var> = (0..NVARS).map(|i| vars[2 * i + 1]).collect();
        let f = e.build(&mut m, &src);
        let map = VarMap::new(src.iter().copied().zip(dst.iter().copied()));
        let g = m.rename(f, &map);
        for env in assignments() {
            let mut spread = vec![false; 2 * NVARS];
            for i in 0..NVARS {
                spread[2 * i + 1] = env[i];
            }
            prop_assert_eq!(m.eval(g, &spread), e.eval(&env));
        }
    }

    /// The fused image operation `∃cube. rename(f) ∧ g` equals the
    /// three-step pipeline — for arbitrary (monotone *and* scrambled)
    /// permutation maps, so both the fast path and the fallback are hit.
    #[test]
    fn rename_and_exists_fused(a in expr_strategy(), b in expr_strategy(),
                               keys in prop::collection::vec(
                                   0u64..1_000_000, 2 * NVARS..2 * NVARS + 1),
                               mask in 0u32..(1 << (2 * NVARS))) {
        let mut m = Manager::new();
        let vars = m.new_vars(2 * NVARS);
        let fa = a.build(&mut m, &vars[..NVARS]);
        let fb = b.build(&mut m, &vars[NVARS..]);
        // Map the first block onto an arbitrary injective target sequence
        // (indices ranked by random keys), so monotone *and* scrambled
        // maps both occur — exercising the fused path and the fallback.
        let mut order: Vec<usize> = (0..2 * NVARS).collect();
        order.sort_by_key(|&i| keys[i]);
        let map = VarMap::new(
            (0..NVARS).map(|i| vars[i]).zip(order.iter().map(|&j| vars[j]))
                .filter(|(s, t)| s != t)
                .collect::<Vec<_>>(),
        );
        let quantified: Vec<Var> = (0..2 * NVARS)
            .filter(|i| (mask >> i) & 1 == 1)
            .map(|i| vars[i])
            .collect();
        let cube = m.cube(&quantified);
        let fused = m.rename_and_exists(fa, &map, fb, cube);
        let renamed = m.rename(fa, &map);
        let unfused = m.and_exists(renamed, fb, cube);
        prop_assert_eq!(fused, unfused);
    }

    /// Multi-root node counting never exceeds the per-root sum and equals
    /// it exactly when the roots share nothing but terminals.
    #[test]
    fn node_count_many_shares(a in expr_strategy(), b in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let fa = a.build(&mut m, &vars);
        let fb = b.build(&mut m, &vars);
        let many = m.node_count_many(&[fa, fb]);
        let each = m.node_count(fa) + m.node_count(fb);
        prop_assert!(many <= each);
        prop_assert!(many >= m.node_count(fa).max(m.node_count(fb)));
        prop_assert_eq!(m.node_count_many(&[fa]), m.node_count(fa));
    }

    /// GC preserves the semantics of every root.
    #[test]
    fn gc_preserves_roots(a in expr_strategy(), b in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let fa = a.build(&mut m, &vars);
        let fb = b.build(&mut m, &vars);
        let result = m.gc(&[fa, fb]);
        let (fa2, fb2) = (result.roots[0], result.roots[1]);
        for env in assignments() {
            prop_assert_eq!(m.eval(fa2, &env), a.eval(&env));
            prop_assert_eq!(m.eval(fb2, &env), b.eval(&env));
        }
    }

    /// Export/import roundtrips across managers: the imported functions
    /// match the originals on every assignment (truth-table oracle), and
    /// complement parity survives the transfer — importing `¬f` yields the
    /// complement handle of importing `f`, in a manager that never shared
    /// any history with the exporter.
    #[test]
    fn export_import_roundtrip(a in expr_strategy(), b in expr_strategy()) {
        let mut src = Manager::new();
        let vars = src.new_vars(NVARS);
        let fa = a.build(&mut src, &vars);
        let fb = b.build(&mut src, &vars);
        let nfa = src.not(fa);
        let (mut dst, roots) = src.fork_inputs(&[fa, fb, nfa]);
        prop_assert_eq!(roots.len(), 3);
        for env in assignments() {
            prop_assert_eq!(dst.eval(roots[0], &env), a.eval(&env));
            prop_assert_eq!(dst.eval(roots[1], &env), b.eval(&env));
            prop_assert_eq!(dst.eval(roots[2], &env), !a.eval(&env));
        }
        let complement = dst.not(roots[0]);
        prop_assert_eq!(complement, roots[2]);
        // Importing into a manager that already built the same functions
        // hands back the existing canonical handles.
        let mut warm = Manager::new();
        let wvars = warm.new_vars(NVARS);
        let wa = a.build(&mut warm, &wvars);
        let back = warm.import(&src.export(&[fa]));
        prop_assert_eq!(back[0], wa);
    }

    /// A second import of the same package is the identity: canonicity in
    /// the target makes transfer idempotent.
    #[test]
    fn import_is_idempotent(e in expr_strategy()) {
        let mut src = Manager::new();
        let vars = src.new_vars(NVARS);
        let f = e.build(&mut src, &vars);
        let pkg = src.export(&[f]);
        let mut dst = Manager::new();
        dst.new_vars(NVARS);
        let first = dst.import(&pkg);
        let second = dst.import(&pkg);
        prop_assert_eq!(first, second);
    }

    /// Cube enumeration covers exactly the models.
    #[test]
    fn cube_enumeration_exact(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let models = m.all_models(f, &vars);
        let mut expect: Vec<Vec<bool>> =
            assignments().filter(|env| e.eval(env)).collect();
        expect.sort();
        prop_assert_eq!(models, expect);
    }
}
