//! Property-based tests for the ROBDD substrate.
//!
//! Strategy: generate random Boolean expressions over a small variable pool,
//! build them both as BDDs and as naive truth tables, and check that every
//! algebraic operation agrees with its semantic counterpart. Canonicity makes
//! BDD equality decide semantic equality, so most properties are one-liners.

use getafix_bdd::{Bdd, Manager, Var, VarMap};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny expression language for generating test functions.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(i) => env[*i],
            Expr::Not(e) => !e.eval(env),
            Expr::And(a, b) => a.eval(env) && b.eval(env),
            Expr::Or(a, b) => a.eval(env) || b.eval(env),
            Expr::Xor(a, b) => a.eval(env) ^ b.eval(env),
        }
    }

    fn build(&self, m: &mut Manager, vars: &[Var]) -> Bdd {
        match self {
            Expr::Const(b) => m.constant(*b),
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(e) => {
                let f = e.build(m, vars);
                m.not(f)
            }
            Expr::And(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.and(fa, fb)
            }
            Expr::Or(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.or(fa, fb)
            }
            Expr::Xor(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.xor(fa, fb)
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![any::<bool>().prop_map(Expr::Const), (0..NVARS).prop_map(Expr::Var),];
    leaf.prop_recursive(4, 48, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|bits| (0..NVARS).map(|i| (bits >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BDD construction agrees with naive evaluation on every assignment.
    #[test]
    fn build_matches_semantics(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        for env in assignments() {
            prop_assert_eq!(m.eval(f, &env), e.eval(&env));
        }
    }

    /// Rebuilding the same expression yields the identical handle
    /// (canonicity / hash-consing).
    #[test]
    fn canonical_rebuild(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f1 = e.build(&mut m, &vars);
        let f2 = e.build(&mut m, &vars);
        prop_assert_eq!(f1, f2);
    }

    /// Double negation is the identity; De Morgan holds exactly.
    #[test]
    fn negation_algebra(a in expr_strategy(), b in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let fa = a.build(&mut m, &vars);
        let fb = b.build(&mut m, &vars);
        let nfa = m.not(fa);
        let nnfa = m.not(nfa);
        prop_assert_eq!(nnfa, fa);
        let and = m.and(fa, fb);
        let nand = m.not(and);
        let nfb = m.not(fb);
        let de_morgan = m.or(nfa, nfb);
        prop_assert_eq!(nand, de_morgan);
    }

    /// sat_count equals the number of satisfying assignments.
    #[test]
    fn sat_count_is_exact(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let expected = assignments().filter(|env| e.eval(env)).count();
        prop_assert_eq!(m.sat_count(f, NVARS), expected as f64);
    }

    /// ∃x.f agrees with f[x:=0] ∨ f[x:=1]; ∀x.f with the conjunction.
    #[test]
    fn quantification_shannon(e in expr_strategy(), i in 0..NVARS) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let f0 = m.restrict(f, vars[i], false);
        let f1 = m.restrict(f, vars[i], true);
        let ex = m.exists_one(f, vars[i]);
        let or = m.or(f0, f1);
        prop_assert_eq!(ex, or);
        let fa = m.forall_vars(f, &[vars[i]]);
        let and = m.and(f0, f1);
        prop_assert_eq!(fa, and);
    }

    /// The fused relational product equals quantify-after-conjoin.
    #[test]
    fn and_exists_fused(a in expr_strategy(), b in expr_strategy(),
                        mask in 0u32..(1 << NVARS)) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let fa = a.build(&mut m, &vars);
        let fb = b.build(&mut m, &vars);
        let quantified: Vec<Var> = (0..NVARS)
            .filter(|i| (mask >> i) & 1 == 1)
            .map(|i| vars[i])
            .collect();
        let cube = m.cube(&quantified);
        let fused = m.and_exists(fa, fb, cube);
        let conj = m.and(fa, fb);
        let unfused = m.exists(conj, cube);
        prop_assert_eq!(fused, unfused);
    }

    /// Renaming into a disjoint block and back is the identity.
    #[test]
    fn rename_roundtrip(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(2 * NVARS);
        let src = &vars[..NVARS];
        let dst = &vars[NVARS..];
        let f = e.build(&mut m, src);
        let fwd = VarMap::new(src.iter().copied().zip(dst.iter().copied()));
        let g = m.rename(f, &fwd);
        let back = m.rename(g, &fwd.inverse());
        prop_assert_eq!(back, f);
        // And the renamed function evaluates like the original, shifted.
        for env in assignments() {
            let mut shifted = vec![false; 2 * NVARS];
            shifted[NVARS..].copy_from_slice(&env);
            prop_assert_eq!(m.eval(g, &shifted), e.eval(&env));
        }
    }

    /// Interleaved renaming (the allocation pattern used by the solver):
    /// sources at even levels, targets at odd levels.
    #[test]
    fn rename_interleaved(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(2 * NVARS);
        let src: Vec<Var> = (0..NVARS).map(|i| vars[2 * i]).collect();
        let dst: Vec<Var> = (0..NVARS).map(|i| vars[2 * i + 1]).collect();
        let f = e.build(&mut m, &src);
        let map = VarMap::new(src.iter().copied().zip(dst.iter().copied()));
        let g = m.rename(f, &map);
        for env in assignments() {
            let mut spread = vec![false; 2 * NVARS];
            for i in 0..NVARS {
                spread[2 * i + 1] = env[i];
            }
            prop_assert_eq!(m.eval(g, &spread), e.eval(&env));
        }
    }

    /// GC preserves the semantics of every root.
    #[test]
    fn gc_preserves_roots(a in expr_strategy(), b in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let fa = a.build(&mut m, &vars);
        let fb = b.build(&mut m, &vars);
        let result = m.gc(&[fa, fb]);
        let (fa2, fb2) = (result.roots[0], result.roots[1]);
        for env in assignments() {
            prop_assert_eq!(m.eval(fa2, &env), a.eval(&env));
            prop_assert_eq!(m.eval(fb2, &env), b.eval(&env));
        }
    }

    /// Cube enumeration covers exactly the models.
    #[test]
    fn cube_enumeration_exact(e in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let models = m.all_models(f, &vars);
        let mut expect: Vec<Vec<bool>> =
            assignments().filter(|env| e.eval(env)).collect();
        expect.sort();
        prop_assert_eq!(models, expect);
    }
}
