//! Differential testing of the §5 symbolic engine against the explicit
//! bounded-context-switch oracle, across switch bounds — including the
//! monotonicity invariant (reachable at k ⇒ reachable at k+1).

use getafix_boolprog::parse_concurrent;
use getafix_conc::{check_conc_reachability, conc_explicit_reachable, merge, ConcLimits};

fn compare(src: &str, label: &str, max_k: usize) {
    let conc = parse_concurrent(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let merged = merge(&conc).unwrap();
    let pc = merged.cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
    let mut prev: Option<bool> = None;
    for k in 1..=max_k {
        let oracle =
            conc_explicit_reachable(&merged, &[pc], k, ConcLimits::default()).expect("oracle");
        let got = check_conc_reachability(&conc, label, k)
            .unwrap_or_else(|e| panic!("k={k}: {e}"))
            .reachable;
        assert_eq!(got, oracle, "k={k}: symbolic={got}, oracle={oracle}\n{src}");
        if let Some(p) = prev {
            assert!(!p || got, "monotonicity violated at k={k}");
        }
        prev = Some(got);
    }
}

const HANDSHAKE: &str = r#"
    shared flag;
    thread
      main() begin
        if (flag) then HIT: skip; fi;
      end
    endthread
    thread
      main() begin
        flag := T;
      end
    endthread
"#;

#[test]
fn handshake() {
    compare(HANDSHAKE, "t0__HIT", 3);
}

#[test]
fn ping_pong_threshold() {
    // Requires a := T (T1), b := T (T0), c := T (T1), observe (T0):
    // exactly 3 switches.
    let src = r#"
        shared a, b, c;
        thread
          main() begin
            if (a) then
              b := T;
            fi;
            if (c) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            a := T;
            if (b) then
              c := T;
            fi;
          end
        endthread
    "#;
    compare(src, "t0__HIT", 4);
}

#[test]
fn locals_preserved_across_switches() {
    let src = r#"
        shared s;
        thread
          main() begin
            decl x;
            x := T;
            if (s & x) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            s := T;
          end
        endthread
    "#;
    compare(src, "t0__HIT", 3);
}

#[test]
fn procedure_calls_across_contexts() {
    let src = r#"
        shared s;
        thread
          main() begin
            decl r;
            r := get();
            if (r) then HIT: skip; fi;
          end
          get() returns 1 begin
            return s;
          end
        endthread
        thread
          main() begin
            call set();
          end
          set() begin
            s := T;
          end
        endthread
    "#;
    compare(src, "t0__HIT", 3);
}

#[test]
fn switch_inside_a_procedure() {
    // The active thread is suspended mid-procedure; the resumed state must
    // keep the procedure's entry context (the ecs bookkeeping).
    let src = r#"
        shared s, t;
        thread
          main() begin
            call work();
          end
          work() begin
            decl saw;
            saw := s;
            /* switch happens here: other thread sets t */
            if (saw & t) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            s := T;
            t := T;
          end
        endthread
    "#;
    compare(src, "t0__HIT", 4);
}

#[test]
fn three_threads() {
    // Chain: T1 sets a, T2 sets b (only if a), T0 observes a & b.
    let src = r#"
        shared a, b;
        thread
          main() begin
            if (a & b) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            a := T;
          end
        endthread
        thread
          main() begin
            if (a) then b := T; fi;
          end
        endthread
    "#;
    compare(src, "t0__HIT", 3);
}

#[test]
fn unreachable_regardless_of_switches() {
    let src = r#"
        shared a, b;
        thread
          main() begin
            if (a & !a) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            b := !b;
          end
        endthread
    "#;
    compare(src, "t0__HIT", 3);
}

#[test]
fn mutual_flags_need_two_visits() {
    // T0 writes x, must see T1's answer y afterwards: T0 runs, switch to
    // T1, switch back — 2 switches, and the resumed T0 keeps its place.
    let src = r#"
        shared x, y;
        thread
          main() begin
            x := T;
            if (y) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            if (x) then y := T; fi;
          end
        endthread
    "#;
    compare(src, "t0__HIT", 3);
}

#[test]
fn recursion_in_thread_symbolic_only() {
    // The symbolic engine handles unbounded recursion where the explicit
    // oracle cannot; sanity-check the verdict directly.
    let src = r#"
        shared s;
        thread
          main() begin
            call rec();
            if (s) then HIT: skip; fi;
          end
          rec() begin
            if (*) then call rec(); fi;
          end
        endthread
        thread
          main() begin
            s := T;
          end
        endthread
    "#;
    let conc = parse_concurrent(src).unwrap();
    let r = check_conc_reachability(&conc, "t0__HIT", 2).unwrap();
    assert!(r.reachable);
}

#[test]
fn reach_tuples_grow_with_k() {
    // Figure 3's "Max reach set size" column grows with the bound.
    let conc = parse_concurrent(HANDSHAKE).unwrap();
    let r1 = check_conc_reachability(&conc, "t1__nonexistent", 1);
    assert!(r1.is_err(), "unknown labels are reported");
    let mut last = 0.0;
    for k in 1..=3 {
        // Use an unreachable label so the fixpoint runs to completion.
        let src_neg = r#"
            shared flag;
            thread
              main() begin
                if (flag & !flag) then HIT: skip; fi;
              end
            endthread
            thread
              main() begin
                flag := T;
              end
            endthread
        "#;
        let conc = parse_concurrent(src_neg).unwrap();
        let r = check_conc_reachability(&conc, "t0__HIT", k).unwrap();
        assert!(!r.reachable);
        assert!(r.reach_tuples >= last, "k={k}: {} < {last}", r.reach_tuples);
        last = r.reach_tuples;
    }
}
