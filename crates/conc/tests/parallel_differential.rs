//! 1-vs-N determinism for the concurrent (§5) engine: the bounded
//! context-switch solve must be observably identical at any job count —
//! verdict, `Reach` model set, per-relation re-evaluation counts, and the
//! strong cross-manager check (the parallel run's `Reach` BDD imported
//! into the sequential manager must land on the sequential handle).
//!
//! The concurrent system is where the pool earns its keep: one stratum
//! per switch round, with the per-round relations fanning out across
//! workers — so this suite exercises multi-wave schedules the sequential
//! core corpus cannot.

use getafix_boolprog::{parse_concurrent, Pc};
use getafix_conc::{build_conc_solver_with, check_conc_solver, merge, Merged};
use getafix_mucalc::{Bdd, SolveOptions, Solver, Strategy};
use std::collections::BTreeMap;

/// Solves `merged` at the switch bound with the given job count; returns
/// (verdict, Reach model list, per-relation re-eval counts, Reach handle,
/// the solver — kept alive so its manager can export/import).
fn run(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
    jobs: usize,
) -> (bool, Vec<Vec<bool>>, BTreeMap<String, usize>, Bdd, Solver) {
    let options = SolveOptions { jobs, ..SolveOptions::with_strategy(Strategy::Worklist) };
    let mut solver = build_conc_solver_with(merged, targets, switches, options)
        .unwrap_or_else(|e| panic!("jobs={jobs}: {e}"));
    let verdict = check_conc_solver(&mut solver, switches)
        .unwrap_or_else(|e| panic!("jobs={jobs}: {e}"))
        .reachable;
    let interp = solver.evaluate("Reach").unwrap_or_else(|e| panic!("jobs={jobs}: {e}"));
    let nparams = solver.system().relation("Reach").expect("Reach").params.len();
    let mut vars = Vec::new();
    for i in 0..nparams {
        vars.extend(solver.alloc().formal("Reach", i).all_vars());
    }
    let models = solver.manager().all_models(interp, &vars);
    let counts: BTreeMap<String, usize> =
        solver.stats().relations.iter().map(|(n, r)| (n.clone(), r.reevaluations)).collect();
    (verdict, models, counts, interp, solver)
}

/// Asserts the 1-vs-N contract for one program at switch bounds
/// `1..=max_k`, with `expect` the verdict at `max_k`.
fn jobs_agree(src: &str, labels: &[&str], max_k: usize, expect: bool) {
    let conc = parse_concurrent(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    let merged = merge(&conc).unwrap_or_else(|e| panic!("merge: {e}"));
    let targets: Vec<Pc> = labels
        .iter()
        .map(|l| merged.cfg.label(l).unwrap_or_else(|| panic!("no label {l}")))
        .collect();
    for k in 1..=max_k {
        let (v1, set1, counts1, interp1, mut seq) = run(&merged, &targets, k, 1);
        if k == max_k {
            assert_eq!(v1, expect, "k={k}: sequential verdict vs expectation\n{src}");
        }
        for jobs in [2usize, 4] {
            let (v, set, counts, interp, par) = run(&merged, &targets, k, jobs);
            assert_eq!(v, v1, "k={k} jobs={jobs}: verdict diverged\n{src}");
            assert_eq!(set, set1, "k={k} jobs={jobs}: Reach set diverged\n{src}");
            assert_eq!(
                counts, counts1,
                "k={k} jobs={jobs}: per-relation re-evaluation counts diverged\n{src}"
            );
            let pkg = par.manager_ref().export(&[interp]);
            let moved = seq.manager().import(&pkg);
            assert_eq!(
                moved[0], interp1,
                "k={k} jobs={jobs}: imported Reach is a different function\n{src}"
            );
        }
    }
}

#[test]
fn handshake() {
    jobs_agree(
        r#"
        shared flag;
        thread
          main() begin
            if (flag) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            flag := T;
          end
        endthread
        "#,
        &["t0__HIT"],
        3,
        true,
    );
}

#[test]
fn ping_pong_threshold() {
    // Reachable only at k >= 3; the suite crosses the threshold so both
    // full-fixpoint (negative) and early-exit (positive) rounds are
    // compared across job counts.
    jobs_agree(
        r#"
        shared a, b, c;
        thread
          main() begin
            if (a) then
              b := T;
            fi;
            if (c) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            a := T;
            if (b) then
              c := T;
            fi;
          end
        endthread
        "#,
        &["t0__HIT"],
        4,
        true,
    );
}

#[test]
fn three_threads_with_procedures() {
    jobs_agree(
        r#"
        shared a, b;
        thread
          main() begin
            decl r;
            r := get();
            if (r & b) then HIT: skip; fi;
          end
          get() returns 1 begin
            return a;
          end
        endthread
        thread
          main() begin
            call set();
          end
          set() begin
            a := T;
          end
        endthread
        thread
          main() begin
            if (a) then b := T; fi;
          end
        endthread
        "#,
        &["t0__HIT"],
        3,
        true,
    );
}

#[test]
fn unreachable_regardless_of_switches() {
    jobs_agree(
        r#"
        shared a, b;
        thread
          main() begin
            if (a & !a) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            b := !b;
          end
        endthread
        "#,
        &["t0__HIT"],
        3,
        false,
    );
}

// ---------------------------------------------------------------------------
// Seeded random concurrent corpus.
// ---------------------------------------------------------------------------

/// Deterministic xorshift; no dependence on rand's stability guarantees.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn rand_expr(rng: &mut Rng, vars: &[&str], depth: usize) -> String {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(4) {
            0 => "T".to_string(),
            1 => "F".to_string(),
            2 => "*".to_string(),
            _ => vars[rng.below(vars.len() as u64) as usize].to_string(),
        };
    }
    match rng.below(3) {
        0 => format!("!({})", rand_expr(rng, vars, depth - 1)),
        1 => format!("({} & {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
        _ => format!("({} | {})", rand_expr(rng, vars, depth - 1), rand_expr(rng, vars, depth - 1)),
    }
}

fn rand_thread_body(rng: &mut Rng, shared: &[&str]) -> String {
    let mut out = String::new();
    let n = 2 + rng.below(3);
    for _ in 0..n {
        match rng.below(3) {
            0 => {
                let v = shared[rng.below(shared.len() as u64) as usize];
                out.push_str(&format!("{v} := {};\n", rand_expr(rng, shared, 2)));
            }
            1 => {
                let v = shared[rng.below(shared.len() as u64) as usize];
                out.push_str(&format!(
                    "if ({}) then {v} := {}; fi;\n",
                    rand_expr(rng, shared, 1),
                    rand_expr(rng, shared, 1)
                ));
            }
            _ => {
                out.push_str(&format!(
                    "while ({} & *) do {} := {}; od;\n",
                    rand_expr(rng, shared, 1),
                    shared[rng.below(shared.len() as u64) as usize],
                    rand_expr(rng, shared, 1)
                ));
            }
        }
    }
    out
}

#[test]
fn randomized_programs_deterministic_across_job_counts() {
    // Verdicts here are whatever the sequential solver says — the suite
    // asserts agreement *between job counts*, not against an oracle (the
    // plain differential suite owns that).
    for seed in 1..=6u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let shared = ["a", "b", "c"];
        let t0_body = rand_thread_body(&mut rng, &shared);
        let t1_body = rand_thread_body(&mut rng, &shared);
        let guard = rand_expr(&mut rng, &shared, 2);
        let src = format!(
            r#"
            shared a, b, c;
            thread
              main() begin
                {t0_body}
                if ({guard}) then HIT: skip; fi;
              end
            endthread
            thread
              main() begin
                {t1_body}
              end
            endthread
            "#
        );
        let conc = parse_concurrent(&src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
        let merged = merge(&conc).unwrap_or_else(|e| panic!("merge: {e}"));
        let targets = vec![merged.cfg.label("t0__HIT").expect("t0__HIT")];
        for k in 1..=2usize {
            let (v1, set1, counts1, interp1, mut seq) = run(&merged, &targets, k, 1);
            for jobs in [2usize, 4] {
                let (v, set, counts, interp, par) = run(&merged, &targets, k, jobs);
                assert_eq!(v, v1, "seed={seed} k={k} jobs={jobs}: verdict diverged\n{src}");
                assert_eq!(set, set1, "seed={seed} k={k} jobs={jobs}: Reach set diverged\n{src}");
                assert_eq!(
                    counts, counts1,
                    "seed={seed} k={k} jobs={jobs}: re-eval counts diverged\n{src}"
                );
                let pkg = par.manager_ref().export(&[interp]);
                let moved = seq.manager().import(&pkg);
                assert_eq!(
                    moved[0], interp1,
                    "seed={seed} k={k} jobs={jobs}: imported Reach diverged\n{src}"
                );
            }
        }
    }
}
